//! Offline stand-in for `proptest` (the subset this workspace uses).
//!
//! Implements random-sampling property testing: the [`proptest!`] macro,
//! [`Strategy`](strategy::Strategy) with `prop_map`/`prop_flat_map`,
//! range/tuple/[`collection::vec`]/[`any`] strategies, and the
//! `prop_assert*` macros. **No shrinking** — a failing case reports its
//! case number and the deterministic per-test seed instead of a minimal
//! counterexample. Sampling is deterministic per test name, so failures
//! reproduce across runs.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Strategy trait and combinators.
pub mod strategy {
    use super::TestRng;

    /// A recipe for producing random values of `Self::Value`.
    pub trait Strategy {
        /// The produced type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every sampled value.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a second strategy from every sampled value and samples it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_int_range_strategies!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next() as $t
                }
            }
        )*};
    }

    impl_arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`](super::any).
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Default for AnyStrategy<T> {
        fn default() -> Self {
            AnyStrategy {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::AnyStrategy<T> {
    arbitrary::AnyStrategy::default()
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Length specification for [`vec()`](vec()): one length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec length range");
            SizeRange {
                lo: range.start,
                hi: range.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *range.start(),
                hi: range.end() + 1,
            }
        }
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`](vec()).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration and failure reporting.
pub mod test_runner {
    /// How many cases each property runs, and under what seed.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
        /// Extra entropy mixed into every per-test seed.
        pub seed: u64,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|raw| raw.parse().ok())
                .unwrap_or(0);
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|raw| raw.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases, seed }
        }
    }

    /// A failed property case (carried by `prop_assert*`).
    #[derive(Debug)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// The deterministic sampling generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator; used by the [`proptest!`] macro.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    #[allow(clippy::should_implement_trait)] // the real proptest RNG API
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let raw = self.next();
            if raw <= zone {
                return raw % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Stable per-test seed: a hash of the test's name mixed with the config
/// seed, so each property gets an independent, reproducible stream.
pub fn seed_for(test_name: &str, extra: u64) -> u64 {
    let mut hasher = DefaultHasher::new();
    test_name.hash(&mut hasher);
    extra.hash(&mut hasher);
    hasher.finish()
}

/// Declares property tests. Supported grammar (the subset the workspace
/// uses): an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(#[test] fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), config.seed);
                let mut rng = $crate::TestRng::new(seed);
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(error) = outcome {
                        panic!(
                            "property {} failed at case {}/{} (seed {}): {}",
                            stringify!($name), case, config.cases, seed, error
                        );
                    }
                }
            }
        )*
    };
    // No-header form; first token must be `#` (of `#[test]`) so an
    // unsupported body errors out instead of recursing through this arm.
    (#$($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) #$($rest)*);
    };
}

/// Asserts inside a property body; failure aborts only the current case
/// with a report (here: the whole test, since shrinking is not supported).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        $crate::prop_assert_eq!($left, $right, "");
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        {
            let left = &$left;
            let right = &$right;
            if !(left == right) {
                let context = format!($($fmt)*);
                return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                    format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}{}{}",
                        stringify!($left), stringify!($right), left, right,
                        if context.is_empty() { "" } else { " — " }, context,
                    ),
                ));
            }
        }
    };
}

/// One-line import of everything a property test needs.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_compose(
            n in 2usize..50,
            (a, b) in (0u32..10, 5u32..=9),
            flag in any::<bool>(),
        ) {
            prop_assert!((2..50).contains(&n));
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b), "b = {}", b);
            let _ = flag;
        }

        #[test]
        fn vec_and_flat_map_respect_bounds(
            items in crate::collection::vec(0u32..100, 3..7),
            pair in (1usize..5).prop_flat_map(|n| (crate::strategy::Just(n), 0usize..n)),
        ) {
            prop_assert!((3..7).contains(&items.len()));
            prop_assert!(items.iter().all(|&x| x < 100));
            let (n, k) = pair;
            prop_assert!(k < n);
        }

        #[test]
        fn prop_map_transforms(doubled in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct_per_name() {
        assert_eq!(crate::seed_for("a::b", 0), crate::seed_for("a::b", 0));
        assert_ne!(crate::seed_for("a::b", 0), crate::seed_for("a::c", 0));
        assert_ne!(crate::seed_for("a::b", 0), crate::seed_for("a::b", 1));
    }

    #[test]
    #[should_panic(expected = "property")]
    // The generated inner #[test] is deliberately unreachable by the test
    // harness: the property is invoked by hand right below.
    #[allow(unnameable_test_items)]
    fn failing_property_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
