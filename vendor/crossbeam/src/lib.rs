//! Offline stand-in for `crossbeam` (0.8 API subset).
//!
//! The workspace uses two pieces: multi-producer channels
//! ([`channel::unbounded`]) and [`utils::CachePadded`]. Channels are
//! implemented over `std::sync::mpsc`, whose `Sender` has been `Sync`
//! since Rust 1.72, so sharing `&Sender` across simulation threads works
//! exactly as with crossbeam's channel.

/// MPSC channels with `crossbeam::channel`'s error vocabulary.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// The sending half; cloneable and shareable by reference.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// The receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive. `Disconnected` is reported only after the
        /// queue has drained, so buffered messages are never lost.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Bounded blocking receive.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.try_iter()
        }
    }

    /// The channel is closed: no receiver remains.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// All senders disconnected and the queue is empty.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome detail for [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// Queue empty; senders still connected.
        Empty,
        /// Queue empty and every sender dropped.
        Disconnected,
    }

    /// Outcome detail for [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// Queue empty and every sender dropped.
        Disconnected,
    }
}

/// Small concurrency utilities.
pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so neighbouring slots never
    /// share a cache line (false-sharing guard for per-thread slots).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value`.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the value.
        pub fn into_inner(padded: Self) -> T {
            padded.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use super::utils::CachePadded;
    use std::time::Duration;

    #[test]
    fn buffered_messages_survive_sender_drop() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn timeout_vs_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn shared_reference_sending_from_threads() {
        let (tx, rx) = unbounded();
        std::thread::scope(|scope| {
            for k in 0..4u32 {
                let tx = &tx;
                scope.spawn(move || tx.send(k).unwrap());
            }
        });
        let mut got: Vec<u32> = rx.try_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let mut p = CachePadded::new(5u8);
        *p += 1;
        assert_eq!(*p, 6);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(CachePadded::into_inner(p), 6);
    }
}
