//! Offline stand-in for `parking_lot` (0.12 API subset).
//!
//! Provides the pieces this workspace uses — [`Mutex`] with a
//! non-poisoning `lock()` and [`Condvar`] whose `wait` takes
//! `&mut MutexGuard` — implemented over `std::sync`. Poisoning is
//! swallowed (`parking_lot` has none): a panic while holding the lock
//! leaves the data as-is, exactly like the real crate.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock without poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            ),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken during wait")
    }
}

/// A condition variable compatible with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates the condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified,
    /// re-acquiring before returning (spurious wakeups possible, as ever).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(
            self.inner
                .wait(std_guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_handoff_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
            })
        };
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock must stay usable after a panic");
    }
}
