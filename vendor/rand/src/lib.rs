//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build container cannot reach a crate registry, so the workspace
//! vendors the thin slice of `rand` it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] helpers
//! `random`, `random_range` and `random_bool`, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded by
//! SplitMix64 — deterministic, fast and statistically strong enough for
//! the seeded graph generators and fault plans in this repository. The
//! streams differ from upstream `rand`'s ChaCha12-based `StdRng`; nothing
//! in the workspace depends on the exact values, only on determinism.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64` (the only constructor the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (see [`Fill`] for supported types).
    fn random<T: Fill>(&mut self) -> T
    where
        Self: Sized,
    {
        T::fill(self)
    }

    /// A uniform sample from `range`, which must be non-empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (`p` clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::fill(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types [`Rng::random`] can produce.
pub trait Fill {
    /// Draws one uniform value.
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Fill for u64 {
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Fill for u32 {
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Fill for u8 {
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Fill for usize {
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Fill for bool {
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Fill for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Fill for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value; panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Unbiased bounded sampling by rejection from the low bits' modulus zone
// (Lemire-style threshold on the widening multiply is overkill here).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let raw = rng.next_u64();
        if raw <= zone {
            return raw % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::fill(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::fill(rng) * (hi - lo)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), state-initialized with SplitMix64 exactly as its authors
    /// recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; fall back to
            // the SplitMix64 expansion of zero.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Random slice operations (only `shuffle` is provided).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2_000 {
            let x: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.random_range(5..=5);
            assert_eq!(y, 5);
            let z: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&z));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        assert!(counts.iter().all(|&c| (800..1200).contains(&c)), "{counts:?}");
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the identity (astronomically unlikely)");
    }
}
