//! Offline stand-in for `rayon` (1.x API subset).
//!
//! The workspace uses rayon only as a *comparison baseline* in one
//! ablation bench. This stub keeps that bench compiling by executing the
//! "parallel" iterator sequentially on the calling thread — so any
//! parfor-vs-rayon numbers produced against the stub measure the parfor
//! side against a sequential loop, not against real work stealing.

use std::fmt;

/// Builds a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the requested thread count (advisory in the stub).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Creates the pool. Never fails in the stub.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                std::thread::available_parallelism().map_or(1, |p| p.get())
            } else {
                self.num_threads
            },
        })
    }
}

/// Error type kept for signature compatibility; never constructed here.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    _private: (),
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A handle scoping "parallel" work; the stub runs everything inline.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool current. Sequential in the stub.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Parallel-iterator traits (sequential fallback).
pub mod prelude {
    /// Conversion into a "parallel" iterator. The blanket impl hands back
    /// the ordinary sequential iterator, whose `map`/`collect` chain then
    /// matches rayon's surface for simple pipelines.
    pub trait IntoParallelIterator {
        /// The iterator type produced.
        type Iter;

        /// Converts `self`; sequential in the stub.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;

        fn into_par_iter(self) -> I::IntoIter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn pool_installs_and_runs() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        let out = pool.install(|| {
            (0..8u32).into_par_iter().map(|x| x * 2).collect::<Vec<_>>()
        });
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }
}
