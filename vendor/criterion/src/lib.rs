//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! Keeps the workspace's benches compiling and runnable without the real
//! crate: each `bench_function` executes a short timing loop and prints a
//! mean wall-clock time. There is no statistical analysis, warm-up
//! calibration, HTML report, or baseline comparison — numbers printed here
//! are indicative only.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark records.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Times `f` and prints the mean duration.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: self.samples as u64,
            elapsed: Duration::ZERO,
            measured: 0,
        };
        f(&mut bencher);
        let mean = if bencher.measured > 0 {
            bencher.elapsed / bencher.measured as u32
        } else {
            Duration::ZERO
        };
        println!("{}/{}: mean {:?} ({} iterations)", self.name, id.label, mean, bencher.measured);
        self
    }

    /// Ends the group (no-op here; reporting happens per-function).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    measured: u64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.measured += self.iterations;
    }

    /// Lets the routine time itself (e.g. to exclude setup); `routine`
    /// receives an iteration count and returns the measured duration.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed += routine(self.iterations);
        self.measured += self.iterations;
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // Under `cargo test --benches` the harness passes flags like
            // `--test`; a compile-and-smoke pass is all the stub offers,
            // so flags are accepted and ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_runs_and_counts() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("stub");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("counted", |b| b.iter(|| calls += 1));
        group.bench_function(BenchmarkId::new("fn", "param"), |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(1 + 1);
                }
                start.elapsed()
            })
        });
        group.finish();
        assert_eq!(calls, 3);
    }
}
