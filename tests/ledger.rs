//! Torn-write safety of the run ledger.
//!
//! The ledger's crash model: the process (or the machine) dies at an
//! arbitrary byte boundary mid-append. Recovery must replay exactly the
//! longest prefix of fully-written records — never a partial row, never a
//! corrupted one — and the file must keep working as a ledger afterwards.

use proptest::prelude::*;

use parapsp::core::persist::{FsyncPolicy, RowLedger};

/// Fixed ledger header: magic (4) + version (1) + n (8) + run id (8) +
/// epoch (4).
const HEADER_LEN: usize = 25;

/// Every record of an `n`-vertex ledger has the same framing: source id
/// (4) + payload length (4) + payload (4·n) + FNV-1a checksum (4).
fn record_len(n: usize) -> usize {
    4 + 4 + 4 * n + 4
}

/// A deterministic, distinctive row for `source` in an `n`-vertex run.
fn row_for(n: usize, source: u32, salt: u64) -> Vec<u32> {
    (0..n as u32)
        .map(|v| {
            (salt as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(source * 7919 + v * 31)
                % 100_000
        })
        .collect()
}

fn workdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("parapsp-ledger-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Truncating a ledger at ANY byte offset recovers a valid prefix of
    // the appended rows — bit-exact payloads, in order, nothing past the
    // cut — and the reopened ledger accepts further appends that survive
    // a subsequent clean recovery.
    #[test]
    fn truncation_at_any_offset_recovers_a_valid_prefix(
        n in 1usize..16,
        rows in 1usize..12,
        salt in any::<u64>(),
        cut_fraction in 0.0f64..=1.0,
    ) {
        let rows = rows.min(n);
        let path = workdir().join(format!("torn-{salt:x}-{n}-{rows}.ledger"));
        std::fs::remove_file(&path).ok();

        let mut ledger = RowLedger::create(&path, n, FsyncPolicy::Never)
            .expect("create ledger");
        for s in 0..rows as u32 {
            ledger.append(s, &row_for(n, s, salt)).expect("append");
        }
        ledger.finish().expect("finish");

        // Chop the file at an arbitrary byte offset — the crash.
        let bytes = std::fs::read(&path).expect("read ledger back");
        prop_assert_eq!(bytes.len(), HEADER_LEN + rows * record_len(n));
        let cut = (cut_fraction * bytes.len() as f64) as usize;
        std::fs::write(&path, &bytes[..cut]).expect("truncate");

        if cut < HEADER_LEN {
            // A torn *header* means creation itself never completed; the
            // only safe answer is a refusal (empty files start fresh).
            let result = RowLedger::open(&path, n, FsyncPolicy::Never);
            if cut == 0 {
                let (_, recovered) = result.expect("an empty file starts fresh");
                prop_assert_eq!(recovered.completed_count(), 0);
            } else {
                prop_assert!(result.is_err(), "a torn header must not open");
            }
            std::fs::remove_file(&path).ok();
            return Ok(());
        }

        // Recovery: exactly the fully-written records, bit-exact.
        let intact = ((cut - HEADER_LEN) / record_len(n)).min(rows);
        let (mut ledger, recovered) = RowLedger::open(&path, n, FsyncPolicy::Never)
            .expect("recover the torn ledger");
        prop_assert_eq!(recovered.completed_count(), intact);
        for s in 0..n as u32 {
            let done = recovered.completed()[s as usize];
            prop_assert_eq!(done, (s as usize) < intact, "source {}", s);
            if done {
                let expected = row_for(n, s, salt);
                prop_assert_eq!(
                    recovered.matrix().row(s),
                    expected.as_slice(),
                    "recovered row {} must be bit-exact", s
                );
            }
        }

        // The recovered ledger keeps appending: complete the missing rows
        // and a second recovery sees every row.
        for s in intact as u32..n as u32 {
            ledger.append(s, &row_for(n, s, salt)).expect("append after recovery");
        }
        ledger.finish().expect("finish after recovery");
        let (_, full) = RowLedger::open(&path, n, FsyncPolicy::Never)
            .expect("reopen the completed ledger");
        prop_assert!(full.is_complete());
        for s in 0..n as u32 {
            let expected = row_for(n, s, salt);
            prop_assert_eq!(full.matrix().row(s), expected.as_slice());
        }
        std::fs::remove_file(&path).ok();
    }

    // A flipped byte anywhere in the record region stops replay at (or
    // before) the damaged record — recovery never serves a row that
    // fails its checksum.
    #[test]
    fn corruption_never_yields_a_corrupted_row(
        n in 2usize..12,
        salt in any::<u64>(),
        flip_at_fraction in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let rows = n.min(8);
        let path = workdir().join(format!("flip-{salt:x}-{n}.ledger"));
        std::fs::remove_file(&path).ok();

        let mut ledger = RowLedger::create(&path, n, FsyncPolicy::Never)
            .expect("create ledger");
        for s in 0..rows as u32 {
            ledger.append(s, &row_for(n, s, salt)).expect("append");
        }
        ledger.finish().expect("finish");

        let mut bytes = std::fs::read(&path).expect("read ledger back");
        let body = bytes.len() - HEADER_LEN;
        let flip_at = (HEADER_LEN + (flip_at_fraction * body as f64) as usize)
            .min(bytes.len() - 1);
        bytes[flip_at] ^= 1 << flip_bit;
        std::fs::write(&path, &bytes).expect("write corrupted ledger");

        let damaged_record = (flip_at - HEADER_LEN) / record_len(n);
        let (_, recovered) = RowLedger::open(&path, n, FsyncPolicy::Never)
            .expect("recovery handles corruption by stopping, not failing");
        // Replay stops at the first record whose checksum (or framing)
        // disagrees — FNV-1a over (source, payload) changes under any
        // single-bit flip, so exactly the records before the damage
        // survive, bit-exact, and nothing after the damage is trusted.
        prop_assert_eq!(recovered.completed_count(), damaged_record);
        for s in 0..rows as u32 {
            let done = recovered.completed()[s as usize];
            prop_assert_eq!(done, (s as usize) < damaged_record, "source {}", s);
            if done {
                let expected = row_for(n, s, salt);
                prop_assert_eq!(
                    recovered.matrix().row(s),
                    expected.as_slice(),
                    "a recovered row must never be corrupted (source {})", s
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
