//! Stress and robustness tests: heavy reuse of the runtime substrate,
//! oversubscription, panic recovery, and adversarial graph shapes —
//! behaviours unit tests at module scope don't exercise together.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use parapsp::core::baselines::apsp_dijkstra;
use parapsp::core::engine::{ApspEngine, RunConfig, Runner};
use parapsp::core::ApspOutput;
use parapsp::graph::generate::{barabasi_albert, complete_graph, star_graph, WeightSpec};
use parapsp::graph::{CsrGraph, Direction};
use parapsp::order::OrderingProcedure;
use parapsp::parfor::{Schedule, ThreadPool};

fn run_par(threads: usize, graph: &CsrGraph) -> ApspOutput {
    Runner::new(RunConfig::par_apsp(threads)).run(ApspEngine::new(), graph)
}

#[test]
fn one_pool_survives_hundreds_of_heterogeneous_regions() {
    let pool = ThreadPool::new(8);
    let counter = AtomicUsize::new(0);
    for round in 0..300 {
        let n = 1 + (round * 7) % 50;
        let schedule = match round % 4 {
            0 => Schedule::Block,
            1 => Schedule::StaticCyclic,
            2 => Schedule::dynamic_cyclic(),
            _ => Schedule::Guided(2),
        };
        pool.parallel_for(n, schedule, |_tid, _i| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
    }
    let expected: usize = (0..300).map(|round| 1 + (round * 7) % 50).sum();
    assert_eq!(counter.load(Ordering::Relaxed), expected);
}

#[test]
fn pool_remains_correct_after_repeated_panics() {
    let pool = ThreadPool::new(4);
    for round in 0..20 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(64, Schedule::dynamic_cyclic(), |_tid, i| {
                if i == round * 3 {
                    panic!("injected failure {round}");
                }
            });
        }));
        assert!(result.is_err(), "round {round} should have panicked");
        // Immediately afterwards the pool must do correct work again.
        let hits = AtomicUsize::new(0);
        pool.parallel_for(100, Schedule::Block, |_tid, _i| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }
}

#[test]
fn many_pools_in_parallel_threads() {
    // Several OS threads each drive their own pool concurrently.
    let handles: Vec<_> = (0..4)
        .map(|seed| {
            std::thread::spawn(move || {
                let g = barabasi_albert(80, 2, WeightSpec::Unit, seed).unwrap();
                let reference = apsp_dijkstra(&g);
                let out = run_par(3, &g);
                assert_eq!(reference.first_difference(&out.dist), None);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }
}

#[test]
fn heavy_oversubscription_stays_exact() {
    // 32 pool threads on a 1-core box: maximal interleaving pressure on
    // the publication protocol.
    let g = barabasi_albert(150, 3, WeightSpec::Unit, 99).unwrap();
    let reference = apsp_dijkstra(&g);
    let out = run_par(32, &g);
    assert_eq!(reference.first_difference(&out.dist), None);
    assert_eq!(out.thread_busy.len(), 32);
}

#[test]
fn adversarial_shapes() {
    // Star: every SSSP touches the hub; maximal row-reuse contention.
    let star = star_graph(400);
    let reference = apsp_dijkstra(&star);
    let out = run_par(8, &star);
    assert_eq!(reference.first_difference(&out.dist), None);

    // Complete graph: every row reuse scans everything.
    let complete = complete_graph(120);
    let reference = apsp_dijkstra(&complete);
    let out = run_par(8, &complete);
    assert_eq!(reference.first_difference(&out.dist), None);

    // Long path: worst-case SPFA queue depth.
    let path = parapsp::graph::generate::path_graph(2_000, Direction::Undirected);
    let out = run_par(4, &path);
    assert_eq!(out.dist.get(0, 1_999), 1_999);

    // All-isolated vertices: nothing to relax anywhere.
    let isolated = CsrGraph::from_unit_edges(300, Direction::Directed, &[]).unwrap();
    let out = run_par(4, &isolated);
    assert_eq!(out.dist.reachable_pairs(), 0);
}

#[test]
fn saturating_distances_near_u32_max() {
    // Chained near-MAX weights must saturate, not wrap.
    let g = CsrGraph::from_edges(
        3,
        Direction::Directed,
        &[(0, 1, u32::MAX - 1), (1, 2, u32::MAX - 1)],
    )
    .unwrap();
    let out = run_par(2, &g);
    assert_eq!(out.dist.get(0, 1), u32::MAX - 1);
    // 0 -> 2 saturates to INF == u32::MAX, which reads as "unreachable";
    // the reference Dijkstra must agree so results stay consistent.
    let reference = apsp_dijkstra(&g);
    assert_eq!(reference.first_difference(&out.dist), None);
}

#[test]
fn ordering_procedures_under_stress_inputs() {
    let pool = ThreadPool::new(8);
    // Degenerate degree arrays stress the bucket procedures.
    let cases: Vec<Vec<u32>> = vec![
        vec![0; 10_000],                         // all zero
        vec![65_000; 5_000],                     // all equal & large
        (0..20_000u32).map(|i| i % 2).collect(), // two buckets
        (0..10_000u32).collect(),                // all distinct
        (0..10_000u32).rev().collect(),          // reverse sorted
    ];
    for degrees in &cases {
        for procedure in [
            OrderingProcedure::par_buckets(),
            OrderingProcedure::par_max(),
            OrderingProcedure::multi_lists(),
        ] {
            let order = procedure.compute(degrees, &pool);
            assert!(
                parapsp::order::common::is_permutation(&order, degrees.len()),
                "{} on case of len {}",
                procedure.label(),
                degrees.len()
            );
            if procedure.is_exact() {
                assert!(parapsp::order::common::is_descending_by_degree(
                    degrees, &order
                ));
            }
        }
    }
}
