//! Cross-engine equivalence matrix: every [`parapsp::core::Engine`] must
//! reproduce the sequential basic algorithm's distances bit-for-bit on
//! every generator fixture, with and without a `max_distance` cap.
//!
//! Capped runs are compared against the *post-filtered* exact matrix:
//! because every capped entry is either the exact distance (≤ cap) or
//! unreachable, applying the cap inside the kernel, as a finish-time
//! post-filter (BlockedFW, Dist), or to the finished exact matrix all
//! produce identical bits.

use parapsp::core::{
    ApspEngine, BlockedFwEngine, DistanceMatrix, RunConfig, Runner, SeqEngine, SolverKind,
    StoreSpec, SubsetEngine, INF,
};
use parapsp::dist::{ClusterConfig, DistEngine};
use parapsp::graph::generate::{
    barabasi_albert, erdos_renyi_gnm, grid_graph, path_graph, star_graph, watts_strogatz,
    WeightSpec,
};
use parapsp::graph::{CsrGraph, Direction};
use parapsp::parfor::{Schedule, ThreadPool};

const WEIGHTS: WeightSpec = WeightSpec::Uniform { lo: 1, hi: 9 };

fn fixtures() -> Vec<(&'static str, CsrGraph)> {
    vec![
        (
            "erdos-renyi",
            erdos_renyi_gnm(60, 240, Direction::Directed, WEIGHTS, 11).unwrap(),
        ),
        (
            "barabasi-albert",
            barabasi_albert(70, 3, WEIGHTS, 22).unwrap(),
        ),
        (
            "watts-strogatz",
            watts_strogatz(64, 4, 0.2, WEIGHTS, 33).unwrap(),
        ),
        ("star", star_graph(50)),
        ("path", path_graph(55, Direction::Directed)),
        ("grid", grid_graph(7, 8)),
    ]
}

/// The expected value of cell `(u, v)` under `cap`: the exact distance,
/// or unreachable when an off-diagonal entry exceeds the cap.
fn expected(full: &DistanceMatrix, u: u32, v: u32, cap: Option<u32>) -> u32 {
    let exact = full.get(u, v);
    match cap {
        Some(c) if u != v && exact > c => INF,
        _ => exact,
    }
}

fn assert_matrix(
    engine: &str,
    fixture: &str,
    cap: Option<u32>,
    full: &DistanceMatrix,
    got: &DistanceMatrix,
) {
    assert_eq!(full.n(), got.n(), "{engine} on {fixture}: size mismatch");
    for u in 0..full.n() as u32 {
        for v in 0..full.n() as u32 {
            assert_eq!(
                got.get(u, v),
                expected(full, u, v, cap),
                "{engine} on {fixture} (cap {cap:?}) differs at ({u}, {v})"
            );
        }
    }
}

#[test]
fn every_engine_matches_seq_basic_on_every_fixture() {
    for (fixture, graph) in fixtures() {
        let full = Runner::new(RunConfig::seq_basic())
            .run(SeqEngine::ordered(), &graph)
            .dist;
        for cap in [None, Some(6u32)] {
            let with_cap = |config: RunConfig| match cap {
                Some(c) => config.with_max_distance(c),
                None => config,
            };

            // Shared-memory parallel family: one engine, three configs.
            for (label, config) in [
                ("par-apsp", RunConfig::par_apsp(4)),
                ("par-alg1", RunConfig::par_alg1(2)),
                ("par-alg2", RunConfig::par_alg2(3)),
            ] {
                let out = Runner::new(with_cap(config)).run(ApspEngine::new(), &graph);
                assert_matrix(label, fixture, cap, &full, &out.dist);
            }

            // Sequential family (the order differs per config; the
            // distances must not).
            for (label, config, engine) in [
                (
                    "seq-optimized",
                    RunConfig::seq_optimized(1.0),
                    SeqEngine::ordered(),
                ),
                (
                    "seq-optimized-bucket",
                    RunConfig::seq_optimized_bucket(),
                    SeqEngine::ordered(),
                ),
                (
                    "seq-adaptive",
                    RunConfig::seq_adaptive(10),
                    SeqEngine::adaptive(10),
                ),
            ] {
                let out = Runner::new(with_cap(config)).run(engine, &graph);
                assert_matrix(label, fixture, cap, &full, &out.dist);
            }

            // Blocked Floyd–Warshall (returns the matrix directly).
            let fw = Runner::new(with_cap(RunConfig::new(3))).run(BlockedFwEngine::new(16), &graph);
            assert_matrix("blocked-fw", fixture, cap, &full, &fw);

            // Distributed cluster simulation, 2 nodes.
            let cluster = DistEngine::new(ClusterConfig {
                nodes: 2,
                ..Default::default()
            });
            let out = Runner::new(with_cap(RunConfig::new(1))).run(cluster, &graph);
            assert_matrix("dist", fixture, cap, &full, &out.dist);

            // Subset engine over every source: each row must equal the
            // corresponding full-matrix row.
            let sources: Vec<u32> = (0..graph.vertex_count() as u32).collect();
            let rows =
                Runner::new(with_cap(RunConfig::subset(3))).run(SubsetEngine::new(sources), &graph);
            for u in 0..graph.vertex_count() as u32 {
                let row = rows.row_of(u).expect("every source requested");
                for v in 0..graph.vertex_count() as u32 {
                    assert_eq!(
                        row[v as usize],
                        expected(&full, u, v, cap),
                        "subset on {fixture} (cap {cap:?}) differs at ({u}, {v})"
                    );
                }
            }
        }
    }
}

/// Schedule axis: the loop schedule decides *who* computes each row and
/// *when*, never *what* the row contains — every parallel engine must be
/// bit-identical to seq-basic under every schedule, including the
/// nondeterministically interleaved work-stealing backend.
#[test]
fn every_schedule_matches_seq_basic_on_every_fixture() {
    let schedules = [
        ("dynamic-cyclic", Schedule::dynamic_cyclic()),
        ("dynamic(4)", Schedule::DynamicChunked(4)),
        ("work-stealing", Schedule::work_stealing()),
    ];
    for (fixture, graph) in fixtures() {
        let full = Runner::new(RunConfig::seq_basic())
            .run(SeqEngine::ordered(), &graph)
            .dist;
        for (sched_label, schedule) in schedules {
            for (label, config) in [
                ("par-apsp", RunConfig::par_apsp(4)),
                ("par-alg1", RunConfig::par_alg1(2)),
                ("par-alg2", RunConfig::par_alg2(3)),
            ] {
                let out =
                    Runner::new(config.with_schedule(schedule)).run(ApspEngine::new(), &graph);
                assert_matrix(
                    &format!("{label}[{sched_label}]"),
                    fixture,
                    None,
                    &full,
                    &out.dist,
                );
            }
        }
    }
}

/// Solver axis: the per-source SSSP solver decides the *order* of
/// relaxations inside one row, never the distances — every solver must be
/// bit-identical to seq-basic on every fixture, through the parallel and
/// sequential engines, uncapped and capped. `auto` resolves against each
/// graph at engine prepare time, so this also proves that whatever the
/// tuner picks passes the oracle.
#[test]
fn every_solver_matches_seq_basic_on_every_fixture() {
    let solvers = [
        SolverKind::Dijkstra,
        SolverKind::Delta { delta: None },
        SolverKind::Delta { delta: Some(4) },
        SolverKind::Stepping,
        SolverKind::Auto,
    ];
    for (fixture, graph) in fixtures() {
        let full = Runner::new(RunConfig::seq_basic())
            .run(SeqEngine::ordered(), &graph)
            .dist;
        for cap in [None, Some(6u32)] {
            let with_cap = |config: RunConfig| match cap {
                Some(c) => config.with_max_distance(c),
                None => config,
            };
            for solver in solvers {
                for (label, config) in [
                    ("par-apsp", RunConfig::par_apsp(4)),
                    ("par-alg1", RunConfig::par_alg1(2)),
                ] {
                    let out = Runner::new(with_cap(config).with_solver(solver))
                        .run(ApspEngine::new(), &graph);
                    assert_matrix(
                        &format!("{label}[{}]", solver.label()),
                        fixture,
                        cap,
                        &full,
                        &out.dist,
                    );
                }
                for (label, config, engine) in [
                    ("seq-basic", RunConfig::seq_basic(), SeqEngine::ordered()),
                    (
                        "seq-optimized",
                        RunConfig::seq_optimized(1.0),
                        SeqEngine::ordered(),
                    ),
                    (
                        "seq-adaptive",
                        RunConfig::seq_adaptive(10),
                        SeqEngine::adaptive(10),
                    ),
                ] {
                    let out = Runner::new(with_cap(config).with_solver(solver)).run(engine, &graph);
                    assert_matrix(
                        &format!("{label}[{}]", solver.label()),
                        fixture,
                        cap,
                        &full,
                        &out.dist,
                    );
                }
            }
        }
    }
}

/// Store axis: the matrix storage backend decides *where* finished rows
/// live — dense heap memory, landmark-delta compressed blocks, or
/// out-of-core mmap shards — never what they contain. Every store must be
/// bit-identical to seq-basic through the parallel, sequential, and
/// distributed engines, uncapped and capped. The delta store runs with a
/// deliberately tiny hot-row cache and the mmap stores with tiny decoded
/// budgets so eviction/decode round trips are actually exercised; the
/// `mmap-tiny` cell holds only ~15 decoded rows at these fixture sizes,
/// so leases pin and evict constantly while 4 kernel threads race.
///
/// Row reuse must actually *fire* through the lease layer on every
/// backend — a backend that silently degrades to plain SPFA would still
/// pass the bit-identity oracle, so the test also asserts each store
/// accumulated nonzero `row_reuses` across the sweep.
#[test]
fn every_store_matches_seq_basic_on_every_fixture() {
    let stores = [
        ("dense", StoreSpec::dense()),
        ("delta", StoreSpec::delta(4)),
        ("mmap", StoreSpec::mmap(64 * 1024)),
        ("mmap-tiny", StoreSpec::mmap(4096)),
    ];
    let mut reuses: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for (fixture, graph) in fixtures() {
        let full = Runner::new(RunConfig::seq_basic())
            .run(SeqEngine::ordered(), &graph)
            .dist;
        for cap in [None, Some(6u32)] {
            let with_cap = |config: RunConfig| match cap {
                Some(c) => config.with_max_distance(c),
                None => config,
            };
            for (store_label, store) in &stores {
                for (label, config) in [
                    ("par-apsp", RunConfig::par_apsp(4)),
                    ("seq-basic", RunConfig::seq_basic()),
                    ("seq-optimized", RunConfig::seq_optimized(1.0)),
                ] {
                    let config = with_cap(config).with_store(store.clone());
                    let out = if label.starts_with("seq") {
                        Runner::new(config).run(SeqEngine::ordered(), &graph)
                    } else {
                        Runner::new(config).run(ApspEngine::new(), &graph)
                    };
                    assert_matrix(
                        &format!("{label}[{store_label}]"),
                        fixture,
                        cap,
                        &full,
                        &out.dist,
                    );
                    assert_eq!(
                        out.counters.row_reuses,
                        out.counters.lease_hits + out.counters.lease_misses,
                        "{label}[{store_label}] on {fixture}: every reuse goes through a lease"
                    );
                    *reuses.entry(store_label).or_insert(0) += out.counters.row_reuses;
                }

                // Distributed: the store backs the driver's gather target.
                let cluster = DistEngine::new(ClusterConfig {
                    nodes: 2,
                    ..Default::default()
                });
                let out = Runner::new(with_cap(RunConfig::new(1)).with_store(store.clone()))
                    .run(cluster, &graph);
                assert_matrix(
                    &format!("dist[{store_label}]"),
                    fixture,
                    cap,
                    &full,
                    &out.dist,
                );
            }
        }
    }
    for (store_label, _) in &stores {
        assert!(
            reuses.get(store_label).copied().unwrap_or(0) > 0,
            "{store_label}: row reuse never fired across the whole sweep — \
             the lease layer is being bypassed on this backend"
        );
    }
}

/// Steal-counter stress: a deliberately imbalanced workload — one dense
/// cluster whose SSSP rows are expensive, plus a large fringe of isolated
/// vertices whose rows are trivial — seeds one worker's deque with nearly
/// all of the work. The other workers must obtain rows by stealing, so
/// the pool's steal counter comes out nonzero while the distances stay
/// bit-identical to seq-basic.
#[test]
fn work_stealing_engine_steals_under_imbalanced_load() {
    // Dense directed cluster on vertices 0..100 (expensive rows), isolated
    // vertices 100..400 (each row is INF except the diagonal).
    let cluster = 100u32;
    let n = 400usize;
    let mut edges = Vec::new();
    let mut state = 0x9e37_79b9_7f4a_7c15u64; // splitmix-style seed
    let mut next = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for _ in 0..4_000 {
        let u = (next() % cluster as u64) as u32;
        let v = (next() % cluster as u64) as u32;
        if u != v {
            edges.push((u, v, 1 + (next() % 9) as u32));
        }
    }
    let graph = CsrGraph::from_edges(n, Direction::Directed, &edges).unwrap();
    let full = Runner::new(RunConfig::seq_basic())
        .run(SeqEngine::ordered(), &graph)
        .dist;

    // chunk: 1 keeps every undistributed row stealable; degree-descending
    // source ordering packs all expensive rows into the first worker's
    // contiguous block.
    let config = RunConfig::par_apsp(4).with_schedule(Schedule::WorkStealing { chunk: 1 });
    let runner = Runner::new(config);
    // The counters are statistical (a thief can in principle lose every
    // race), so allow a few attempts before declaring failure; each run
    // must still be bit-identical regardless.
    let mut steals = 0u64;
    for _ in 0..5 {
        let pool = ThreadPool::new(4);
        let out = runner.run_with_pool(ApspEngine::new(), &graph, &pool);
        assert_matrix("par-apsp[work-stealing]", "cluster", None, &full, &out.dist);
        let stats = pool.take_schedule_stats();
        assert!(
            stats.pops > 0,
            "owner never popped its own deque: {stats:?}"
        );
        steals += stats.steals;
        if steals > 0 {
            break;
        }
    }
    assert!(
        steals > 0,
        "no steals observed across 5 imbalanced runs — work stealing inactive"
    );
}
