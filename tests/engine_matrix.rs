//! Cross-engine equivalence matrix: every [`parapsp::core::Engine`] must
//! reproduce the sequential basic algorithm's distances bit-for-bit on
//! every generator fixture, with and without a `max_distance` cap.
//!
//! Capped runs are compared against the *post-filtered* exact matrix:
//! because every capped entry is either the exact distance (≤ cap) or
//! unreachable, applying the cap inside the kernel, as a finish-time
//! post-filter (BlockedFW, Dist), or to the finished exact matrix all
//! produce identical bits.

use parapsp::core::{
    ApspEngine, BlockedFwEngine, DistanceMatrix, RunConfig, Runner, SeqEngine, SubsetEngine, INF,
};
use parapsp::dist::{ClusterConfig, DistEngine};
use parapsp::graph::generate::{
    barabasi_albert, erdos_renyi_gnm, grid_graph, path_graph, star_graph, watts_strogatz,
    WeightSpec,
};
use parapsp::graph::{CsrGraph, Direction};

const WEIGHTS: WeightSpec = WeightSpec::Uniform { lo: 1, hi: 9 };

fn fixtures() -> Vec<(&'static str, CsrGraph)> {
    vec![
        (
            "erdos-renyi",
            erdos_renyi_gnm(60, 240, Direction::Directed, WEIGHTS, 11).unwrap(),
        ),
        (
            "barabasi-albert",
            barabasi_albert(70, 3, WEIGHTS, 22).unwrap(),
        ),
        (
            "watts-strogatz",
            watts_strogatz(64, 4, 0.2, WEIGHTS, 33).unwrap(),
        ),
        ("star", star_graph(50)),
        ("path", path_graph(55, Direction::Directed)),
        ("grid", grid_graph(7, 8)),
    ]
}

/// The expected value of cell `(u, v)` under `cap`: the exact distance,
/// or unreachable when an off-diagonal entry exceeds the cap.
fn expected(full: &DistanceMatrix, u: u32, v: u32, cap: Option<u32>) -> u32 {
    let exact = full.get(u, v);
    match cap {
        Some(c) if u != v && exact > c => INF,
        _ => exact,
    }
}

fn assert_matrix(
    engine: &str,
    fixture: &str,
    cap: Option<u32>,
    full: &DistanceMatrix,
    got: &DistanceMatrix,
) {
    assert_eq!(full.n(), got.n(), "{engine} on {fixture}: size mismatch");
    for u in 0..full.n() as u32 {
        for v in 0..full.n() as u32 {
            assert_eq!(
                got.get(u, v),
                expected(full, u, v, cap),
                "{engine} on {fixture} (cap {cap:?}) differs at ({u}, {v})"
            );
        }
    }
}

#[test]
fn every_engine_matches_seq_basic_on_every_fixture() {
    for (fixture, graph) in fixtures() {
        let full = Runner::new(RunConfig::seq_basic())
            .run(SeqEngine::ordered(), &graph)
            .dist;
        for cap in [None, Some(6u32)] {
            let with_cap = |config: RunConfig| match cap {
                Some(c) => config.with_max_distance(c),
                None => config,
            };

            // Shared-memory parallel family: one engine, three configs.
            for (label, config) in [
                ("par-apsp", RunConfig::par_apsp(4)),
                ("par-alg1", RunConfig::par_alg1(2)),
                ("par-alg2", RunConfig::par_alg2(3)),
            ] {
                let out = Runner::new(with_cap(config)).run(ApspEngine::new(), &graph);
                assert_matrix(label, fixture, cap, &full, &out.dist);
            }

            // Sequential family (the order differs per config; the
            // distances must not).
            for (label, config, engine) in [
                (
                    "seq-optimized",
                    RunConfig::seq_optimized(1.0),
                    SeqEngine::ordered(),
                ),
                (
                    "seq-optimized-bucket",
                    RunConfig::seq_optimized_bucket(),
                    SeqEngine::ordered(),
                ),
                (
                    "seq-adaptive",
                    RunConfig::seq_adaptive(10),
                    SeqEngine::adaptive(10),
                ),
            ] {
                let out = Runner::new(with_cap(config)).run(engine, &graph);
                assert_matrix(label, fixture, cap, &full, &out.dist);
            }

            // Blocked Floyd–Warshall (returns the matrix directly).
            let fw = Runner::new(with_cap(RunConfig::new(3))).run(BlockedFwEngine::new(16), &graph);
            assert_matrix("blocked-fw", fixture, cap, &full, &fw);

            // Distributed cluster simulation, 2 nodes.
            let cluster = DistEngine::new(ClusterConfig {
                nodes: 2,
                ..Default::default()
            });
            let out = Runner::new(with_cap(RunConfig::new(1))).run(cluster, &graph);
            assert_matrix("dist", fixture, cap, &full, &out.dist);

            // Subset engine over every source: each row must equal the
            // corresponding full-matrix row.
            let sources: Vec<u32> = (0..graph.vertex_count() as u32).collect();
            let rows =
                Runner::new(with_cap(RunConfig::subset(3))).run(SubsetEngine::new(sources), &graph);
            for u in 0..graph.vertex_count() as u32 {
                let row = rows.row_of(u).expect("every source requested");
                for v in 0..graph.vertex_count() as u32 {
                    assert_eq!(
                        row[v as usize],
                        expected(&full, u, v, cap),
                        "subset on {fixture} (cap {cap:?}) differs at ({u}, {v})"
                    );
                }
            }
        }
    }
}
