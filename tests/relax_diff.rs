//! Differential tests for the vectorized min-plus row-relaxation kernel:
//! every [`RelaxImpl`] must be bit-for-bit identical to the branchy scalar
//! reference — same output row, same improved-lane count — on adversarial
//! inputs: INF lanes, values near `u32::MAX`, `dt = 0`, tight caps, and
//! row lengths that are not multiples of the 8-lane chunk width.

use proptest::prelude::*;

use parapsp::core::relax::{avx2_available, relax_row, RelaxImpl};
use parapsp::graph::INF;

/// The implementations under test on this machine. Scalar is the
/// reference; Auto resolves to one of the others and is covered by the
/// resolution test below.
fn concrete_impls() -> Vec<RelaxImpl> {
    let mut imps = vec![RelaxImpl::Portable];
    if avx2_available() {
        imps.push(RelaxImpl::Avx2);
    }
    imps
}

/// Run scalar as ground truth, then assert each other implementation
/// produces the identical row and identical improved count.
fn assert_bit_identical(row: &[u32], t_row: &[u32], dt: u32, cap: u32) {
    let mut expect = row.to_vec();
    let expect_hits = relax_row(RelaxImpl::Scalar, &mut expect, t_row, dt, cap);
    for imp in concrete_impls() {
        let mut got = row.to_vec();
        let got_hits = relax_row(imp, &mut got, t_row, dt, cap);
        assert_eq!(
            expect,
            got,
            "{}: row mismatch (dt={dt}, cap={cap}, len={})",
            imp.name(),
            row.len()
        );
        assert_eq!(
            expect_hits,
            got_hits,
            "{}: improved-count mismatch (dt={dt}, cap={cap})",
            imp.name()
        );
    }
}

/// A distance-like lane: finite smallish values, values near the top of
/// the u32 range (overflow bait), and INF, all weighted to co-occur.
fn arb_lane() -> impl Strategy<Value = u32> {
    (0u32..9, any::<u32>()).prop_map(|(sel, raw)| match sel {
        0..=3 => raw % 20_000,
        4 | 5 => u32::MAX - (raw % 65),
        6 | 7 => INF,
        _ => raw,
    })
}

fn arb_dt() -> impl Strategy<Value = u32> {
    (0u32..6, any::<u32>()).prop_map(|(sel, raw)| match sel {
        0..=2 => raw % 10_000,
        3 => 0,
        4 => u32::MAX - (raw % 65),
        _ => raw,
    })
}

fn arb_cap() -> impl Strategy<Value = u32> {
    (0u32..5, any::<u32>()).prop_map(|(sel, raw)| match sel {
        0 | 1 => u32::MAX,
        2 | 3 => raw % 30_000,
        _ => raw,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_impls_match_scalar_bit_for_bit(
        // 1..70 sweeps every tail residue mod 8 several times over.
        pair in proptest::collection::vec((arb_lane(), arb_lane()), 1..70),
        dt in arb_dt(),
        cap in arb_cap(),
    ) {
        let row: Vec<u32> = pair.iter().map(|&(a, _)| a).collect();
        let t_row: Vec<u32> = pair.iter().map(|&(_, b)| b).collect();
        assert_bit_identical(&row, &t_row, dt, cap);
    }

    #[test]
    fn improved_count_equals_observed_row_changes(
        pair in proptest::collection::vec((arb_lane(), arb_lane()), 1..70),
        dt in arb_dt(),
        cap in arb_cap(),
    ) {
        let row: Vec<u32> = pair.iter().map(|&(a, _)| a).collect();
        let t_row: Vec<u32> = pair.iter().map(|&(_, b)| b).collect();
        for imp in std::iter::once(RelaxImpl::Scalar).chain(concrete_impls()) {
            let mut after = row.clone();
            let hits = relax_row(imp, &mut after, &t_row, dt, cap);
            let changed = row.iter().zip(&after).filter(|(a, b)| a != b).count();
            prop_assert_eq!(hits as usize, changed, "{}", imp.name());
            // Relaxation only ever lowers distances, and never below what
            // dt ⊕ t_row admits under the cap.
            for (i, (&before, &now)) in row.iter().zip(&after).enumerate() {
                prop_assert!(now <= before, "{}: lane {i} rose", imp.name());
                if now != before {
                    prop_assert_eq!(now, dt.saturating_add(t_row[i]), "lane {i}");
                    prop_assert!(now <= cap, "lane {i} above cap");
                }
            }
        }
    }
}

#[test]
fn seeded_edge_cases() {
    // dt = 0 is the self-row reuse case: row = min(row, t_row) under cap.
    assert_bit_identical(
        &[5, INF, 0, 7, 9, 2, INF, 1, 4],
        &[3, 1, INF, 7, 0, 8, 2, INF, 3],
        0,
        u32::MAX,
    );
    // Every addition overflows: all candidates saturate to INF, no change.
    let near_max = [u32::MAX - 1, u32::MAX - 2, INF, u32::MAX - 7];
    assert_bit_identical(&[10, 20, 30, 40], &near_max, u32::MAX - 3, u32::MAX);
    // dt itself is INF (unreachable intermediate): nothing may improve.
    let row = [1u32, 2, 3, 4, 5, 6, 7, 8, 9, 10];
    let mut copy = row;
    for imp in std::iter::once(RelaxImpl::Scalar).chain(concrete_impls()) {
        let hits = relax_row(imp, &mut copy, &[0; 10], INF, u32::MAX);
        assert_eq!(hits, 0, "{}", imp.name());
        assert_eq!(copy, row, "{}", imp.name());
    }
    // cap = 0 admits only exact zeros.
    assert_bit_identical(&[4, 0, 9, INF, 2, 8, 1, 3], &[0, 0, 0, 0, 0, 0, 0, 0], 0, 0);
    // Tight cap between candidate values: some improvements discarded.
    assert_bit_identical(
        &[50, 60, 70, 80, 90, 100, 110, 120, 130],
        &[1, 2, 3, 4, 5, 6, 7, 8, 9],
        40,
        45,
    );
    // Lengths around the 8-lane boundary, hostile values at the tail.
    for len in [1usize, 7, 8, 9, 15, 16, 17, 31] {
        let row: Vec<u32> = (0..len)
            .map(|i| if i == len - 1 { INF } else { 1000 + i as u32 })
            .collect();
        let t_row: Vec<u32> = (0..len)
            .map(|i| {
                if i % 3 == 0 {
                    u32::MAX - i as u32
                } else {
                    i as u32
                }
            })
            .collect();
        assert_bit_identical(&row, &t_row, 7, 2000);
    }
}

#[test]
fn auto_resolution_is_concrete_and_consistent() {
    let resolved = RelaxImpl::Auto.resolve();
    assert_ne!(resolved, RelaxImpl::Auto);
    if avx2_available() {
        assert_eq!(resolved, RelaxImpl::Avx2);
    } else {
        assert_eq!(resolved, RelaxImpl::Portable);
    }
    // Auto must behave exactly like whatever it resolves to.
    let row = [9u32, INF, 3, 14, 8, 2, INF, 6, 11];
    let t_row = [1u32, 4, INF, 2, 0, 9, 5, INF, 3];
    let mut via_auto = row;
    let mut via_resolved = row;
    let a = relax_row(RelaxImpl::Auto, &mut via_auto, &t_row, 3, 15);
    let b = relax_row(resolved, &mut via_resolved, &t_row, 3, 15);
    assert_eq!(via_auto, via_resolved);
    assert_eq!(a, b);
}
