//! Cross-crate exactness: every algorithm in the workspace must produce
//! identical distance matrices on the same graph — the paper's central
//! correctness claim ("the exact same outputs of the Peng et al.'s
//! algorithm, which are the precise APSP solutions").

use parapsp::core::baselines::{apsp_bfs, apsp_dijkstra, floyd_warshall, par_apsp_dijkstra};
use parapsp::core::engine::{ApspEngine, RunConfig, Runner, SeqEngine};
use parapsp::core::kernel::KernelOptions;
use parapsp::core::ApspOutput;
use parapsp::graph::generate::{
    barabasi_albert, erdos_renyi_gnm, grid_graph, scale_free_directed, watts_strogatz, WeightSpec,
};
use parapsp::graph::{CsrGraph, Direction};
use parapsp::order::OrderingProcedure;
use parapsp::parfor::{Schedule, ThreadPool};

fn run_par(config: RunConfig, graph: &CsrGraph) -> ApspOutput {
    Runner::new(config).run(ApspEngine::new(), graph)
}

fn parallel_variants(threads: usize) -> Vec<RunConfig> {
    vec![
        RunConfig::par_alg1(threads),
        RunConfig::par_alg2(threads),
        RunConfig::par_apsp(threads).with_ordering(OrderingProcedure::par_buckets()),
        RunConfig::par_apsp(threads).with_ordering(OrderingProcedure::par_max()),
        RunConfig::par_apsp(threads),
    ]
}

fn assert_all_agree(graph: &CsrGraph, context: &str) {
    let reference = apsp_dijkstra(graph);

    // Classic baselines.
    assert_eq!(
        reference.first_difference(&floyd_warshall(graph)),
        None,
        "{context}: floyd-warshall"
    );
    if graph.is_unit_weight() {
        assert_eq!(
            reference.first_difference(&apsp_bfs(graph)),
            None,
            "{context}: bfs"
        );
    }

    // Sequential Peng family.
    assert_eq!(
        reference.first_difference(
            &Runner::new(RunConfig::seq_basic())
                .run(SeqEngine::ordered(), graph)
                .dist
        ),
        None,
        "{context}: seq-basic"
    );
    assert_eq!(
        reference.first_difference(
            &Runner::new(RunConfig::seq_optimized(1.0))
                .run(SeqEngine::ordered(), graph)
                .dist
        ),
        None,
        "{context}: seq-optimized"
    );
    assert_eq!(
        reference.first_difference(
            &Runner::new(RunConfig::seq_adaptive(4))
                .run(SeqEngine::adaptive(4), graph)
                .dist
        ),
        None,
        "{context}: seq-adaptive"
    );

    // Parallel family, multiple thread counts.
    for threads in [1usize, 3, 7] {
        for config in parallel_variants(threads) {
            let out = run_par(config, graph);
            assert_eq!(
                reference.first_difference(&out.dist),
                None,
                "{context}: {} x{threads}",
                out.algorithm
            );
        }
        let pool = ThreadPool::new(threads);
        assert_eq!(
            reference.first_difference(&par_apsp_dijkstra(graph, &pool)),
            None,
            "{context}: par-dijkstra x{threads}"
        );
    }
}

#[test]
fn scale_free_unit_weights() {
    let g = barabasi_albert(180, 3, WeightSpec::Unit, 101).unwrap();
    assert_all_agree(&g, "BA(180, 3)");
}

#[test]
fn scale_free_weighted() {
    let g = barabasi_albert(150, 2, WeightSpec::Uniform { lo: 1, hi: 50 }, 102).unwrap();
    assert_all_agree(&g, "BA weighted");
}

#[test]
fn directed_scale_free() {
    let g = scale_free_directed(160, 3, 0.3, WeightSpec::Uniform { lo: 1, hi: 9 }, 103).unwrap();
    assert_all_agree(&g, "directed scale-free");
}

#[test]
fn erdos_renyi_directed_weighted() {
    let g = erdos_renyi_gnm(
        140,
        900,
        Direction::Directed,
        WeightSpec::Uniform { lo: 1, hi: 100 },
        104,
    )
    .unwrap();
    assert_all_agree(&g, "ER directed");
}

#[test]
fn sparse_disconnected_graph() {
    // Far fewer edges than vertices: many components, lots of INF pairs.
    let g = erdos_renyi_gnm(120, 40, Direction::Undirected, WeightSpec::Unit, 105).unwrap();
    assert_all_agree(&g, "sparse disconnected");
}

#[test]
fn small_world_graph() {
    let g = watts_strogatz(130, 6, 0.2, WeightSpec::Unit, 106).unwrap();
    assert_all_agree(&g, "watts-strogatz");
}

#[test]
fn grid_graph_agrees() {
    let g = grid_graph(9, 13);
    assert_all_agree(&g, "grid 9x13");
}

#[test]
fn undirected_results_are_symmetric() {
    let g = barabasi_albert(200, 3, WeightSpec::Uniform { lo: 1, hi: 9 }, 107).unwrap();
    let out = run_par(RunConfig::par_apsp(4), &g);
    assert!(out.dist.is_symmetric());
}

#[test]
fn every_schedule_and_kernel_combination_is_exact() {
    let g = barabasi_albert(100, 3, WeightSpec::Unit, 108).unwrap();
    let reference = apsp_dijkstra(&g);
    for schedule in [
        Schedule::Block,
        Schedule::StaticCyclic,
        Schedule::DynamicChunked(1),
        Schedule::DynamicChunked(16),
    ] {
        for row_reuse in [false, true] {
            for dedup_queue in [false, true] {
                let out = run_par(
                    RunConfig::par_apsp(4)
                        .with_schedule(schedule)
                        .with_kernel_options(KernelOptions {
                            row_reuse,
                            dedup_queue,
                            ..KernelOptions::default()
                        }),
                    &g,
                );
                assert_eq!(
                    reference.first_difference(&out.dist),
                    None,
                    "{schedule:?} reuse={row_reuse} dedup={dedup_queue}"
                );
            }
        }
    }
}

#[test]
fn every_relax_impl_is_exact_on_generator_fixtures() {
    use parapsp::core::relax::RelaxImpl;
    let fixtures: Vec<(&str, CsrGraph)> = vec![
        (
            "ER directed weighted",
            erdos_renyi_gnm(
                110,
                700,
                Direction::Directed,
                WeightSpec::Uniform { lo: 1, hi: 60 },
                201,
            )
            .unwrap(),
        ),
        (
            "ER undirected sparse",
            erdos_renyi_gnm(100, 35, Direction::Undirected, WeightSpec::Unit, 202).unwrap(),
        ),
        (
            "BA undirected weighted",
            barabasi_albert(120, 3, WeightSpec::Uniform { lo: 1, hi: 9 }, 203).unwrap(),
        ),
        (
            "watts-strogatz",
            watts_strogatz(110, 6, 0.25, WeightSpec::Uniform { lo: 1, hi: 5 }, 204).unwrap(),
        ),
        (
            "directed scale-free",
            scale_free_directed(105, 3, 0.3, WeightSpec::Uniform { lo: 1, hi: 20 }, 205).unwrap(),
        ),
    ];
    for (label, graph) in &fixtures {
        let reference = apsp_dijkstra(graph);
        for relax in RelaxImpl::ALL {
            let out = run_par(RunConfig::par_apsp(4).with_relax(relax), graph);
            assert_eq!(
                reference.first_difference(&out.dist),
                None,
                "{label}: relax={}",
                relax.name()
            );
        }
    }
}

#[test]
fn repeated_parallel_runs_are_deterministic() {
    // Distances must be identical run to run (they are exact), even though
    // thread interleavings differ.
    let g = barabasi_albert(150, 3, WeightSpec::Unit, 109).unwrap();
    let first = run_par(RunConfig::par_apsp(8), &g);
    for _ in 0..5 {
        let again = run_par(RunConfig::par_apsp(8), &g);
        assert_eq!(first.dist.first_difference(&again.dist), None);
    }
}
