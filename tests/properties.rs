//! Property-based tests (proptest) over random graphs and degree arrays:
//! the structural invariants every component must uphold regardless of
//! input shape.

use proptest::prelude::*;

use parapsp::core::baselines::apsp_dijkstra;
use parapsp::core::engine::{ApspEngine, RunConfig, Runner};
use parapsp::core::ApspOutput;
use parapsp::graph::{CsrGraph, Direction, GraphBuilder, INF};
use parapsp::order::common::{is_descending_by_degree, is_permutation};
use parapsp::order::OrderingProcedure;
use parapsp::parfor::ThreadPool;

/// Strategy: an arbitrary graph with up to `max_n` vertices and `max_m`
/// edges, random directedness and weights in 1..=20.
fn run_par(threads: usize, graph: &CsrGraph) -> ApspOutput {
    Runner::new(RunConfig::par_apsp(threads)).run(ApspEngine::new(), graph)
}

fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_n, any::<bool>()).prop_flat_map(move |(n, directed)| {
        let edge = (0..n as u32, 0..n as u32, 1u32..=20);
        proptest::collection::vec(edge, 0..max_m).prop_map(move |edges| {
            let direction = if directed {
                Direction::Directed
            } else {
                Direction::Undirected
            };
            let mut b = GraphBuilder::new(n, direction);
            for (u, v, w) in edges {
                b.add_edge(u, v, w).expect("endpoints in range");
            }
            b.build()
        })
    })
}

/// Strategy: `n × n` row contents for a store of `3..max_n` vertices.
fn arb_rows(max_n: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    (3..max_n).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(0u32..100_000, n), n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parapsp_matches_heap_dijkstra(graph in arb_graph(60, 300)) {
        let reference = apsp_dijkstra(&graph);
        let out = run_par(4, &graph);
        prop_assert_eq!(reference.first_difference(&out.dist), None);
    }

    #[test]
    fn distances_satisfy_triangle_inequality(graph in arb_graph(40, 150)) {
        let d = run_par(3, &graph).dist;
        let n = d.n();
        for u in 0..n as u32 {
            prop_assert_eq!(d.get(u, u), 0);
            for v in 0..n as u32 {
                for w in 0..n as u32 {
                    let uv = d.get(u, v);
                    let vw = d.get(v, w);
                    let uw = d.get(u, w);
                    if uv != INF && vw != INF {
                        prop_assert!(
                            uw <= uv.saturating_add(vw),
                            "d({u},{w}) = {uw} > {uv} + {vw}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn undirected_matrices_are_symmetric(graph in arb_graph(50, 200)) {
        if !graph.direction().is_directed() {
            let d = run_par(2, &graph).dist;
            prop_assert!(d.is_symmetric());
        }
    }

    #[test]
    fn every_finite_distance_is_witnessed_by_an_edge_path(graph in arb_graph(30, 120)) {
        // Any finite d(u, v) with u != v must decompose through some
        // in-neighbor of v: d(u, v) = d(u, t) + w(t, v) for some arc (t, v).
        let d = run_par(2, &graph).dist;
        let n = d.n();
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                let duv = d.get(u, v);
                if u == v || duv == INF {
                    continue;
                }
                let mut witnessed = false;
                'outer: for t in 0..n as u32 {
                    let dut = d.get(u, t);
                    if dut == INF {
                        continue;
                    }
                    for (target, w) in graph.out_edges(t) {
                        if target == v && dut.saturating_add(w) == duv {
                            witnessed = true;
                            break 'outer;
                        }
                    }
                }
                prop_assert!(witnessed, "d({u},{v}) = {duv} has no witness");
            }
        }
    }

    #[test]
    fn ordering_procedures_always_yield_valid_orders(
        degrees in proptest::collection::vec(0u32..5_000, 0..400),
        threads in 1usize..6,
    ) {
        let pool = ThreadPool::new(threads);
        for procedure in [
            OrderingProcedure::selection(),
            OrderingProcedure::SeqBucket,
            OrderingProcedure::par_buckets(),
            OrderingProcedure::par_max(),
            OrderingProcedure::multi_lists(),
        ] {
            let order = procedure.compute(&degrees, &pool);
            prop_assert!(is_permutation(&order, degrees.len()), "{}", procedure.label());
            if procedure.is_exact() {
                prop_assert!(
                    is_descending_by_degree(&degrees, &order),
                    "{} not descending",
                    procedure.label()
                );
            }
        }
    }

    #[test]
    fn multilists_is_identical_to_stable_counting_sort(
        degrees in proptest::collection::vec(0u32..1_000, 0..500),
        threads in 1usize..6,
    ) {
        let pool = ThreadPool::new(threads);
        let ml = OrderingProcedure::multi_lists().compute(&degrees, &pool);
        let reference = OrderingProcedure::SeqBucket.compute(&degrees, &pool);
        prop_assert_eq!(ml, reference);
    }

    #[test]
    fn exact_orders_have_zero_inversions_and_displacement(
        degrees in proptest::collection::vec(0u32..2_000, 0..300),
        threads in 1usize..5,
    ) {
        use parapsp::order::quality::{hub_displacement, inversions};
        let pool = ThreadPool::new(threads);
        for procedure in [
            OrderingProcedure::selection(),
            OrderingProcedure::SeqBucket,
            OrderingProcedure::par_max(),
            OrderingProcedure::multi_lists(),
        ] {
            let order = procedure.compute(&degrees, &pool);
            prop_assert_eq!(inversions(&degrees, &order), 0, "{}", procedure.label());
            let k = (degrees.len() / 10).max(1);
            prop_assert!(
                hub_displacement(&degrees, &order, k) < 1e-12,
                "{}",
                procedure.label()
            );
        }
    }

    #[test]
    fn radix_sort_matches_std_sort(
        keys in proptest::collection::vec(any::<u32>(), 0..500),
        threads in 1usize..5,
        ascending in any::<bool>(),
    ) {
        use parapsp::order::radix::{par_radix_sort_indices, SortDirection};
        let pool = ThreadPool::new(threads);
        let direction = if ascending {
            SortDirection::Ascending
        } else {
            SortDirection::Descending
        };
        let ours = par_radix_sort_indices(&keys, direction, &pool);
        let mut expected: Vec<u32> = (0..keys.len() as u32).collect();
        if ascending {
            expected.sort_by_key(|&i| keys[i as usize]);
        } else {
            expected.sort_by_key(|&i| std::cmp::Reverse(keys[i as usize]));
        }
        prop_assert_eq!(ours, expected);
    }

    #[test]
    fn capped_apsp_truncates_exactly(
        graph in arb_graph(40, 160),
        cap in 0u32..60,
    ) {
        use parapsp::core::kernel::KernelOptions;
        let full = apsp_dijkstra(&graph);
        let capped = Runner::new(RunConfig::par_apsp(3).with_kernel_options(KernelOptions {
                max_distance: Some(cap),
                ..KernelOptions::default()
            }))
            .run(ApspEngine::new(), &graph)
            .dist;
        for u in 0..graph.vertex_count() as u32 {
            for v in 0..graph.vertex_count() as u32 {
                let exact = full.get(u, v);
                let expect = if exact <= cap || u == v { exact } else { INF };
                prop_assert_eq!(capped.get(u, v), expect, "({}, {}) cap {}", u, v, cap);
            }
        }
    }

    #[test]
    fn subset_rows_equal_full_matrix_rows(
        graph in arb_graph(50, 250),
        selector in proptest::collection::vec(any::<bool>(), 50),
        threads in 1usize..5,
    ) {
        use parapsp::core::engine::SubsetEngine;
        let n = graph.vertex_count();
        let sources: Vec<u32> = (0..n as u32)
            .filter(|&v| selector.get(v as usize).copied().unwrap_or(false))
            .collect();
        let rows = Runner::new(RunConfig::subset(threads))
            .run(SubsetEngine::new(sources.clone()), &graph);
        let full = apsp_dijkstra(&graph);
        for (i, &s) in sources.iter().enumerate() {
            prop_assert_eq!(rows.row(i), full.row(s), "source {}", s);
        }
    }

    #[test]
    fn distributed_simulation_is_exact(
        graph in arb_graph(45, 220),
        nodes in 1usize..6,
        hub_fraction in 0.0f64..=1.0,
    ) {
        use parapsp::dist::{ClusterConfig, DistEngine};
        let reference = apsp_dijkstra(&graph);
        let out = Runner::new(RunConfig::new(1)).run(
            DistEngine::new(ClusterConfig { nodes, hub_fraction, ..Default::default() }),
            &graph,
        );
        prop_assert_eq!(reference.first_difference(&out.dist), None);
    }

    #[test]
    fn landmark_bounds_bracket_exact_distances(
        n in 5usize..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120),
        k in 1usize..8,
    ) {
        use parapsp::analysis::landmarks::{LandmarkIndex, LandmarkStrategy};
        let mut b = GraphBuilder::new(n, Direction::Undirected);
        for (u, v) in edges {
            if (u as usize) < n && (v as usize) < n {
                b.add_edge(u, v, 1).unwrap();
            }
        }
        let graph = b.build();
        let index = LandmarkIndex::build(&graph, k.min(n), LandmarkStrategy::HighestDegree, 2);
        let exact = apsp_dijkstra(&graph);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                let d = exact.get(u, v);
                prop_assert!(index.lower_bound(u, v) <= d);
                if d != INF {
                    prop_assert!(index.upper_bound(u, v) >= d);
                } else {
                    prop_assert_eq!(index.upper_bound(u, v), INF);
                }
            }
        }
        // A pair touching a landmark routes through it exactly, so the
        // estimate (the upper bound) must equal the true distance there.
        for &l in index.landmarks() {
            for v in 0..n as u32 {
                prop_assert_eq!(index.estimate(l, v), exact.get(l, v), "landmark {}", l);
                prop_assert_eq!(index.estimate(v, l), exact.get(v, l), "landmark {}", l);
            }
        }
    }

    #[test]
    fn leases_are_bit_identical_to_row_copies_on_every_backend(
        rows in arb_rows(20),
        order in proptest::collection::vec(any::<u32>(), 1..40),
        pin_at in any::<u32>(),
    ) {
        use parapsp::core::{Store, StoreSpec};
        let n = rows.len();
        // A lease is a *view* of a published row — whatever the backend
        // does underneath (lend, decode, evict, decode again), the bytes a
        // held lease shows must stay bit-identical to a `with_row` copy,
        // under an arbitrary publish order and read churn. The mmap budget
        // is three decoded rows so churn genuinely evicts.
        for spec in [
            StoreSpec::dense(),
            StoreSpec::delta(2),
            StoreSpec::mmap(3 * 4 * n as u64),
        ] {
            let store = Store::new(n, &spec);
            // Deterministic shuffle of the publish order from `order`.
            let mut perm: Vec<u32> = (0..n as u32).collect();
            for (i, &x) in order.iter().enumerate() {
                perm.swap(i % n, (x as usize) % n);
            }
            let p = perm[(pin_at as usize) % n];
            let mut held = None;
            for &s in &perm {
                store.publish_from(s, &rows[s as usize]);
                if s == p {
                    // Pin mid-publication: later publishes and reads churn
                    // the cache around the held lease.
                    held = store.lease_row(p);
                }
            }
            let lease = held.expect("published row must lease");
            for &x in &order {
                let t = x % n as u32;
                let matches = store
                    .with_row(t, |r| r == rows[t as usize].as_slice())
                    .expect("published row must be readable");
                prop_assert!(matches, "{}: with_row({t}) diverged", spec.label());
                prop_assert_eq!(
                    &lease[..],
                    rows[p as usize].as_slice(),
                    "{}: held lease of row {} corrupted by churn",
                    spec.label(),
                    p
                );
            }
            drop(lease);
            for s in 0..n as u32 {
                let lease = store.lease_row(s).expect("all rows published");
                prop_assert_eq!(&lease[..], rows[s as usize].as_slice());
            }
        }
    }

    #[test]
    fn pinned_rows_survive_churn_at_the_minimal_budget(
        rows in arb_rows(16),
        churn in proptest::collection::vec(any::<u32>(), 1..60),
        pin_at in any::<u32>(),
    ) {
        use parapsp::core::{Store, StoreSpec};
        let n = rows.len();
        // Exactly the smallest budget `validate_for` admits: two decoded
        // rows. One is pinned by the held lease; every other row must
        // stream through the single remaining slot without ever evicting
        // the pinned one.
        let store = Store::new(n, &StoreSpec::mmap(2 * 4 * n as u64));
        for (s, row) in rows.iter().enumerate() {
            store.publish_from(s as u32, row);
        }
        let p = pin_at % n as u32;
        let lease = store.lease_row(p).expect("published row must lease");
        for &x in &churn {
            let t = x % n as u32;
            let matches = store
                .with_row(t, |r| r == rows[t as usize].as_slice())
                .expect("published row must be readable");
            prop_assert!(matches, "with_row({t}) diverged under minimal budget");
            prop_assert_eq!(
                &lease[..],
                rows[p as usize].as_slice(),
                "pinned row {} evicted or corrupted by churn on {}",
                p,
                t
            );
        }
        prop_assert!(
            store.pinned_bytes_peak() >= 4 * n as u64,
            "peak pinned accounting missed the held lease"
        );
    }

    #[test]
    fn general_sort_matches_std_sort(
        keys in proptest::collection::vec(0u32..10_000, 0..600),
        threads in 1usize..5,
    ) {
        use parapsp::order::sort::{sort_indices, SortDirection};
        let pool = ThreadPool::new(threads);
        let ours = sort_indices(&keys, SortDirection::Ascending, &pool);
        let mut expected: Vec<u32> = (0..keys.len() as u32).collect();
        expected.sort_by_key(|&i| keys[i as usize]);
        prop_assert_eq!(ours, expected);
    }
}
