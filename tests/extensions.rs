//! Integration tests for the extension features: path reconstruction,
//! the adaptive parallel variant, the distributed-memory simulation, and
//! the betweenness-based justification of the paper's degree heuristic.

use parapsp::analysis::betweenness_centrality;
use parapsp::core::adaptive::{par_adaptive, AdaptiveConfig};
use parapsp::core::baselines::apsp_dijkstra;
use parapsp::core::engine::{ApspEngine, RunConfig, Runner};
use parapsp::core::paths::par_apsp_with_paths;
use parapsp::datasets::{find, Scale};
use parapsp::dist::{ClusterConfig, DistApspOutput, DistEngine};
use parapsp::graph::degree;
use parapsp::graph::generate::{scale_free_directed, WeightSpec};
use parapsp::graph::CsrGraph;
use parapsp::parfor::ThreadPool;

fn dist_apsp(graph: &CsrGraph, config: ClusterConfig) -> DistApspOutput {
    Runner::new(RunConfig::new(1)).run(DistEngine::new(config), graph)
}

#[test]
fn all_extension_algorithms_agree_with_the_core_on_a_replica() {
    let graph = find("ego-Twitter")
        .unwrap()
        .generate(Scale::Vertices(250))
        .unwrap();
    let reference = apsp_dijkstra(&graph);

    let parapsp = Runner::new(RunConfig::par_apsp(4)).run(ApspEngine::new(), &graph);
    assert_eq!(reference.first_difference(&parapsp.dist), None, "ParAPSP");

    let adaptive = par_adaptive(&graph, 4, AdaptiveConfig::default());
    assert_eq!(reference.first_difference(&adaptive.dist), None, "adaptive");

    let with_paths = par_apsp_with_paths(&graph, 4);
    assert_eq!(reference.first_difference(&with_paths.dist), None, "paths");

    let distributed = dist_apsp(
        &graph,
        ClusterConfig {
            nodes: 3,
            hub_fraction: 0.05,
            ..Default::default()
        },
    );
    assert_eq!(
        reference.first_difference(&distributed.dist),
        None,
        "distributed"
    );
}

#[test]
fn reconstructed_routes_have_matching_lengths_on_directed_weighted_graph() {
    let graph = scale_free_directed(150, 3, 0.4, WeightSpec::Uniform { lo: 1, hi: 9 }, 42).unwrap();
    let result = par_apsp_with_paths(&graph, 3);
    let n = graph.vertex_count() as u32;
    let mut checked = 0;
    for s in (0..n).step_by(17) {
        for v in (0..n).step_by(13) {
            let d = result.dist.get(s, v);
            if d == parapsp::graph::INF || s == v {
                continue;
            }
            let route = result.pred.path(s, v).expect("finite distance has a route");
            // Route length in edges must be <= distance (unit minimum
            // weight) and its weighted length must equal the distance.
            let mut total = 0u32;
            for pair in route.windows(2) {
                let w = graph
                    .out_edges(pair[0])
                    .filter(|&(t, _)| t == pair[1])
                    .map(|(_, w)| w)
                    .min()
                    .expect("route uses real edges");
                total += w;
            }
            assert_eq!(total, d);
            checked += 1;
        }
    }
    assert!(checked > 20, "too few pairs exercised ({checked})");
}

#[test]
fn distributed_hub_sharing_increases_reuse() {
    let graph = find("Livemocha")
        .unwrap()
        .generate(Scale::Vertices(400))
        .unwrap();
    let isolated = dist_apsp(
        &graph,
        ClusterConfig {
            nodes: 4,
            hub_fraction: 0.0,
            ..Default::default()
        },
    );
    let sharing = dist_apsp(
        &graph,
        ClusterConfig {
            nodes: 4,
            hub_fraction: 0.1,
            ..Default::default()
        },
    );
    let remote_isolated: u64 = isolated.node_stats.iter().map(|s| s.remote_reuses).sum();
    let remote_sharing: u64 = sharing.node_stats.iter().map(|s| s.remote_reuses).sum();
    assert_eq!(remote_isolated, 0);
    assert!(remote_sharing > 0, "hub rows must be reused remotely");
    assert_eq!(isolated.dist.first_difference(&sharing.dist), None);
}

#[test]
fn degree_order_is_a_good_proxy_for_betweenness() {
    // The paper's §2.2 heuristic, quantified: on a scale-free replica the
    // top-degree vertices should capture a large share of the total
    // betweenness (that is *why* computing hub rows early pays off).
    let graph = find("Flickr")
        .unwrap()
        .generate(Scale::Vertices(600))
        .unwrap();
    let pool = ThreadPool::new(4);
    let betweenness = betweenness_centrality(&graph, &pool);
    let degrees = degree::out_degrees(&graph);

    let mut by_degree: Vec<u32> = (0..600u32).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(degrees[v as usize]));
    let total: f64 = betweenness.iter().sum();
    let top_decile: f64 = by_degree[..60]
        .iter()
        .map(|&v| betweenness[v as usize])
        .sum();
    assert!(
        top_decile > total * 0.5,
        "top-degree decile carries only {:.0}% of betweenness",
        top_decile / total * 100.0
    );
}
