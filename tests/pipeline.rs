//! End-to-end pipeline tests: datasets → APSP → analysis, and file I/O →
//! APSP — the workflows the examples demonstrate, asserted.

use parapsp::analysis::centrality::{
    closeness_centrality, harmonic_centrality, top_k, Normalization,
};
use parapsp::analysis::components::{reach_counts, weakly_connected_components};
use parapsp::analysis::paths::{distance_distribution, path_stats};
use parapsp::core::baselines::apsp_bfs;
use parapsp::core::engine::{ApspEngine, RunConfig, Runner};
use parapsp::core::ApspOutput;
use parapsp::datasets::{find, paper_datasets, Scale};
use parapsp::graph::degree;
use parapsp::graph::io::{read_edge_list, ParseOptions};
use parapsp::graph::{CsrGraph, Direction};

fn run_par(threads: usize, graph: &CsrGraph) -> ApspOutput {
    Runner::new(RunConfig::par_apsp(threads)).run(ApspEngine::new(), graph)
}

#[test]
fn every_replica_runs_end_to_end_at_tiny_scale() {
    for spec in paper_datasets() {
        let graph = spec.generate(Scale::Vertices(150)).unwrap();
        let out = run_par(3, &graph);
        // Cross-check with BFS (replicas are unit-weight).
        let reference = apsp_bfs(&graph);
        assert_eq!(reference.first_difference(&out.dist), None, "{}", spec.name);
        let stats = path_stats(&out.dist);
        assert!(stats.diameter >= 1, "{}: diameter", spec.name);
        assert!(stats.average_path_length > 1.0, "{}: avg path", spec.name);
    }
}

#[test]
fn hub_dominates_centrality_in_scale_free_replica() {
    let graph = find("Flickr")
        .unwrap()
        .generate(Scale::Vertices(400))
        .unwrap();
    let degrees = degree::out_degrees(&graph);
    let out = run_par(4, &graph);
    let closeness = closeness_centrality(&out.dist, Normalization::WassermanFaust);
    let harmonic = harmonic_centrality(&out.dist);

    // The top-closeness vertex should be a high-degree vertex: within the
    // top decile of the degree distribution.
    let top = top_k(&closeness, 1)[0];
    let mut sorted_degrees = degrees.clone();
    sorted_degrees.sort_unstable_by(|a, b| b.cmp(a));
    let decile = sorted_degrees[degrees.len() / 10];
    assert!(
        degrees[top as usize] >= decile,
        "top closeness vertex has degree {} below the top decile {decile}",
        degrees[top as usize]
    );
    // Harmonic and closeness agree on the top vertex for strongly
    // hub-dominated graphs most of the time; assert at least overlap of
    // top-5 sets.
    let c5: std::collections::HashSet<u32> = top_k(&closeness, 5).into_iter().collect();
    let h5: std::collections::HashSet<u32> = top_k(&harmonic, 5).into_iter().collect();
    assert!(!c5.is_disjoint(&h5));
}

#[test]
fn distance_distribution_is_small_world() {
    // Small-world property: almost all pairs within a few hops.
    let graph = find("Livemocha")
        .unwrap()
        .generate(Scale::Vertices(500))
        .unwrap();
    let out = run_par(2, &graph);
    let stats = path_stats(&out.dist);
    assert!(stats.diameter <= 10, "diameter {}", stats.diameter);
    let hist = distance_distribution(&out.dist);
    let within3: usize = hist.iter().take(4).sum();
    assert!(
        within3 as f64 > stats.reachable_pairs as f64 * 0.5,
        "less than half of pairs within 3 hops"
    );
}

#[test]
fn component_structure_matches_matrix_reachability() {
    // A replica is connected w.h.p.; add isolated vertices by parsing a
    // file with a detached clique.
    let text = "0 1\n1 2\n2 0\n5 6\n";
    let loaded =
        read_edge_list(text.as_bytes(), ParseOptions::snap(Direction::Undirected)).unwrap();
    let (ids, count) = weakly_connected_components(&loaded.graph);
    assert_eq!(count, 2);
    let out = run_par(2, &loaded.graph);
    let reach = reach_counts(&out.dist);
    for (v, &r) in reach.iter().enumerate() {
        let same_component = ids.iter().filter(|&&c| c == ids[v]).count() - 1;
        assert_eq!(r, same_component, "vertex {v}");
    }
}

#[test]
fn snap_file_to_centrality_pipeline() {
    let text = "\
# tiny collaboration network
1 2
1 3
1 4
2 3
4 5
5 6
";
    let loaded =
        read_edge_list(text.as_bytes(), ParseOptions::snap(Direction::Undirected)).unwrap();
    let out = run_par(2, &loaded.graph);
    let closeness = closeness_centrality(&out.dist, Normalization::Classic);
    // Vertex "1" (dense id 0) and "4" (dense id 3) are the bridges; "1" has
    // degree 3 and should be the most central.
    let top = top_k(&closeness, 1)[0];
    assert_eq!(loaded.original_ids[top as usize], 1);
}

#[test]
fn bundled_sample_dataset_loads_and_analyzes() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample-collab.txt");
    let loaded =
        parapsp::graph::io::read_edge_list_file(path, ParseOptions::snap(Direction::Undirected))
            .unwrap();
    assert!(loaded.graph.vertex_count() >= 190);
    let out = run_par(2, &loaded.graph);
    let stats = path_stats(&out.dist);
    assert!(stats.connectivity() > 0.99, "sample graph is connected");
    assert!(stats.diameter >= 3);
}
