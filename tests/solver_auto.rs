//! Property tests for the solver seam: the probe is a pure function of
//! the graph, `auto` always resolves to a concrete solver, and every
//! solver choice — including whatever the tuner picks — passes the
//! bit-identity oracle against the sequential baseline, capped and
//! uncapped.

use proptest::prelude::*;

use parapsp::core::baselines::apsp_dijkstra;
use parapsp::core::{autotune, probe, ApspEngine, RunConfig, Runner, SeqEngine, SolverKind, INF};
use parapsp::graph::generate::{erdos_renyi_gnm, WeightSpec};
use parapsp::graph::{CsrGraph, Direction, GraphBuilder};

/// Strategy: an arbitrary graph with up to `max_n` vertices and `max_m`
/// edges, random directedness and weights in 1..=50 (wide enough that the
/// probe sees non-unit weight ranges and the tuner exercises every arm).
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_n, any::<bool>()).prop_flat_map(move |(n, directed)| {
        let edge = (0..n as u32, 0..n as u32, 1u32..=50);
        proptest::collection::vec(edge, 0..max_m).prop_map(move |edges| {
            let direction = if directed {
                Direction::Directed
            } else {
                Direction::Undirected
            };
            let mut b = GraphBuilder::new(n, direction);
            for (u, v, w) in edges {
                b.add_edge(u, v, w).expect("endpoints in range");
            }
            b.build()
        })
    })
}

/// Strategy: an arbitrary solver, including a randomly parameterized Δ.
fn arb_solver() -> impl Strategy<Value = SolverKind> {
    (0u32..5, 1u32..=30).prop_map(|(pick, d)| match pick {
        0 => SolverKind::Dijkstra,
        1 => SolverKind::Delta { delta: None },
        2 => SolverKind::Delta { delta: Some(d) },
        3 => SolverKind::Stepping,
        _ => SolverKind::Auto,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The probe reads only the graph: probing twice — or probing a
    // freshly rebuilt graph with the same seed — yields identical
    // measurements, so `--solver auto` is reproducible run to run.
    #[test]
    fn probe_is_deterministic_for_a_fixed_seed(
        n in 4usize..40,
        m_factor in 1usize..6,
        seed in any::<u64>(),
    ) {
        let m = (n * m_factor).min(n * (n - 1) / 2);
        let build = || {
            erdos_renyi_gnm(
                n,
                m,
                Direction::Directed,
                WeightSpec::Uniform { lo: 1, hi: 40 },
                seed,
            )
            .unwrap()
        };
        let a = build();
        let b = build();
        prop_assert_eq!(probe(&a), probe(&b));
        prop_assert_eq!(autotune(&a).solver, autotune(&b).solver);
        prop_assert_eq!(autotune(&a).schedule, autotune(&b).schedule);
    }

    // `auto` always collapses to a concrete, fully-parameterized solver.
    #[test]
    fn autotune_resolves_to_a_concrete_solver(graph in arb_graph(40, 200)) {
        let choice = autotune(&graph);
        prop_assert!(choice.solver != SolverKind::Auto);
        if let SolverKind::Delta { delta } = choice.solver {
            prop_assert!(delta.is_some(), "auto must pin Δ");
            prop_assert!(delta.unwrap() >= 1);
        }
    }

    // Every solver — concrete or tuner-chosen — is bit-identical to the
    // heap-Dijkstra baseline through both a parallel and a sequential
    // engine.
    #[test]
    fn every_solver_choice_passes_the_bit_identity_oracle(
        graph in arb_graph(36, 150),
        solver in arb_solver(),
    ) {
        let reference = apsp_dijkstra(&graph);
        let par = Runner::new(RunConfig::par_apsp(3).with_solver(solver))
            .run(ApspEngine::new(), &graph);
        prop_assert_eq!(
            reference.first_difference(&par.dist),
            None,
            "par-apsp with solver {}",
            solver.label()
        );
        let seq = Runner::new(RunConfig::seq_optimized(1.0).with_solver(solver))
            .run(SeqEngine::ordered(), &graph);
        prop_assert_eq!(
            reference.first_difference(&seq.dist),
            None,
            "seq-optimized with solver {}",
            solver.label()
        );
    }

    // Cap semantics are solver-independent: exactly-at-cap entries stay,
    // everything beyond drops to INF, for every solver.
    #[test]
    fn caps_agree_across_solvers(
        graph in arb_graph(30, 120),
        solver in arb_solver(),
        cap in 0u32..60,
    ) {
        let full = apsp_dijkstra(&graph);
        let out = Runner::new(
            RunConfig::par_apsp(2).with_solver(solver).with_max_distance(cap),
        )
        .run(ApspEngine::new(), &graph);
        let n = full.n();
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                let exact = full.get(u, v);
                let want = if u != v && exact > cap { INF } else { exact };
                prop_assert_eq!(
                    out.dist.get(u, v),
                    want,
                    "solver {} cap {} at ({}, {})",
                    solver.label(),
                    cap,
                    u,
                    v
                );
            }
        }
    }
}
