//! Fault-injection and checkpoint/resume property tests.
//!
//! The two robustness invariants:
//!
//! * Under any seeded fault plan that leaves at least one cluster node
//!   alive — crashes, dropped hub broadcasts, corrupted row payloads,
//!   in any combination — the distributed run recovers and produces a
//!   matrix *bit-identical* to the fault-free run. Recovery can only
//!   reassign work and retry messages; it can never change a distance,
//!   because every row is exact regardless of which node computes it.
//! * A run killed midway leaves a version-2 checkpoint from which a
//!   resumed run reaches the exact same matrix, computing only the
//!   missing rows.
//! * A run cancelled cooperatively — at *any* poll boundary — hands back
//!   a checkpoint that resumes to a bit-identical matrix. Cancellation
//!   may cost recomputation of in-flight rows, never correctness.

use proptest::prelude::*;

use parapsp::core::engine::{ApspEngine, RunConfig, Runner};
use parapsp::core::persist::{self, Checkpoint};
use parapsp::core::{ApspOutput, RunOutcome};
use parapsp::dist::{
    ChaosPlan, ClusterConfig, DistApspOutput, DistEngine, FaultPlan, SocketConfig, TransportSpec,
    WorkerMode,
};
use parapsp::graph::{CsrGraph, Direction, GraphBuilder};
use parapsp::parfor::CancelToken;

fn run_par(threads: usize, graph: &CsrGraph) -> ApspOutput {
    Runner::new(RunConfig::par_apsp(threads)).run(ApspEngine::new(), graph)
}

fn run_par_resumed(threads: usize, graph: &CsrGraph, checkpoint: Checkpoint) -> ApspOutput {
    Runner::new(RunConfig::par_apsp(threads)).run_resumed(ApspEngine::new(), graph, checkpoint)
}

fn dist_apsp(graph: &CsrGraph, config: ClusterConfig) -> DistApspOutput {
    Runner::new(RunConfig::new(1)).run(DistEngine::new(config), graph)
}

/// An arbitrary graph with up to `max_n` vertices and `max_m` edges,
/// random directedness, weights in 1..=20.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_n, any::<bool>()).prop_flat_map(move |(n, directed)| {
        let edge = (0..n as u32, 0..n as u32, 1u32..=20);
        proptest::collection::vec(edge, 0..max_m).prop_map(move |edges| {
            let direction = if directed {
                Direction::Directed
            } else {
                Direction::Undirected
            };
            let mut b = GraphBuilder::new(n, direction);
            for (u, v, w) in edges {
                b.add_edge(u, v, w).expect("endpoints in range");
            }
            b.build()
        })
    })
}

/// A cluster size together with a fault plan that never crashes *all*
/// nodes: random seed, crash schedule, drop and corruption rates.
fn arb_cluster_faults() -> impl Strategy<Value = (usize, FaultPlan)> {
    (2usize..5).prop_flat_map(|nodes| {
        (
            Just(nodes),
            any::<u64>(),
            proptest::collection::vec((0..nodes, 0u64..6), 0..nodes * 2),
            0.0f64..0.5,
            0.0f64..0.4,
        )
            .prop_map(|(nodes, seed, crashes, drop_p, corrupt_p)| {
                let mut plan = FaultPlan::seeded(seed)
                    .with_drop_probability(drop_p)
                    .with_corrupt_probability(corrupt_p);
                // Admit crashes only while at least one node stays alive.
                let mut crashed = vec![false; nodes];
                for (node, after) in crashes {
                    let would_crash =
                        crashed.iter().filter(|&&c| c).count() + usize::from(!crashed[node]);
                    if would_crash < nodes {
                        crashed[node] = true;
                        plan = plan.crash_node_after(node, after);
                    }
                }
                (nodes, plan)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The invariant holds over BOTH transports with the same fault plan:
    // the node loop is shared code, so every deterministic fault decision
    // fires at identical coordinates whether rows cross a crossbeam
    // channel or a length-prefix-framed TCP socket to worker threads.
    #[test]
    fn recovered_matrix_is_bit_identical_to_fault_free_run(
        graph in arb_graph(40, 180),
        cluster in arb_cluster_faults(),
        hub_fraction in 0.0f64..=0.3,
    ) {
        let (nodes, faults) = cluster;
        let clean = dist_apsp(&graph, ClusterConfig {
            nodes,
            hub_fraction,
            ..ClusterConfig::default()
        });
        for transport in [
            TransportSpec::InProcess,
            TransportSpec::Socket(SocketConfig {
                workers: WorkerMode::Threads,
                ..SocketConfig::default()
            }),
        ] {
            let label = match &transport {
                TransportSpec::InProcess => "channel",
                TransportSpec::Socket(_) => "socket",
            };
            let faulty = dist_apsp(&graph, ClusterConfig {
                nodes,
                hub_fraction,
                faults: faults.clone(),
                transport,
                ..ClusterConfig::default()
            });
            prop_assert_eq!(
                clean.dist.first_difference(&faulty.dist), None,
                "transport {}", label
            );
            // Every source was computed somewhere, crashes or not. (A
            // source can be computed twice: when a node's gather row is
            // rejected as corrupt and the node crashes before re-sending,
            // a survivor recomputes it — exactness makes the duplicate
            // harmless.)
            let sources: u64 = faulty.node_stats.iter().map(|s| s.sources).sum();
            prop_assert!(
                sources >= graph.vertex_count() as u64,
                "transport {}: sources {}", label, sources
            );
        }
    }

    // The same invariant under an adversarial *network*: seeded delay,
    // duplication, reordering, payload corruption, and one-way partitions
    // on the node→driver path — combined with the crash/drop/corrupt
    // fault plan — still yield the exact matrix on both transports.
    #[test]
    fn chaotic_network_still_recovers_bit_identically(
        graph in arb_graph(32, 140),
        cluster in arb_cluster_faults(),
        chaos_seed in any::<u64>(),
        delay_p in 0.0f64..0.6,
        max_delay in 1u64..8,
        dup_p in 0.0f64..0.4,
        corrupt_p in 0.0f64..0.3,
        partition in (0usize..4, 0u64..30, 1u64..40),
    ) {
        let (nodes, faults) = cluster;
        let (victim, from_poll, polls) = partition;
        let chaos = ChaosPlan::seeded(chaos_seed)
            .with_delay(delay_p, max_delay)
            .with_duplicate_probability(dup_p)
            .with_corrupt_probability(corrupt_p)
            .with_control_duplicate_probability(dup_p)
            .partition_node(victim % nodes, from_poll, polls);
        let clean = dist_apsp(&graph, ClusterConfig {
            nodes,
            ..ClusterConfig::default()
        });
        for transport in [
            TransportSpec::InProcess,
            TransportSpec::Socket(SocketConfig {
                workers: WorkerMode::Threads,
                ..SocketConfig::default()
            }),
        ] {
            let label = match &transport {
                TransportSpec::InProcess => "channel",
                TransportSpec::Socket(_) => "socket",
            };
            let stormy = dist_apsp(&graph, ClusterConfig {
                nodes,
                faults: faults.clone(),
                chaos: Some(chaos.clone()),
                transport,
                ..ClusterConfig::default()
            });
            prop_assert_eq!(
                clean.dist.first_difference(&stormy.dist), None,
                "transport {} chaos {:?}", label, &chaos
            );
        }
    }

    #[test]
    fn killed_midway_checkpoint_resumes_to_the_exact_matrix(
        graph in arb_graph(45, 200),
        keep in proptest::collection::vec(any::<bool>(), 45),
        threads in 1usize..5,
    ) {
        let n = graph.vertex_count();
        let full = run_par(threads, &graph);
        // The on-disk artifact of a run killed midway: some rows final,
        // the rest absent.
        let completed: Vec<bool> = (0..n).map(|s| keep[s]).collect();
        let cp = Checkpoint::new(full.dist.clone(), completed.clone());
        let mut bytes = Vec::new();
        persist::write_checkpoint(&cp, &mut bytes).expect("in-memory write");
        let loaded = persist::read_checkpoint(bytes.as_slice()).expect("round trip");
        prop_assert_eq!(&loaded, &cp);
        let missing = completed.iter().filter(|&&done| !done).count() as u64;
        let resumed = run_par_resumed(threads, &graph, loaded);
        prop_assert_eq!(full.dist.first_difference(&resumed.dist), None);
        prop_assert_eq!(resumed.counters.sources, missing);
    }

    // Cancel at an arbitrary poll boundary (a poll budget makes the stop
    // point deterministic per input), round-trip the checkpoint through
    // the v2 wire format, resume, and demand the exact matrix.
    #[test]
    fn cancelled_run_resumes_bit_identically(
        graph in arb_graph(40, 180),
        budget in 0u64..300,
        threads in 1usize..5,
    ) {
        let full = run_par(threads, &graph);
        let token = CancelToken::with_poll_budget(budget);
        match Runner::new(RunConfig::par_apsp(threads)).run_with_token(ApspEngine::new(), &graph, &token) {
            RunOutcome::Complete(out) => {
                // Budget never ran out; the cancellable path must agree
                // with the plain one.
                prop_assert_eq!(full.dist.first_difference(&out.dist), None);
            }
            RunOutcome::Cancelled { checkpoint } => {
                prop_assert!(!checkpoint.is_complete());
                let mut bytes = Vec::new();
                persist::write_checkpoint(&checkpoint, &mut bytes).expect("in-memory write");
                let loaded = persist::read_checkpoint(bytes.as_slice()).expect("round trip");
                prop_assert_eq!(&loaded, &checkpoint);
                let resumed = run_par_resumed(threads, &graph, loaded);
                prop_assert_eq!(full.dist.first_difference(&resumed.dist), None);
            }
            RunOutcome::DeadlineExceeded { .. } => {
                prop_assert!(false, "budget exhaustion must report Cancelled");
            }
        }
    }

    #[test]
    fn checkpoint_corruptions_never_load(
        graph in arb_graph(30, 100),
        keep in proptest::collection::vec(any::<bool>(), 30),
        tweak in any::<u64>(),
    ) {
        let n = graph.vertex_count();
        let full = run_par(2, &graph);
        let completed: Vec<bool> = (0..n).map(|s| keep[s]).collect();
        let cp = Checkpoint::new(full.dist, completed);
        let mut bytes = Vec::new();
        persist::write_checkpoint(&cp, &mut bytes).expect("in-memory write");

        // Truncation anywhere inside the payload is rejected.
        let cut = 14 + (tweak as usize % bytes.len().saturating_sub(14).max(1));
        prop_assert!(persist::read_checkpoint(&bytes[..cut]).is_err());
        // A flipped bitmap bit breaks the count/bitmap agreement.
        if cp.completed_count() > 0 && cp.completed_count() < n {
            let bitmap_start = 4 + 1 + 8 + 8;
            let mut bad = bytes.clone();
            let bit = tweak as usize % n;
            bad[bitmap_start + bit / 8] ^= 1 << (bit % 8);
            prop_assert!(persist::read_checkpoint(bad.as_slice()).is_err());
        }
        // Trailing garbage is rejected.
        let mut bad = bytes.clone();
        bad.push(tweak as u8);
        prop_assert!(persist::read_checkpoint(bad.as_slice()).is_err());
    }
}

/// Version skew is one-directional: a v1 full matrix is a valid (complete)
/// checkpoint, while the plain v1 reader refuses a v2 checkpoint.
#[test]
fn version_skew_between_matrix_and_checkpoint_formats() {
    let mut b = GraphBuilder::new(6, Direction::Undirected);
    for v in 1..6 {
        b.add_edge(0, v, v).unwrap();
    }
    let graph = b.build();
    let full = run_par(2, &graph);

    let mut v1 = Vec::new();
    persist::write_binary(&full.dist, &mut v1).unwrap();
    let upgraded = persist::read_checkpoint(v1.as_slice()).unwrap();
    assert!(upgraded.is_complete());
    assert_eq!(upgraded.matrix().first_difference(&full.dist), None);

    let mut v2 = Vec::new();
    persist::write_checkpoint(&Checkpoint::complete(full.dist), &mut v2).unwrap();
    assert!(persist::read_binary(v2.as_slice()).is_err());
}

/// End-to-end: a checkpointing run writes a loadable file after every
/// chunk, and the final file alone reproduces the matrix.
#[test]
fn checkpoint_file_written_during_a_run_is_loadable_and_exact() {
    let dir = std::env::temp_dir().join("parapsp-faults-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");

    let mut b = GraphBuilder::new(80, Direction::Undirected);
    for v in 1..80u32 {
        b.add_edge(v - 1, v, 1 + v % 7).unwrap();
        b.add_edge(0, v, 3 + v % 5).unwrap();
    }
    let graph = b.build();

    let reference = run_par(4, &graph);
    let out = Runner::new(RunConfig::par_apsp(4).with_checkpoint(&path, 16))
        .run(ApspEngine::new(), &graph);
    assert_eq!(reference.dist.first_difference(&out.dist), None);

    let cp = persist::load_checkpoint(&path).unwrap();
    assert!(cp.is_complete());
    assert_eq!(cp.matrix().first_difference(&reference.dist), None);
    std::fs::remove_file(path).ok();
}

/// An already-expired deadline stops the run before any row completes,
/// and the (empty) checkpoint still resumes to the exact matrix.
#[test]
fn expired_deadline_stops_immediately_with_a_resumable_checkpoint() {
    let mut b = GraphBuilder::new(60, Direction::Undirected);
    for v in 1..60u32 {
        b.add_edge(v - 1, v, 1 + v % 9).unwrap();
    }
    let graph = b.build();
    let reference = run_par(2, &graph);

    let token = CancelToken::with_deadline(std::time::Duration::ZERO);
    let RunOutcome::DeadlineExceeded { checkpoint } =
        Runner::new(RunConfig::par_apsp(2)).run_with_token(ApspEngine::new(), &graph, &token)
    else {
        panic!("an expired deadline must stop the run");
    };
    assert_eq!(checkpoint.n(), 60);
    assert!(!checkpoint.is_complete());
    let resumed = run_par_resumed(2, &graph, checkpoint);
    assert_eq!(reference.dist.first_difference(&resumed.dist), None);
}

/// The acceptance gate, deterministically: fifty distinct seeded chaos
/// plans — sweeping delay, duplication, corruption, control duplication,
/// and a rotating one-way partition — each run over both transports, and
/// every single matrix bit-identical to the chaos-free reference.
#[test]
fn fifty_seeded_chaos_plans_recover_exactly_on_both_transports() {
    let mut b = GraphBuilder::new(36, Direction::Undirected);
    for v in 1..36u32 {
        b.add_edge(v - 1, v, 1 + v % 6).unwrap();
        b.add_edge(v / 2, v, 2 + v % 4).unwrap();
    }
    let graph = b.build();
    let reference = dist_apsp(
        &graph,
        ClusterConfig {
            nodes: 3,
            ..ClusterConfig::default()
        },
    );

    for seed in 0..50u64 {
        let chaos = ChaosPlan::seeded(seed)
            .with_delay(0.2 + (seed % 5) as f64 * 0.1, 1 + seed % 6)
            .with_duplicate_probability((seed % 4) as f64 * 0.1)
            .with_corrupt_probability((seed % 3) as f64 * 0.1)
            .with_control_duplicate_probability((seed % 5) as f64 * 0.05)
            .partition_node((seed % 3) as usize, seed % 13, 3 + seed % 25);
        for transport in [
            TransportSpec::InProcess,
            TransportSpec::Socket(SocketConfig {
                workers: WorkerMode::Threads,
                ..SocketConfig::default()
            }),
        ] {
            let label = match &transport {
                TransportSpec::InProcess => "channel",
                TransportSpec::Socket(_) => "socket",
            };
            let stormy = dist_apsp(
                &graph,
                ClusterConfig {
                    nodes: 3,
                    chaos: Some(chaos.clone()),
                    transport,
                    ..ClusterConfig::default()
                },
            );
            assert_eq!(
                reference.dist.first_difference(&stormy.dist),
                None,
                "seed {seed} transport {label}"
            );
        }
    }
}

/// The distributed engine honors cancellation too: a cancelled cluster
/// run yields a checkpoint the shared-memory engine can finish exactly.
#[test]
fn cancelled_dist_run_resumes_on_the_shared_memory_engine() {
    let mut b = GraphBuilder::new(50, Direction::Undirected);
    for v in 1..50u32 {
        b.add_edge(v - 1, v, 2 + v % 5).unwrap();
        b.add_edge(0, v, 7).unwrap();
    }
    let graph = b.build();
    let reference = run_par(2, &graph);

    let token = CancelToken::with_poll_budget(3);
    let outcome = Runner::new(RunConfig::new(1)).run_with_token(
        DistEngine::new(ClusterConfig {
            nodes: 3,
            ..ClusterConfig::default()
        }),
        &graph,
        &token,
    );
    match outcome {
        RunOutcome::Complete(out) => {
            assert_eq!(reference.dist.first_difference(&out.dist), None);
        }
        RunOutcome::Cancelled { checkpoint } => {
            let resumed = run_par_resumed(2, &graph, checkpoint);
            assert_eq!(reference.dist.first_difference(&resumed.dist), None);
        }
        RunOutcome::DeadlineExceeded { .. } => {
            panic!("budget exhaustion must report Cancelled");
        }
    }
}
