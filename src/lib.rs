//! **ParAPSP** — efficient parallel all-pairs shortest paths for complex
//! graph analysis (reproduction of Kim, Choi & Bae, ICPP'18 Companion).
//!
//! This facade re-exports every workspace crate under one roof. Start with
//! [`prelude`] for the common path:
//!
//! ```
//! use parapsp::prelude::*;
//!
//! let graph = barabasi_albert(500, 3, WeightSpec::Unit, 42).unwrap();
//! let out = Runner::new(RunConfig::par_apsp(4)).run(ApspEngine::new(), &graph);
//! assert_eq!(out.dist.get(0, 0), 0);
//! ```
//!
//! Crate map: [`graph`] (CSR + generators + I/O), [`parfor`] (OpenMP-like
//! pool), [`order`] (the paper's ordering procedures + general sorts),
//! [`core`] (the APSP algorithms), [`analysis`] (centralities & path
//! statistics), [`datasets`] (Table 2 replicas), [`dist`]
//! (distributed-memory simulation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use parapsp_analysis as analysis;
pub use parapsp_core as core;
pub use parapsp_datasets as datasets;
pub use parapsp_dist as dist;
pub use parapsp_graph as graph;
pub use parapsp_order as order;
pub use parapsp_parfor as parfor;

/// The items most programs need, importable in one line.
pub mod prelude {
    pub use parapsp_core::baselines;
    pub use parapsp_core::{
        ApspEngine, ApspOutput, DistanceMatrix, Engine, EngineKind, RunConfig, Runner, SeqEngine,
        Store, StoreKind, StoreSpec, SubsetEngine, INF,
    };
    pub use parapsp_datasets::{find as find_dataset, paper_datasets, Scale};
    pub use parapsp_graph::generate::{
        barabasi_albert, erdos_renyi_gnm, erdos_renyi_gnp, scale_free_directed, watts_strogatz,
        WeightSpec,
    };
    pub use parapsp_graph::{CsrGraph, Direction, GraphBuilder};
    pub use parapsp_order::OrderingProcedure;
    pub use parapsp_parfor::{Schedule, ThreadPool};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_quickstart_path() {
        let graph = barabasi_albert(120, 2, WeightSpec::Unit, 7).unwrap();
        let config = RunConfig::par_apsp(2)
            .with_schedule(Schedule::dynamic_cyclic())
            .with_ordering(OrderingProcedure::multi_lists());
        let out = Runner::new(config).run(ApspEngine::new(), &graph);
        let reference = baselines::apsp_dijkstra(&graph);
        assert_eq!(reference.first_difference(&out.dist), None);
        // The store tiers are part of the prelude surface.
        let delta = Runner::new(RunConfig::par_apsp(2).with_store(StoreSpec::delta(4)))
            .run(ApspEngine::new(), &graph);
        assert_eq!(reference.first_difference(&delta.dist), None);
        let pool = ThreadPool::new(2);
        let _ = pool; // re-exported and constructible
        assert!(find_dataset("WordNet").is_some());
        assert_eq!(paper_datasets().len(), 5);
    }
}
