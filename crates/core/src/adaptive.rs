//! A **parallel** adaptive-ordering APSP — the extension the paper left on
//! the table.
//!
//! Peng et al.'s third sequential variant re-prioritizes sources as it
//! learns which vertices actually relay shortest paths. The ICPP paper
//! chose not to parallelize it because the order adapts between iterations
//! (§2.2). This module implements the natural compromise: **wave-based
//! adaptation**. Sources are processed in waves of `wave_size × threads`;
//! within a wave the order is fixed (so the wave parallelizes exactly like
//! ParAPSP), and between waves the remaining sources are re-ranked by
//! `intermediate_credit × weight + degree`.
//!
//! With `wave_size` large this degenerates to ParAPSP (one wave, pure
//! degree order); with `wave_size = 1` and one thread it approaches the
//! sequential adaptive algorithm.

use std::time::Instant;

use parapsp_graph::{degree, CsrGraph};
use parapsp_parfor::{PerThread, Schedule, ThreadPool};

use crate::kernel::{modified_dijkstra, KernelOptions, Workspace};
use crate::stats::{ApspOutput, Counters, PhaseTimings};
use crate::store::{Store, StoreSpec};

/// Configuration for [`par_adaptive`].
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Sources per thread per wave (the adaptation granularity).
    pub wave_size: usize,
    /// Multiplier on intermediate credit relative to degree in the rank.
    pub credit_weight: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            wave_size: 8,
            credit_weight: 16,
        }
    }
}

/// Runs the wave-adaptive parallel APSP. Exact, like every algorithm in
/// this crate; only the *order* (and hence the running time) differs.
pub fn par_adaptive(graph: &CsrGraph, threads: usize, config: AdaptiveConfig) -> ApspOutput {
    assert!(config.wave_size > 0, "wave size must be positive");
    let n = graph.vertex_count();
    let pool = ThreadPool::new(threads);
    let degrees = degree::out_degrees(graph);
    let start = Instant::now();

    let store = Store::new(n, &StoreSpec::dense());
    let locals: PerThread<(Workspace, Counters, Vec<u64>)> =
        PerThread::from_fn(pool.num_threads(), |_| {
            (Workspace::new(n), Counters::default(), vec![0u64; n])
        });
    let mut global_credit = vec![0u64; n];
    let mut remaining: Vec<u32> = (0..n as u32).collect();
    let options = KernelOptions::default();

    let t_sssp = Instant::now();
    while !remaining.is_empty() {
        // Rank remaining sources: highest credit-adjusted degree first.
        remaining.sort_by_key(|&v| {
            std::cmp::Reverse(
                global_credit[v as usize]
                    .saturating_mul(config.credit_weight)
                    .saturating_add(degrees[v as usize] as u64),
            )
        });
        let take = (config.wave_size * pool.num_threads()).min(remaining.len());
        let wave: Vec<u32> = remaining.drain(..take).collect();

        let wave_ref = &wave;
        let store_ref = &store;
        pool.parallel_for(wave.len(), Schedule::dynamic_cyclic(), |tid, k| {
            let s = wave_ref[k];
            // SAFETY: one scratch slot per pool thread.
            let (ws, counters, credit) = unsafe { locals.get_mut(tid) };
            // Each wave source appears exactly once across all waves, so
            // the unique-row-owner contract holds.
            modified_dijkstra(graph, s, store_ref, ws, options, counters, Some(credit));
        });

        // Fold per-thread credit into the global ranking signal. The slots
        // are drained (zeroed) so each wave contributes once.
        // SAFETY: the parallel region above has completed; `locals` is
        // only touched from this thread now.
        for tid in 0..pool.num_threads() {
            let (_, _, credit) = unsafe { locals.get_mut(tid) };
            for (global, local) in global_credit.iter_mut().zip(credit.iter_mut()) {
                *global += *local;
                *local = 0;
            }
        }
    }
    let sssp = t_sssp.elapsed();

    let mut counters = Counters::default();
    for (_, c, _) in locals.into_inner() {
        counters.merge(&c);
    }
    ApspOutput {
        dist: store.into_matrix(),
        timings: PhaseTimings {
            ordering: std::time::Duration::ZERO,
            sssp,
            total: start.elapsed(),
        },
        counters,
        threads: pool.num_threads(),
        thread_busy: Vec::new(),
        algorithm: format!(
            "ParAdaptive(wave={}, w={})",
            config.wave_size, config.credit_weight
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::apsp_dijkstra;
    use parapsp_graph::generate::{barabasi_albert, erdos_renyi_gnm, WeightSpec};
    use parapsp_graph::Direction;

    #[test]
    fn adaptive_parallel_is_exact() {
        let g = barabasi_albert(200, 3, WeightSpec::Unit, 55).unwrap();
        let reference = apsp_dijkstra(&g);
        for threads in [1, 4] {
            for wave_size in [1, 4, 64] {
                let out = par_adaptive(
                    &g,
                    threads,
                    AdaptiveConfig {
                        wave_size,
                        credit_weight: 16,
                    },
                );
                assert_eq!(
                    reference.first_difference(&out.dist),
                    None,
                    "threads={threads} wave={wave_size}"
                );
                assert_eq!(out.counters.sources, 200);
            }
        }
    }

    #[test]
    fn adaptive_on_weighted_directed_graph() {
        let g = erdos_renyi_gnm(
            150,
            900,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 20 },
            56,
        )
        .unwrap();
        let reference = apsp_dijkstra(&g);
        let out = par_adaptive(&g, 3, AdaptiveConfig::default());
        assert_eq!(reference.first_difference(&out.dist), None);
    }

    #[test]
    fn credit_accumulates_on_hubs() {
        // After the run, hubs should have collected intermediate credit —
        // indirectly observable through identical output but exercised here
        // via the default config path on a hub-dominated graph.
        let g = parapsp_graph::generate::star_graph(64);
        let out = par_adaptive(&g, 2, AdaptiveConfig::default());
        assert_eq!(out.counters.sources, 64);
        assert!(out.dist.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "wave size")]
    fn zero_wave_size_rejected() {
        let g = parapsp_graph::generate::star_graph(4);
        let _ = par_adaptive(
            &g,
            1,
            AdaptiveConfig {
                wave_size: 0,
                credit_weight: 1,
            },
        );
    }
}
