//! ParAPSP core: Peng et al.'s fast all-pairs shortest-path algorithm and
//! the shared-memory parallelizations from Kim, Choi & Bae (ICPP'18).
//!
//! # The algorithm family
//!
//! The foundation is Peng et al.'s *modified Dijkstra* (paper Alg. 1): a
//! queue-based label-correcting SSSP that, whenever it dequeues a vertex
//! `t` whose own SSSP row is already complete (`flag[t] == 1`), relaxes the
//! whole row `D[t][*]` at once instead of expanding `t`'s edges — a dynamic
//! programming reuse of earlier sources' results.
//!
//! * [`RunConfig::seq_basic`](engine::RunConfig::seq_basic) — Alg. 2: run
//!   the kernel from every source in index order (drive a
//!   [`SeqEngine`](engine::SeqEngine) with it).
//! * [`RunConfig::seq_optimized`](engine::RunConfig::seq_optimized) —
//!   Alg. 3: visit sources in descending degree order so hub rows are
//!   reusable early (2–4× faster on scale-free graphs).
//! * [`SeqEngine::adaptive`](engine::SeqEngine::adaptive) — Peng's
//!   adaptive variant (reconstructed; the ICPP paper describes but does
//!   not parallelize it).
//! * [`RunConfig::par_apsp`](engine::RunConfig::par_apsp) and friends —
//!   the parallel drivers: **ParAlg1**, **ParAlg2**, and the paper's
//!   contribution **ParAPSP** (MultiLists ordering + dynamic-cyclic
//!   scheduling), plus every intermediate variant, all configurable by
//!   ordering procedure and loop schedule (drive an
//!   [`ApspEngine`](engine::ApspEngine)).
//! * [`baselines`] — Floyd–Warshall, binary-heap Dijkstra APSP (sequential
//!   and parallel), Bellman–Ford and BFS, used for cross-validation and
//!   the background comparisons in the paper's §2.
//!
//! Every engine stores its distance matrix in a [`store::Store`] — dense
//! by default, with landmark-delta and out-of-core tiers selectable per
//! run (see [`store`]).
//!
//! # Concurrency model
//!
//! Parallel runs share one distance matrix. Row `s` is written exclusively
//! by the thread running source `s`; it becomes visible to other threads
//! only after a `Release` store of `flag[s]`, and readers check the flag
//! with `Acquire` before touching the row (see the `shared` module internals).
//! Published rows are final, so every interleaving yields the same — exact
//! — distances, which the test suite asserts against sequential runs and
//! the classic baselines.

#![warn(missing_docs)]

pub mod adaptive;
pub mod baselines;
pub mod blocked_fw;
pub mod dist;
pub mod dynamic;
pub mod engine;
pub mod kernel;
pub mod outcome;
pub mod paths;
pub mod persist;
pub mod relax;
mod shared;
pub mod solver;
pub mod stats;
pub mod store;
pub mod subset;

pub use dist::DistanceMatrix;
pub use engine::{
    ApspEngine, BlockedFwEngine, CheckpointFormat, Engine, EngineKind, RunConfig, Runner,
    SeqEngine, StoreApspEngine, StoreRunOutput, SubsetEngine, ValueEnum,
};
pub use outcome::RunOutcome;
pub use persist::{FsyncPolicy, RowLedger};
pub use relax::RelaxImpl;
pub use solver::{autotune, probe, AutoChoice, GraphProbe, SolverKind};
pub use stats::{ApspOutput, Counters, PhaseTimings};
pub use store::{LeaseOrigin, RowLease, RowSource, Store, StoreKind, StoreSpec};

/// Infinite distance (no path); re-exported from the graph crate.
pub use parapsp_graph::INF;

/// Unit tests swap in a counting allocator so the solver suite can assert
/// that `Workspace` reuse really means zero heap traffic per source in
/// steady state. The counter is thread-local so the (parallel) test
/// harness's other threads don't pollute a measurement. Only the test
/// binary pays for any of this.
#[cfg(test)]
pub(crate) mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    }

    /// `alloc`/`realloc` calls made by the *current thread* since start.
    pub(crate) fn count() -> u64 {
        ALLOCATIONS.try_with(Cell::get).unwrap_or(0)
    }

    fn bump() {
        // try_with: allocation during TLS teardown must not panic.
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
    }

    struct CountingAllocator;

    // SAFETY: defers entirely to the system allocator; the counter is a
    // const-initialized thread-local Cell, which never allocates itself.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            bump();
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            bump();
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;
}
