//! APSP from a *subset* of sources — the memory-bounded entry point.
//!
//! The paper's hard limit is the O(n²) result matrix (its sx-superuser run
//! needs 160 GB, §5.1). Many analyses don't need all rows: landmark-based
//! distance estimation, closeness sampling, or per-community probes use
//! k ≪ n sources. This module runs the modified Dijkstra from exactly
//! those sources, with row reuse **among the subset** (a completed subset
//! row accelerates the remaining subset runs exactly as in full ParAPSP),
//! in O(k·n) memory.
//!
//! The algorithm-specific parts live in [`SubsetEngine`], driven by the
//! unified [`Runner`] pipeline — which is how the subset path gained
//! resume, periodic checkpoints, `max_distance` caps, and relax selection
//! for free:
//!
//! ```
//! use parapsp_core::engine::{RunConfig, Runner, SubsetEngine};
//! use parapsp_graph::generate::{barabasi_albert, WeightSpec};
//!
//! let g = barabasi_albert(100, 3, WeightSpec::Unit, 7).unwrap();
//! let rows = Runner::new(RunConfig::subset(2)).run(SubsetEngine::new(vec![0, 42]), &g);
//! assert_eq!(rows.row_of(42).unwrap().len(), 100);
//! ```

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use parapsp_graph::{degree, CsrGraph, INF};
use parapsp_order::seq_bucket::seq_bucket_sort;
use parapsp_order::OrderingProcedure;
use parapsp_parfor::{BitSet, CancelStatus, PerThread, ThreadPool};

use crate::dist::DistanceMatrix;
use crate::engine::{Engine, Plan, RowsCtx, RowsOutcome, RunConfig, RunSummary};
use crate::persist::Checkpoint;
use crate::relax::relax_row;

/// Distance rows for a chosen set of sources, in O(k·n) memory.
#[derive(Debug)]
pub struct SubsetRows {
    n: usize,
    sources: Vec<u32>,
    /// Row-major k × n distances, ordered like `sources`.
    data: Box<[u32]>,
    /// Wall time of the sweep.
    pub elapsed: std::time::Duration,
}

impl SubsetRows {
    /// The sources, in the order their rows are stored.
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }

    /// Number of vertices (row length).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The distance row of the i-th source.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// The distance row of source vertex `s`, if `s` was in the subset.
    pub fn row_of(&self, s: u32) -> Option<&[u32]> {
        self.sources
            .iter()
            .position(|&v| v == s)
            .map(|i| self.row(i))
    }
}

/// Shared k × n state: the same Release/Acquire publication protocol as the
/// full matrix, with a vertex → slot indirection.
struct SubsetState {
    n: usize,
    /// slot_of[v] = row slot of v when v is a subset source, else u32::MAX.
    slot_of: Vec<u32>,
    cells: Box<[UnsafeCell<u32>]>,
    flags: Box<[AtomicBool]>,
}

// SAFETY: same argument as `SharedDistState` — rows are uniquely owned
// until published, immutable after.
unsafe impl Sync for SubsetState {}

impl SubsetState {
    fn new(n: usize, sources: &[u32]) -> Self {
        let mut slot_of = vec![u32::MAX; n];
        for (slot, &s) in sources.iter().enumerate() {
            assert!(
                (s as usize) < n,
                "subset source {s} out of range for {n} vertices"
            );
            assert!(
                slot_of[s as usize] == u32::MAX,
                "subset source {s} listed twice"
            );
            slot_of[s as usize] = slot as u32;
        }
        let len = sources.len().checked_mul(n).expect("subset size overflow");
        let plain: Box<[u32]> = vec![INF; len].into_boxed_slice();
        // SAFETY: UnsafeCell<u32> is repr(transparent) over u32.
        let cells = unsafe { Box::from_raw(Box::into_raw(plain) as *mut [UnsafeCell<u32>]) };
        SubsetState {
            n,
            slot_of,
            cells,
            flags: (0..sources.len()).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// # Safety
    /// Caller must be the unique task for slot `slot`, pre-publication.
    #[allow(clippy::mut_from_ref)]
    unsafe fn row_mut(&self, slot: u32) -> &mut [u32] {
        let start = slot as usize * self.n;
        // SAFETY: forwarded to the caller.
        unsafe { std::slice::from_raw_parts_mut(self.cells[start].get(), self.n) }
    }

    fn published_row_of_vertex(&self, v: u32) -> Option<&[u32]> {
        let slot = self.slot_of[v as usize];
        if slot == u32::MAX {
            return None;
        }
        if self.flags[slot as usize].load(Ordering::Acquire) {
            let start = slot as usize * self.n;
            // SAFETY: Acquire pairs with the publishing Release.
            Some(unsafe {
                std::slice::from_raw_parts(self.cells[start].get() as *const u32, self.n)
            })
        } else {
            None
        }
    }

    fn publish(&self, slot: u32) {
        self.flags[slot as usize].store(true, Ordering::Release);
    }
}

/// The subset-of-sources engine: modified Dijkstra (SPFA form) from `k`
/// chosen sources into a k × n row store, with row reuse among the subset.
///
/// Work units are *slot indices* into the source list. Through the
/// [`Runner`] it supports everything the full-matrix engines do — resume
/// from a vertex-keyed checkpoint, periodic checkpointing, distance caps,
/// and relax-implementation selection via the [`RunConfig`] kernel
/// options. With [`OrderingProcedure::Identity`] slots run in list order;
/// any other ordering visits subset sources in descending degree order.
pub struct SubsetEngine {
    sources: Vec<u32>,
    state: Option<SubsetState>,
    locals: Option<PerThread<(VecDeque<u32>, BitSet)>>,
}

impl SubsetEngine {
    /// An engine computing the rows of `sources` (duplicates rejected at
    /// [`Engine::prepare`] time).
    pub fn new(sources: Vec<u32>) -> Self {
        SubsetEngine {
            sources,
            state: None,
            locals: None,
        }
    }

    /// The configured sources, in slot order.
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }
}

impl Engine for SubsetEngine {
    type Output = SubsetRows;

    fn name(&self) -> &str {
        "SubsetRows"
    }

    fn prepare(
        &mut self,
        graph: &CsrGraph,
        config: &RunConfig,
        pool: &ThreadPool,
        resume: Option<Checkpoint>,
    ) -> Plan {
        let n = graph.vertex_count();
        let state = SubsetState::new(n, &self.sources);

        let t_order = Instant::now();
        let order: Vec<u32> = match config.ordering() {
            // Identity keeps the caller's slot order.
            OrderingProcedure::Identity => (0..self.sources.len() as u32).collect(),
            // Anything else: visit subset sources hub-first (same
            // rationale as Alg. 3), via the exact O(k) bucket sort.
            _ => {
                let degrees = degree::out_degrees(graph);
                let subset_degrees: Vec<u32> =
                    self.sources.iter().map(|&s| degrees[s as usize]).collect();
                seq_bucket_sort(&subset_degrees) // indices into `sources`
            }
        };
        let ordering = t_order.elapsed();

        // A resumed run pre-publishes the checkpoint's finished subset
        // rows (the checkpoint is keyed by vertex id) and sweeps the rest.
        let units = match resume {
            Some(checkpoint) => {
                let (dist, completed) = checkpoint.into_parts();
                for (slot, &s) in self.sources.iter().enumerate() {
                    if completed[s as usize] {
                        // SAFETY: pre-sweep, this thread is the unique owner
                        // of every unpublished slot.
                        unsafe { state.row_mut(slot as u32) }.copy_from_slice(dist.row(s));
                        state.publish(slot as u32);
                    }
                }
                order
                    .iter()
                    .copied()
                    .filter(|&slot| !completed[self.sources[slot as usize] as usize])
                    .collect()
            }
            None => order,
        };
        self.state = Some(state);
        self.locals = Some(PerThread::from_fn(pool.num_threads(), |_| {
            (VecDeque::new(), BitSet::new(n))
        }));
        Plan { units, ordering }
    }

    fn run_rows(&mut self, graph: &CsrGraph, units: &[u32], ctx: &RowsCtx<'_>) -> RowsOutcome {
        let state = self.state.as_ref().expect("prepare() not called");
        let locals = self.locals.as_ref().expect("prepare() not called");
        let sources = &self.sources;
        let kernel = ctx.config.kernel();
        let cap = kernel.max_distance.unwrap_or(u32::MAX);
        let relax_impl = kernel.relax.resolve();
        let trace = ctx.trace;
        let body = |tid: usize, k: usize| {
            let slot = units[k];
            let s = sources[slot as usize];
            // SAFETY: one scratch slot per pool thread.
            let (queue, in_queue) = unsafe { locals.get_mut(tid) };
            let t0 = Instant::now();
            // SAFETY: `units` is drawn from a permutation of slots, so this
            // task is the unique owner of `slot`.
            let row = unsafe { state.row_mut(slot) };
            row[s as usize] = 0;
            queue.push_back(s);
            in_queue.set(s as usize);
            while let Some(t) = queue.pop_front() {
                in_queue.clear(t as usize);
                let dt = row[t as usize];
                if t != s {
                    if let Some(t_row) = state.published_row_of_vertex(t) {
                        relax_row(relax_impl, row, t_row, dt, cap);
                        continue;
                    }
                }
                for (v, w) in graph.out_edges(t) {
                    let alt = dt.saturating_add(w);
                    if alt < row[v as usize] && alt <= cap {
                        row[v as usize] = alt;
                        if !in_queue.get(v as usize) {
                            queue.push_back(v);
                            in_queue.set(v as usize);
                        }
                    }
                }
            }
            state.publish(slot);
            if let Some(view) = trace {
                // SAFETY: as above, the trace slot of `s` belongs
                // exclusively to this iteration.
                unsafe { view.write(s as usize, t0.elapsed().as_nanos() as u64) };
            }
        };
        match ctx.token {
            Some(token) => {
                ctx.pool
                    .parallel_for_cancellable(units.len(), ctx.config.schedule(), token, body)
            }
            None => {
                ctx.pool
                    .parallel_for(units.len(), ctx.config.schedule(), body);
                CancelStatus::Continue
            }
        }
    }

    fn snapshot(&self) -> Checkpoint {
        // Published subset rows are final. Place them in an n × n
        // checkpoint keyed by *vertex* id (the persistent format has no
        // notion of subset slots).
        let state = self.state.as_ref().expect("prepare() not called");
        let mut dist = DistanceMatrix::new_infinite(state.n);
        let mut completed = vec![false; state.n];
        for &s in &self.sources {
            if let Some(row) = state.published_row_of_vertex(s) {
                dist.copy_row_from(s, row);
                completed[s as usize] = true;
            }
        }
        Checkpoint::new(dist, completed)
    }

    fn finish(self, _graph: &CsrGraph, summary: RunSummary) -> SubsetRows {
        let state = self.state.expect("prepare() not called");
        // SAFETY: all rows published; single ownership again.
        let data: Box<[u32]> = unsafe { Box::from_raw(Box::into_raw(state.cells) as *mut [u32]) };
        SubsetRows {
            n: state.n,
            sources: self.sources,
            data,
            elapsed: summary.timings.total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::dijkstra_sssp;
    use crate::engine::Runner;
    use crate::outcome::RunOutcome;
    use parapsp_graph::generate::{barabasi_albert, erdos_renyi_gnm, WeightSpec};
    use parapsp_graph::Direction;
    use parapsp_parfor::CancelToken;

    fn par_apsp_subset(graph: &CsrGraph, sources: &[u32], threads: usize) -> SubsetRows {
        Runner::new(RunConfig::subset(threads)).run(SubsetEngine::new(sources.to_vec()), graph)
    }

    fn par_apsp_subset_cancellable(
        graph: &CsrGraph,
        sources: &[u32],
        threads: usize,
        token: &CancelToken,
    ) -> RunOutcome<SubsetRows> {
        Runner::new(RunConfig::subset(threads)).run_with_token(
            SubsetEngine::new(sources.to_vec()),
            graph,
            token,
        )
    }

    #[test]
    fn subset_rows_match_per_source_dijkstra() {
        let g = barabasi_albert(300, 3, WeightSpec::Unit, 31).unwrap();
        let sources: Vec<u32> = vec![5, 0, 120, 299, 42];
        for threads in [1, 4] {
            let rows = par_apsp_subset(&g, &sources, threads);
            assert_eq!(rows.sources(), &sources[..]);
            assert_eq!(rows.n(), 300);
            let mut expected = vec![0u32; 300];
            for (i, &s) in sources.iter().enumerate() {
                dijkstra_sssp(&g, s, &mut expected);
                assert_eq!(rows.row(i), &expected[..], "source {s}, {threads} threads");
                assert_eq!(rows.row_of(s), Some(&expected[..]));
            }
        }
    }

    #[test]
    fn subset_on_weighted_directed_graph() {
        let g = erdos_renyi_gnm(
            200,
            1_200,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 15 },
            32,
        )
        .unwrap();
        let sources: Vec<u32> = (0..200).step_by(13).collect();
        let rows = par_apsp_subset(&g, &sources, 3);
        let mut expected = vec![0u32; 200];
        for (i, &s) in sources.iter().enumerate() {
            dijkstra_sssp(&g, s, &mut expected);
            assert_eq!(rows.row(i), &expected[..], "source {s}");
        }
    }

    #[test]
    fn full_subset_equals_full_apsp() {
        let g = barabasi_albert(120, 2, WeightSpec::Unit, 33).unwrap();
        let all: Vec<u32> = (0..120).collect();
        let rows = par_apsp_subset(&g, &all, 4);
        let full = Runner::new(RunConfig::par_apsp(4)).run(crate::engine::ApspEngine::new(), &g);
        for s in 0..120u32 {
            assert_eq!(rows.row_of(s).unwrap(), full.dist.row(s));
        }
    }

    #[test]
    fn capped_subset_matches_post_filtered_rows() {
        let g = barabasi_albert(150, 2, WeightSpec::Uniform { lo: 1, hi: 9 }, 71).unwrap();
        let sources: Vec<u32> = vec![0, 9, 80, 149];
        let cap = 12u32;
        let exact = par_apsp_subset(&g, &sources, 2);
        let capped = Runner::new(RunConfig::subset(2).with_max_distance(cap))
            .run(SubsetEngine::new(sources.clone()), &g);
        for (i, &s) in sources.iter().enumerate() {
            let expected: Vec<u32> = exact
                .row(i)
                .iter()
                .enumerate()
                .map(|(v, &d)| if v as u32 != s && d > cap { INF } else { d })
                .collect();
            assert_eq!(capped.row(i), &expected[..], "source {s}");
        }
    }

    #[test]
    fn missing_source_lookup_returns_none() {
        let g = barabasi_albert(50, 2, WeightSpec::Unit, 34).unwrap();
        let rows = par_apsp_subset(&g, &[1, 2], 2);
        assert!(rows.row_of(10).is_none());
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_sources_rejected() {
        let g = barabasi_albert(20, 2, WeightSpec::Unit, 35).unwrap();
        let _ = par_apsp_subset(&g, &[3, 3], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_rejected() {
        let g = barabasi_albert(20, 2, WeightSpec::Unit, 36).unwrap();
        let _ = par_apsp_subset(&g, &[25], 1);
    }

    #[test]
    fn cancellable_subset_completes_when_untripped() {
        let g = barabasi_albert(150, 3, WeightSpec::Unit, 61).unwrap();
        let sources: Vec<u32> = vec![0, 7, 50, 149];
        let token = parapsp_parfor::CancelToken::new();
        let rows = par_apsp_subset_cancellable(&g, &sources, 3, &token).unwrap_complete();
        let plain = par_apsp_subset(&g, &sources, 3);
        for (i, _) in sources.iter().enumerate() {
            assert_eq!(rows.row(i), plain.row(i));
        }
    }

    #[test]
    fn cancelled_subset_checkpoints_finished_rows_exactly() {
        let g = barabasi_albert(200, 3, WeightSpec::Uniform { lo: 1, hi: 7 }, 62).unwrap();
        let sources: Vec<u32> = (0..200).step_by(5).collect(); // 40 sources
        let token = parapsp_parfor::CancelToken::with_poll_budget(12);
        let outcome = par_apsp_subset_cancellable(&g, &sources, 2, &token);
        let cp = outcome.into_checkpoint().expect("12 < 40 sources");
        assert!(cp.completed_count() < sources.len());
        // Completed rows only ever belong to the subset, and each one is
        // the exact per-source Dijkstra row.
        let mut expected = vec![0u32; 200];
        for (s, &done) in cp.completed().iter().enumerate() {
            if done {
                assert!(sources.contains(&(s as u32)), "row {s} not in subset");
                dijkstra_sssp(&g, s as u32, &mut expected);
                assert_eq!(cp.matrix().row(s as u32), &expected[..]);
            }
        }
        // The checkpoint survives the v2 format round trip.
        let mut buf = Vec::new();
        crate::persist::write_checkpoint(&cp, &mut buf).unwrap();
        assert_eq!(crate::persist::read_checkpoint(buf.as_slice()).unwrap(), cp);
    }

    #[test]
    fn subset_resumes_its_own_checkpoint() {
        let g = barabasi_albert(160, 3, WeightSpec::Uniform { lo: 1, hi: 9 }, 63).unwrap();
        let sources: Vec<u32> = (0..160).step_by(4).collect(); // 40 sources
        let full = par_apsp_subset(&g, &sources, 2);
        let token = parapsp_parfor::CancelToken::with_poll_budget(15);
        let cp = par_apsp_subset_cancellable(&g, &sources, 2, &token)
            .into_checkpoint()
            .expect("15 < 40 sources");
        let resumed = Runner::new(RunConfig::subset(2)).run_resumed(
            SubsetEngine::new(sources.clone()),
            &g,
            cp,
        );
        for (i, _) in sources.iter().enumerate() {
            assert_eq!(resumed.row(i), full.row(i), "slot {i}");
        }
    }

    #[test]
    fn empty_subset_is_fine() {
        let g = barabasi_albert(20, 2, WeightSpec::Unit, 37).unwrap();
        let rows = par_apsp_subset(&g, &[], 2);
        assert!(rows.sources().is_empty());
    }
}
