//! APSP from a *subset* of sources — the memory-bounded entry point.
//!
//! The paper's hard limit is the O(n²) result matrix (its sx-superuser run
//! needs 160 GB, §5.1). Many analyses don't need all rows: landmark-based
//! distance estimation, closeness sampling, or per-community probes use
//! k ≪ n sources. This module runs the modified Dijkstra from exactly
//! those sources, with row reuse **among the subset** (a completed subset
//! row accelerates the remaining subset runs exactly as in full ParAPSP),
//! in O(k·n) memory.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use parapsp_graph::{degree, CsrGraph, INF};
use parapsp_order::seq_bucket::seq_bucket_sort;
use parapsp_parfor::{BitSet, CancelStatus, CancelToken, PerThread, Schedule, ThreadPool};

use crate::dist::DistanceMatrix;
use crate::outcome::RunOutcome;
use crate::persist::Checkpoint;
use crate::relax::{relax_row, RelaxImpl};

/// Distance rows for a chosen set of sources, in O(k·n) memory.
#[derive(Debug)]
pub struct SubsetRows {
    n: usize,
    sources: Vec<u32>,
    /// Row-major k × n distances, ordered like `sources`.
    data: Box<[u32]>,
    /// Wall time of the sweep.
    pub elapsed: std::time::Duration,
}

impl SubsetRows {
    /// The sources, in the order their rows are stored.
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }

    /// Number of vertices (row length).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The distance row of the i-th source.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// The distance row of source vertex `s`, if `s` was in the subset.
    pub fn row_of(&self, s: u32) -> Option<&[u32]> {
        self.sources
            .iter()
            .position(|&v| v == s)
            .map(|i| self.row(i))
    }
}

/// Shared k × n state: the same Release/Acquire publication protocol as the
/// full matrix, with a vertex → slot indirection.
struct SubsetState {
    n: usize,
    /// slot_of[v] = row slot of v when v is a subset source, else u32::MAX.
    slot_of: Vec<u32>,
    cells: Box<[UnsafeCell<u32>]>,
    flags: Box<[AtomicBool]>,
}

// SAFETY: same argument as `SharedDistState` — rows are uniquely owned
// until published, immutable after.
unsafe impl Sync for SubsetState {}

impl SubsetState {
    fn new(n: usize, sources: &[u32]) -> Self {
        let mut slot_of = vec![u32::MAX; n];
        for (slot, &s) in sources.iter().enumerate() {
            assert!(
                (s as usize) < n,
                "subset source {s} out of range for {n} vertices"
            );
            assert!(
                slot_of[s as usize] == u32::MAX,
                "subset source {s} listed twice"
            );
            slot_of[s as usize] = slot as u32;
        }
        let len = sources.len().checked_mul(n).expect("subset size overflow");
        let plain: Box<[u32]> = vec![INF; len].into_boxed_slice();
        // SAFETY: UnsafeCell<u32> is repr(transparent) over u32.
        let cells = unsafe { Box::from_raw(Box::into_raw(plain) as *mut [UnsafeCell<u32>]) };
        SubsetState {
            n,
            slot_of,
            cells,
            flags: (0..sources.len()).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// # Safety
    /// Caller must be the unique task for slot `slot`, pre-publication.
    #[allow(clippy::mut_from_ref)]
    unsafe fn row_mut(&self, slot: u32) -> &mut [u32] {
        let start = slot as usize * self.n;
        // SAFETY: forwarded to the caller.
        unsafe { std::slice::from_raw_parts_mut(self.cells[start].get(), self.n) }
    }

    fn published_row_of_vertex(&self, v: u32) -> Option<&[u32]> {
        let slot = self.slot_of[v as usize];
        if slot == u32::MAX {
            return None;
        }
        if self.flags[slot as usize].load(Ordering::Acquire) {
            let start = slot as usize * self.n;
            // SAFETY: Acquire pairs with the publishing Release.
            Some(unsafe {
                std::slice::from_raw_parts(self.cells[start].get() as *const u32, self.n)
            })
        } else {
            None
        }
    }

    fn publish(&self, slot: u32) {
        self.flags[slot as usize].store(true, Ordering::Release);
    }
}

/// Runs the modified Dijkstra from every vertex in `sources` (duplicates
/// rejected), visiting them in descending degree order and reusing rows
/// completed within the subset. Memory: O(k·n).
pub fn par_apsp_subset(graph: &CsrGraph, sources: &[u32], threads: usize) -> SubsetRows {
    // No token, so the sweep cannot stop early.
    run_subset(graph, sources, threads, None).unwrap_complete()
}

/// Cancellable [`par_apsp_subset`]: polls `token` before every source. On
/// a stop the outcome carries an `n × n` checkpoint in which exactly the
/// *finished subset rows* are marked complete — loadable with
/// [`crate::persist::read_checkpoint`] and resumable (to the full matrix)
/// with [`crate::ParApsp::run_resumed`], or re-run the remaining subset.
pub fn par_apsp_subset_cancellable(
    graph: &CsrGraph,
    sources: &[u32],
    threads: usize,
    token: &CancelToken,
) -> RunOutcome<SubsetRows> {
    run_subset(graph, sources, threads, Some(token))
}

fn run_subset(
    graph: &CsrGraph,
    sources: &[u32],
    threads: usize,
    token: Option<&CancelToken>,
) -> RunOutcome<SubsetRows> {
    let n = graph.vertex_count();
    let start = Instant::now();
    let state = SubsetState::new(n, sources);

    // Visit subset sources hub-first (same rationale as Alg. 3).
    let degrees = degree::out_degrees(graph);
    let subset_degrees: Vec<u32> = sources.iter().map(|&s| degrees[s as usize]).collect();
    let order: Vec<u32> = seq_bucket_sort(&subset_degrees); // indices into `sources`

    let pool = ThreadPool::new(threads);
    let locals: PerThread<(VecDeque<u32>, BitSet)> =
        PerThread::from_fn(pool.num_threads(), |_| (VecDeque::new(), BitSet::new(n)));
    let relax_impl = RelaxImpl::Auto.resolve();
    let state_ref = &state;
    let order_ref = &order;
    let body = |tid: usize, k: usize| {
        let slot = order_ref[k];
        let s = sources[slot as usize];
        // SAFETY: one scratch slot per pool thread.
        let (queue, in_queue) = unsafe { locals.get_mut(tid) };
        // SAFETY: `order` is a permutation of slots, so this task is the
        // unique owner of `slot`.
        let row = unsafe { state_ref.row_mut(slot) };
        row[s as usize] = 0;
        queue.push_back(s);
        in_queue.set(s as usize);
        while let Some(t) = queue.pop_front() {
            in_queue.clear(t as usize);
            let dt = row[t as usize];
            if t != s {
                if let Some(t_row) = state_ref.published_row_of_vertex(t) {
                    relax_row(relax_impl, row, t_row, dt, u32::MAX);
                    continue;
                }
            }
            for (v, w) in graph.out_edges(t) {
                let alt = dt.saturating_add(w);
                if alt < row[v as usize] {
                    row[v as usize] = alt;
                    if !in_queue.get(v as usize) {
                        queue.push_back(v);
                        in_queue.set(v as usize);
                    }
                }
            }
        }
        state_ref.publish(slot);
    };
    let status = match token {
        Some(token) => {
            pool.parallel_for_cancellable(sources.len(), Schedule::dynamic_cyclic(), token, body)
        }
        None => {
            pool.parallel_for(sources.len(), Schedule::dynamic_cyclic(), body);
            CancelStatus::Continue
        }
    };

    if status.is_stop() {
        // The loop has drained, so every published subset row is final.
        // Place them in an n × n checkpoint keyed by *vertex* id (the
        // persistent format has no notion of subset slots).
        let mut dist = DistanceMatrix::new_infinite(n);
        let mut completed = vec![false; n];
        for &s in sources {
            if let Some(row) = state.published_row_of_vertex(s) {
                dist.copy_row_from(s, row);
                completed[s as usize] = true;
            }
        }
        return RunOutcome::from_stop(status, Checkpoint::new(dist, completed));
    }

    // SAFETY: all rows published; single ownership again.
    let data: Box<[u32]> = unsafe { Box::from_raw(Box::into_raw(state.cells) as *mut [u32]) };
    RunOutcome::Complete(SubsetRows {
        n,
        sources: sources.to_vec(),
        data,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::dijkstra_sssp;
    use parapsp_graph::generate::{barabasi_albert, erdos_renyi_gnm, WeightSpec};
    use parapsp_graph::Direction;

    #[test]
    fn subset_rows_match_per_source_dijkstra() {
        let g = barabasi_albert(300, 3, WeightSpec::Unit, 31).unwrap();
        let sources: Vec<u32> = vec![5, 0, 120, 299, 42];
        for threads in [1, 4] {
            let rows = par_apsp_subset(&g, &sources, threads);
            assert_eq!(rows.sources(), &sources[..]);
            assert_eq!(rows.n(), 300);
            let mut expected = vec![0u32; 300];
            for (i, &s) in sources.iter().enumerate() {
                dijkstra_sssp(&g, s, &mut expected);
                assert_eq!(rows.row(i), &expected[..], "source {s}, {threads} threads");
                assert_eq!(rows.row_of(s), Some(&expected[..]));
            }
        }
    }

    #[test]
    fn subset_on_weighted_directed_graph() {
        let g = erdos_renyi_gnm(
            200,
            1_200,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 15 },
            32,
        )
        .unwrap();
        let sources: Vec<u32> = (0..200).step_by(13).collect();
        let rows = par_apsp_subset(&g, &sources, 3);
        let mut expected = vec![0u32; 200];
        for (i, &s) in sources.iter().enumerate() {
            dijkstra_sssp(&g, s, &mut expected);
            assert_eq!(rows.row(i), &expected[..], "source {s}");
        }
    }

    #[test]
    fn full_subset_equals_full_apsp() {
        let g = barabasi_albert(120, 2, WeightSpec::Unit, 33).unwrap();
        let all: Vec<u32> = (0..120).collect();
        let rows = par_apsp_subset(&g, &all, 4);
        let full = crate::par::ParApsp::par_apsp(4).run(&g);
        for s in 0..120u32 {
            assert_eq!(rows.row_of(s).unwrap(), full.dist.row(s));
        }
    }

    #[test]
    fn missing_source_lookup_returns_none() {
        let g = barabasi_albert(50, 2, WeightSpec::Unit, 34).unwrap();
        let rows = par_apsp_subset(&g, &[1, 2], 2);
        assert!(rows.row_of(10).is_none());
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_sources_rejected() {
        let g = barabasi_albert(20, 2, WeightSpec::Unit, 35).unwrap();
        let _ = par_apsp_subset(&g, &[3, 3], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_rejected() {
        let g = barabasi_albert(20, 2, WeightSpec::Unit, 36).unwrap();
        let _ = par_apsp_subset(&g, &[25], 1);
    }

    #[test]
    fn cancellable_subset_completes_when_untripped() {
        let g = barabasi_albert(150, 3, WeightSpec::Unit, 61).unwrap();
        let sources: Vec<u32> = vec![0, 7, 50, 149];
        let token = parapsp_parfor::CancelToken::new();
        let rows = par_apsp_subset_cancellable(&g, &sources, 3, &token).unwrap_complete();
        let plain = par_apsp_subset(&g, &sources, 3);
        for (i, _) in sources.iter().enumerate() {
            assert_eq!(rows.row(i), plain.row(i));
        }
    }

    #[test]
    fn cancelled_subset_checkpoints_finished_rows_exactly() {
        let g = barabasi_albert(200, 3, WeightSpec::Uniform { lo: 1, hi: 7 }, 62).unwrap();
        let sources: Vec<u32> = (0..200).step_by(5).collect(); // 40 sources
        let token = parapsp_parfor::CancelToken::with_poll_budget(12);
        let outcome = par_apsp_subset_cancellable(&g, &sources, 2, &token);
        let cp = outcome.into_checkpoint().expect("12 < 40 sources");
        assert!(cp.completed_count() < sources.len());
        // Completed rows only ever belong to the subset, and each one is
        // the exact per-source Dijkstra row.
        let mut expected = vec![0u32; 200];
        for (s, &done) in cp.completed().iter().enumerate() {
            if done {
                assert!(sources.contains(&(s as u32)), "row {s} not in subset");
                dijkstra_sssp(&g, s as u32, &mut expected);
                assert_eq!(cp.matrix().row(s as u32), &expected[..]);
            }
        }
        // The checkpoint survives the v2 format round trip.
        let mut buf = Vec::new();
        crate::persist::write_checkpoint(&cp, &mut buf).unwrap();
        assert_eq!(crate::persist::read_checkpoint(buf.as_slice()).unwrap(), cp);
    }

    #[test]
    fn empty_subset_is_fine() {
        let g = barabasi_albert(20, 2, WeightSpec::Unit, 37).unwrap();
        let rows = par_apsp_subset(&g, &[], 2);
        assert!(rows.sources().is_empty());
    }
}
