//! The sequential APSP algorithms of Peng et al. (paper §2).
//!
//! These are both the baselines that the parallel algorithms are compared
//! against in the evaluation and the reference implementations the test
//! suite validates parallel output against (the paper stresses that the
//! parallel solution returns "the exact same outputs").
//!
//! **Deprecation notice.** The whole `seq_*` family is now a set of thin
//! shims over one configurable engine — [`crate::engine::SeqEngine`]
//! driven by a [`crate::engine::Runner`] — and will be removed after one
//! release. The basic/optimized/bucket variants differ only in the
//! [`RunConfig`]'s ordering procedure; the adaptive variant is
//! [`SeqEngine::adaptive`].

use parapsp_graph::CsrGraph;
use parapsp_parfor::CancelToken;

use crate::engine::{RunConfig, Runner, SeqEngine};
use crate::outcome::RunOutcome;
use crate::stats::ApspOutput;

/// Peng's **basic** APSP (Alg. 2): the modified Dijkstra from every source
/// in index order.
pub fn seq_basic(graph: &CsrGraph) -> ApspOutput {
    Runner::new(RunConfig::seq_basic()).run(SeqEngine::ordered(), graph)
}

/// Cancellable [`seq_basic`]: polls `token` between sources and, on a
/// stop, returns a checkpoint of every completed row — resume it with
/// [`crate::ParApsp::run_resumed`] (the resumed matrix is bit-identical to
/// an uninterrupted run's).
pub fn seq_basic_with_token(graph: &CsrGraph, token: &CancelToken) -> RunOutcome<ApspOutput> {
    Runner::new(RunConfig::seq_basic()).run_with_token(SeqEngine::ordered(), graph, token)
}

/// Peng's **optimized** APSP (Alg. 3): sources in descending degree order,
/// established by the original O(n²) partial selection sort with ratio `r`
/// (`0 < r <= 1`; the evaluation uses 1.0).
pub fn seq_optimized(graph: &CsrGraph, ratio: f64) -> ApspOutput {
    Runner::new(RunConfig::seq_optimized(ratio)).run(SeqEngine::ordered(), graph)
}

/// Cancellable [`seq_optimized`]: polls `token` between sources; see
/// [`seq_basic_with_token`] for the checkpoint semantics.
pub fn seq_optimized_with_token(
    graph: &CsrGraph,
    ratio: f64,
    token: &CancelToken,
) -> RunOutcome<ApspOutput> {
    Runner::new(RunConfig::seq_optimized(ratio)).run_with_token(SeqEngine::ordered(), graph, token)
}

/// Like [`seq_optimized`] but with an O(n) exact bucket ordering — used by
/// tests and benches to isolate the ordering cost from the SSSP cost.
pub fn seq_optimized_bucket(graph: &CsrGraph) -> ApspOutput {
    Runner::new(RunConfig::seq_optimized_bucket()).run(SeqEngine::ordered(), graph)
}

/// Peng's **adaptive** optimized APSP (described in §2.2 of the ICPP paper;
/// the paper chose *not* to parallelize it because the order adapts across
/// iterations — this reconstruction exists so that decision can be
/// examined).
///
/// After each SSSP run, vertices that actually relayed shortest paths
/// (improved another vertex's label while being expanded) accumulate
/// *intermediate credit*; the next source is the unprocessed vertex with
/// the highest `credit * credit_weight + degree` score. With
/// `credit_weight = 0` this degenerates to the plain optimized algorithm.
pub fn seq_adaptive(graph: &CsrGraph, credit_weight: u64) -> ApspOutput {
    Runner::new(RunConfig::seq_adaptive(credit_weight))
        .run(SeqEngine::adaptive(credit_weight), graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_graph::generate::{barabasi_albert, erdos_renyi_gnm, WeightSpec};
    use parapsp_graph::Direction;

    #[test]
    fn basic_and_optimized_agree_on_scale_free_graph() {
        let g = barabasi_albert(200, 3, WeightSpec::Unit, 21).unwrap();
        let basic = seq_basic(&g);
        let optimized = seq_optimized(&g, 1.0);
        assert_eq!(basic.dist.first_difference(&optimized.dist), None);
        assert_eq!(basic.counters.sources, 200);
        assert!(basic.dist.is_symmetric());
        assert_eq!(basic.algorithm, "SeqBasic");
        assert_eq!(optimized.algorithm, "SeqOptimized");
    }

    #[test]
    fn bucket_ordering_variant_agrees() {
        let g = barabasi_albert(150, 2, WeightSpec::Unit, 3).unwrap();
        let a = seq_optimized(&g, 1.0);
        let b = seq_optimized_bucket(&g);
        assert_eq!(a.dist.first_difference(&b.dist), None);
    }

    #[test]
    fn adaptive_agrees_with_basic_on_weighted_directed_graph() {
        let g = erdos_renyi_gnm(
            120,
            700,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 9 },
            17,
        )
        .unwrap();
        let basic = seq_basic(&g);
        for w in [0u64, 10, 1000] {
            let adaptive = seq_adaptive(&g, w);
            assert_eq!(
                basic.dist.first_difference(&adaptive.dist),
                None,
                "credit weight {w}"
            );
            assert_eq!(adaptive.algorithm, format!("SeqAdaptive(w={w})"));
        }
    }

    #[test]
    fn optimized_reuses_rows_more_than_basic_visits_hubs_late() {
        // On a scale-free graph the degree ordering front-loads hub rows,
        // so the optimized variant should do at least as much row reuse
        // per unit of queue work — the mechanism behind its 2–4× win.
        let g = barabasi_albert(400, 3, WeightSpec::Unit, 8).unwrap();
        let basic = seq_basic(&g);
        let optimized = seq_optimized(&g, 1.0);
        // Both must do *some* reuse.
        assert!(basic.counters.row_reuses > 0);
        assert!(optimized.counters.row_reuses > 0);
        // The optimized variant must not do more queue work overall.
        assert!(
            optimized.counters.queue_pops <= basic.counters.queue_pops,
            "optimized {} vs basic {}",
            optimized.counters.queue_pops,
            basic.counters.queue_pops
        );
    }

    #[test]
    fn cancelled_seq_runs_resume_bit_identically() {
        let g = barabasi_albert(120, 3, WeightSpec::Uniform { lo: 1, hi: 5 }, 41).unwrap();
        let full = seq_basic(&g);
        for budget in [0u64, 1, 40, 100] {
            let token = parapsp_parfor::CancelToken::with_poll_budget(budget);
            let outcome = seq_basic_with_token(&g, &token);
            let cp = match outcome {
                crate::RunOutcome::Cancelled { checkpoint } => checkpoint,
                other => panic!("budget {budget} must cancel, got {other:?}"),
            };
            assert_eq!(cp.completed_count() as u64, budget.min(120));
            let resumed = crate::ParApsp::par_apsp(2).run_resumed(&g, cp);
            assert_eq!(
                full.dist.first_difference(&resumed.dist),
                None,
                "budget {budget}"
            );
        }
        // A budget larger than n completes normally.
        let token = parapsp_parfor::CancelToken::with_poll_budget(1000);
        let out = seq_basic_with_token(&g, &token).unwrap_complete();
        assert_eq!(full.dist.first_difference(&out.dist), None);
    }

    #[test]
    fn cancellable_optimized_variant_matches_when_uncancelled() {
        let g = barabasi_albert(100, 2, WeightSpec::Unit, 51).unwrap();
        let token = parapsp_parfor::CancelToken::new();
        let out = seq_optimized_with_token(&g, 1.0, &token).unwrap_complete();
        assert_eq!(seq_basic(&g).dist.first_difference(&out.dist), None);
        // Pre-cancelled: nothing computed, checkpoint empty but valid.
        let token = parapsp_parfor::CancelToken::new();
        token.cancel();
        let cp = seq_optimized_with_token(&g, 1.0, &token)
            .into_checkpoint()
            .unwrap();
        assert_eq!(cp.completed_count(), 0);
        let mut buf = Vec::new();
        crate::persist::write_checkpoint(&cp, &mut buf).unwrap();
        assert!(crate::persist::read_checkpoint(buf.as_slice()).is_ok());
    }

    #[test]
    fn seq_engine_resumes_from_a_seq_checkpoint() {
        // The collapsed engine resumes its own checkpoints (previously only
        // ParApsp could resume a seq checkpoint).
        let g = barabasi_albert(110, 3, WeightSpec::Uniform { lo: 1, hi: 7 }, 29).unwrap();
        let full = seq_basic(&g);
        let token = parapsp_parfor::CancelToken::with_poll_budget(30);
        let cp = seq_basic_with_token(&g, &token)
            .into_checkpoint()
            .expect("30 < 110 sources");
        let resumed = Runner::new(RunConfig::seq_basic()).run_resumed(SeqEngine::ordered(), &g, cp);
        assert_eq!(full.dist.first_difference(&resumed.dist), None);
        assert_eq!(resumed.counters.sources, 110 - 30);
    }

    #[test]
    fn empty_and_single_vertex_graphs() {
        let g0 = CsrGraph::from_unit_edges(0, Direction::Directed, &[]).unwrap();
        let out = seq_basic(&g0);
        assert_eq!(out.dist.n(), 0);

        let g1 = CsrGraph::from_unit_edges(1, Direction::Directed, &[]).unwrap();
        let out = seq_optimized(&g1, 1.0);
        assert_eq!(out.dist.get(0, 0), 0);
    }

    use parapsp_graph::CsrGraph;
}
