//! The unified execution pipeline: one [`Engine`] trait, one [`Runner`].
//!
//! PRs 1–3 threaded checkpointing, vectorized relaxation, and cancellation
//! through five separate engines, so every cross-cutting feature was an
//! O(engines) change. This module factors the shared lifecycle out once:
//!
//! * [`RunConfig`] — every knob (threads, schedule, ordering, kernel
//!   options, relax implementation, distance cap, checkpoint policy,
//!   label) in a single builder-style value.
//! * [`Engine`] — what is *specific* to an algorithm: how to plan its work
//!   units ([`Engine::prepare`]), how to execute a batch of units
//!   ([`Engine::run_rows`]), how to snapshot partial progress
//!   ([`Engine::snapshot`]), and how to assemble its output
//!   ([`Engine::finish`]).
//! * [`Runner`] — owns everything else, exactly once: thread-pool
//!   acquisition, resume validation, the periodic [`CheckpointSink`]
//!   flush, cancellation plumbing, per-row trace collection, phase
//!   timing, and [`RunOutcome`] assembly.
//!
//! The five engine families all implement the trait: [`ApspEngine`] (the
//! shared-memory parallel drivers), [`SeqEngine`] (Peng's sequential
//! family, including the adaptive variant), [`SubsetEngine`]
//! (memory-bounded subset rows), [`BlockedFwEngine`] (the blocked
//! Floyd–Warshall comparator), and `DistEngine` in the `parapsp-dist`
//! crate (the simulated cluster driver).
//!
//! Every run is constructed the same way — pick a [`RunConfig`], pick an
//! engine, and drive it through a [`Runner`]:
//!
//! ```
//! use parapsp_core::engine::{ApspEngine, RunConfig, Runner};
//! use parapsp_graph::generate::{barabasi_albert, WeightSpec};
//!
//! let g = barabasi_albert(200, 3, WeightSpec::Unit, 42).unwrap();
//! let out = Runner::new(RunConfig::par_apsp(4)).run(ApspEngine::new(), &g);
//! assert_eq!(out.dist.get(0, 0), 0);
//! assert_eq!(out.algorithm, "ParAPSP");
//! ```

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use parapsp_graph::{degree, CsrGraph};
use parapsp_order::OrderingProcedure;
use parapsp_parfor::{CancelStatus, CancelToken, ParSlice, PerThread, Schedule, ThreadPool};

use crate::kernel::{KernelOptions, Workspace};
use crate::outcome::RunOutcome;
use crate::persist::{self, Checkpoint, FsyncPolicy, RowLedger};
use crate::relax::RelaxImpl;
use crate::solver::{RowSolver, SolverKind};
use crate::stats::{ApspOutput, Counters, PhaseTimings};
use crate::store::{Store, StoreSpec};

pub use crate::blocked_fw::BlockedFwEngine;
pub use crate::subset::SubsetEngine;

// ---------------------------------------------------------------------------
// Value enums (CLI-facing)
// ---------------------------------------------------------------------------

/// A closed set of named values, parseable from their stable CLI names.
///
/// This is the hand-rolled equivalent of clap's `ValueEnum` derive (this
/// workspace is dependency-free): a type lists its variants once, names
/// each one, and gets parsing **and** self-describing rejection messages
/// for free. Implemented by [`EngineKind`], [`RelaxImpl`], the `dist`
/// crate's `SourcePartition`, and the CLI's interrupt mode.
pub trait ValueEnum: Sized + Copy + 'static {
    /// Every selectable variant, in display order.
    fn value_variants() -> &'static [Self];

    /// The stable lowercase CLI name of this variant.
    fn value_name(&self) -> &'static str;

    /// Parses a [`ValueEnum::value_name`] back into its variant; the error
    /// enumerates every accepted value.
    fn parse_value(raw: &str) -> Result<Self, String> {
        Self::value_variants()
            .iter()
            .copied()
            .find(|v| v.value_name() == raw)
            .ok_or_else(|| {
                let names: Vec<&str> = Self::value_variants()
                    .iter()
                    .map(|v| v.value_name())
                    .collect();
                format!(
                    "invalid value `{raw}` (possible values: {})",
                    names.join(", ")
                )
            })
    }
}

impl ValueEnum for RelaxImpl {
    fn value_variants() -> &'static [Self] {
        &RelaxImpl::ALL
    }

    fn value_name(&self) -> &'static str {
        self.name()
    }
}

impl ValueEnum for FsyncPolicy {
    fn value_variants() -> &'static [Self] {
        &FsyncPolicy::ALL
    }

    fn value_name(&self) -> &'static str {
        self.name()
    }
}

/// Every APSP algorithm selectable from the CLI, by its stable name.
///
/// The first eight run through the [`Runner`] pipeline; the last three
/// (`par-adaptive` and the two baselines) are direct calls kept for
/// comparison and are not cancellable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// **ParAPSP** (paper Alg. 8): MultiLists ordering + dynamic-cyclic.
    ParApsp,
    /// **ParAlg1** (§3.1): no ordering, block partitioning.
    ParAlg1,
    /// **ParAlg2** (Alg. 4): selection-sort ordering + dynamic-cyclic.
    ParAlg2,
    /// Peng's sequential basic algorithm (Alg. 2).
    SeqBasic,
    /// Peng's sequential optimized algorithm (Alg. 3).
    SeqOptimized,
    /// Peng's adaptive sequential variant (intermediate-credit ordering).
    SeqAdaptive,
    /// Cache-blocked parallel Floyd–Warshall (related-work comparator).
    BlockedFw,
    /// The simulated distributed-memory cluster driver.
    Dist,
    /// The adaptive parallel extension (separate subsystem, not `Runner`-driven).
    ParAdaptive,
    /// Plain Floyd–Warshall baseline.
    FloydWarshall,
    /// Parallel binary-heap Dijkstra baseline.
    Dijkstra,
}

impl EngineKind {
    /// Whether the algorithm supports cooperative cancellation
    /// (`--deadline` / checkpoint-on-interrupt).
    pub fn cancellable(self) -> bool {
        !matches!(
            self,
            EngineKind::ParAdaptive | EngineKind::FloydWarshall | EngineKind::Dijkstra
        )
    }

    /// Whether completed rows are final mid-run, i.e. the engine supports
    /// periodic row checkpoints and `--resume`.
    pub fn row_checkpoints(self) -> bool {
        matches!(
            self,
            EngineKind::ParApsp
                | EngineKind::ParAlg1
                | EngineKind::ParAlg2
                | EngineKind::SeqBasic
                | EngineKind::SeqOptimized
                | EngineKind::SeqAdaptive
        )
    }

    /// Whether the algorithm runs the modified-Dijkstra kernel, i.e.
    /// honours `--relax` and `--cap` natively.
    pub fn uses_kernel(self) -> bool {
        self.row_checkpoints()
    }

    /// Whether the algorithm sweeps its sources through the configured
    /// loop [`Schedule`], i.e. honours `--schedule`. The sequential
    /// family runs one thread (every schedule degenerates to index
    /// order) and the remaining algorithms pick their internal schedules
    /// themselves, so overriding theirs would be silently ignored.
    pub fn honours_schedule(self) -> bool {
        matches!(
            self,
            EngineKind::ParApsp | EngineKind::ParAlg1 | EngineKind::ParAlg2
        )
    }

    /// Whether the algorithm keeps its distance matrix in a
    /// [`Store`](crate::store::Store) and therefore honours `--store`.
    /// True for the row engines (published rows go straight into the
    /// selected backend) and the dist driver (the gather target is a
    /// store); the baselines and the blocked Floyd–Warshall mutate dense
    /// matrices in place and ignore the flag.
    pub fn supports_store(self) -> bool {
        self.row_checkpoints() || self == EngineKind::Dist
    }
}

impl ValueEnum for EngineKind {
    fn value_variants() -> &'static [Self] {
        &[
            EngineKind::ParApsp,
            EngineKind::ParAlg1,
            EngineKind::ParAlg2,
            EngineKind::SeqBasic,
            EngineKind::SeqOptimized,
            EngineKind::SeqAdaptive,
            EngineKind::BlockedFw,
            EngineKind::Dist,
            EngineKind::ParAdaptive,
            EngineKind::FloydWarshall,
            EngineKind::Dijkstra,
        ]
    }

    fn value_name(&self) -> &'static str {
        match self {
            EngineKind::ParApsp => "par-apsp",
            EngineKind::ParAlg1 => "par-alg1",
            EngineKind::ParAlg2 => "par-alg2",
            EngineKind::SeqBasic => "seq-basic",
            EngineKind::SeqOptimized => "seq-optimized",
            EngineKind::SeqAdaptive => "seq-adaptive",
            EngineKind::BlockedFw => "blocked-fw",
            EngineKind::Dist => "dist",
            EngineKind::ParAdaptive => "par-adaptive",
            EngineKind::FloydWarshall => "floyd-warshall",
            EngineKind::Dijkstra => "dijkstra",
        }
    }
}

// ---------------------------------------------------------------------------
// RunConfig
// ---------------------------------------------------------------------------

/// On-disk shape of a run's durability artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointFormat {
    /// A version-2 checkpoint, atomically rewritten whole on every flush:
    /// O(n²) bytes per flush, but the file is always a complete snapshot.
    #[default]
    Full,
    /// A version-3 append-only run ledger ([`RowLedger`]): O(row) bytes
    /// per completed row, recovered by replaying the longest valid
    /// prefix. The file only ever grows during a run.
    Ledger,
}

/// Where, how often, and in which format a run persists its progress.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Destination file of the periodic checkpoint or ledger.
    pub path: PathBuf,
    /// Completed work units between flushes (must be ≥ 1).
    pub every: usize,
    /// Full-rewrite checkpoint or append-only ledger.
    pub format: CheckpointFormat,
    /// When ledger appends are fsynced (ignored by [`CheckpointFormat::Full`],
    /// which always fsyncs its atomic rewrite).
    pub fsync: FsyncPolicy,
}

/// Every knob of an APSP run in one builder-style value: thread count,
/// loop schedule, source ordering, kernel ablation switches (row reuse,
/// queue dedup, distance cap, relax implementation), checkpoint policy,
/// and report label.
///
/// Named constructors pin the paper's algorithm configurations; `with_*`
/// methods override any piece. The config is engine-agnostic — the same
/// value drives any [`Engine`] through a [`Runner`] (engines ignore knobs
/// that don't apply to them, e.g. the blocked Floyd–Warshall ignores the
/// ordering procedure).
#[derive(Debug, Clone)]
pub struct RunConfig {
    threads: usize,
    schedule: Schedule,
    ordering: OrderingProcedure,
    kernel: KernelOptions,
    store: StoreSpec,
    checkpoint: Option<CheckpointPolicy>,
    label: Option<String>,
}

impl RunConfig {
    /// A bare config: identity ordering, block schedule, default kernel,
    /// no checkpoint, engine-chosen label.
    pub fn new(threads: usize) -> Self {
        RunConfig {
            threads,
            schedule: Schedule::Block,
            ordering: OrderingProcedure::Identity,
            kernel: KernelOptions::default(),
            store: StoreSpec::default(),
            checkpoint: None,
            label: None,
        }
    }

    /// **ParAPSP** (Alg. 8): MultiLists ordering + dynamic-cyclic schedule.
    pub fn par_apsp(threads: usize) -> Self {
        RunConfig::new(threads)
            .with_schedule(Schedule::dynamic_cyclic())
            .with_ordering(OrderingProcedure::multi_lists())
            .with_label("ParAPSP")
    }

    /// **ParAlg1** (§3.1): no ordering, block partitioning.
    pub fn par_alg1(threads: usize) -> Self {
        RunConfig::new(threads).with_label("ParAlg1")
    }

    /// **ParAlg2** (Alg. 4): selection ordering + dynamic-cyclic schedule.
    pub fn par_alg2(threads: usize) -> Self {
        RunConfig::new(threads)
            .with_schedule(Schedule::dynamic_cyclic())
            .with_ordering(OrderingProcedure::selection())
            .with_label("ParAlg2")
    }

    /// The ParBuckets variant (§4.1): approximate parallel bucket ordering.
    pub fn par_buckets(threads: usize) -> Self {
        RunConfig::new(threads)
            .with_schedule(Schedule::dynamic_cyclic())
            .with_ordering(OrderingProcedure::par_buckets())
            .with_label("ParBuckets")
    }

    /// The ParMax variant (§4.2): exact max+1-bucket ordering.
    pub fn par_max(threads: usize) -> Self {
        RunConfig::new(threads)
            .with_schedule(Schedule::dynamic_cyclic())
            .with_ordering(OrderingProcedure::par_max())
            .with_label("ParMax")
    }

    /// Peng's sequential basic algorithm (Alg. 2): index order, 1 thread.
    pub fn seq_basic() -> Self {
        RunConfig::new(1).with_label("SeqBasic")
    }

    /// Peng's sequential optimized algorithm (Alg. 3): partial selection
    /// sort with ratio `r`, 1 thread.
    pub fn seq_optimized(ratio: f64) -> Self {
        RunConfig::new(1)
            .with_ordering(OrderingProcedure::SelectionSort { ratio })
            .with_label("SeqOptimized")
    }

    /// [`RunConfig::seq_optimized`] with the O(n) exact bucket ordering.
    pub fn seq_optimized_bucket() -> Self {
        RunConfig::new(1)
            .with_ordering(OrderingProcedure::SeqBucket)
            .with_label("SeqOptimizedBucket")
    }

    /// Peng's adaptive sequential variant (pair with
    /// [`SeqEngine::adaptive`]; the order is chosen at run time).
    pub fn seq_adaptive(credit_weight: u64) -> Self {
        RunConfig::new(1).with_label(format!("SeqAdaptive(w={credit_weight})"))
    }

    /// Subset-of-sources runs: degree-ordered, dynamic-cyclic.
    pub fn subset(threads: usize) -> Self {
        RunConfig::new(threads)
            .with_schedule(Schedule::dynamic_cyclic())
            .with_ordering(OrderingProcedure::SeqBucket)
    }

    /// Overrides the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the loop schedule (for the Fig. 1 scheduling study).
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Overrides the source ordering procedure.
    pub fn with_ordering(mut self, ordering: OrderingProcedure) -> Self {
        self.ordering = ordering;
        self
    }

    /// Overrides the kernel ablation switches.
    pub fn with_kernel_options(mut self, kernel: KernelOptions) -> Self {
        self.kernel = kernel;
        self
    }

    /// Caps computed distances: pairs farther apart than `cap` are left at
    /// `INF`. Exact within the cap.
    pub fn with_max_distance(mut self, cap: u32) -> Self {
        self.kernel.max_distance = Some(cap);
        self
    }

    /// Selects the row-relaxation implementation (see [`crate::relax`]).
    pub fn with_relax(mut self, relax: RelaxImpl) -> Self {
        self.kernel.relax = relax;
        self
    }

    /// Selects the per-source SSSP solver (see [`crate::solver`]).
    /// [`SolverKind::Auto`] is resolved against the graph when the engine
    /// prepares the run.
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.kernel.solver = solver;
        self
    }

    /// Selects the distance-matrix storage backend (see [`crate::store`]).
    /// The default dense store is the bit-identity reference; the delta
    /// and mmap tiers trade row-read cost for memory. Every backend yields
    /// a bit-identical final matrix; backends that cannot lend `&[u32]`
    /// rows cheaply silently disable row reuse (the kernel degrades to
    /// plain edge relaxation, still exact).
    pub fn with_store(mut self, store: StoreSpec) -> Self {
        self.store = store;
        self
    }

    /// Periodically persists progress: after every `every` completed work
    /// units the [`Runner`] writes a version-2 checkpoint (atomically —
    /// temp file + rename + fsync) to `path`. A run killed between writes
    /// loses at most `every` rows of work.
    ///
    /// Checkpointing inserts a barrier every `every` units, so small
    /// values trade sweep parallelism for durability. Engines whose rows
    /// are not final mid-run ([`Engine::row_checkpoints`] is `false`)
    /// skip the periodic writes.
    ///
    /// # Panics
    ///
    /// Panics when `every` is zero, and later — during the run — if a
    /// checkpoint write fails (durability was explicitly requested; a
    /// silently unwritable checkpoint would defeat it).
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>, every: usize) -> Self {
        assert!(every > 0, "checkpoint interval must be at least 1 source");
        self.checkpoint = Some(CheckpointPolicy {
            path: path.into(),
            every,
            format: CheckpointFormat::Full,
            fsync: FsyncPolicy::default(),
        });
        self
    }

    /// Like [`RunConfig::with_checkpoint`], but persists through an
    /// append-only [`RowLedger`]: after every `every` completed work units
    /// the [`Runner`] appends the newly completed rows (O(row) bytes each)
    /// instead of rewriting an O(n²) checkpoint. The ledger is opened with
    /// crash recovery — a torn tail from a previous incarnation is
    /// truncated and its valid rows are folded into the resume state, so
    /// pointing a run at its own ledger after a crash resumes it.
    ///
    /// # Panics
    ///
    /// Panics when `every` is zero, and later — during the run — if the
    /// ledger cannot be opened or appended to.
    pub fn with_ledger(mut self, path: impl Into<PathBuf>, every: usize) -> Self {
        assert!(
            every > 0,
            "ledger commit interval must be at least 1 source"
        );
        self.checkpoint = Some(CheckpointPolicy {
            path: path.into(),
            every,
            format: CheckpointFormat::Ledger,
            fsync: FsyncPolicy::default(),
        });
        self
    }

    /// Overrides the ledger fsync policy (see [`FsyncPolicy`]).
    ///
    /// # Panics
    ///
    /// Panics when no checkpoint/ledger destination was configured first.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        let policy = self
            .checkpoint
            .as_mut()
            .expect("configure a checkpoint or ledger before its fsync policy");
        policy.fsync = fsync;
        self
    }

    /// Overrides the report label (defaults to the engine's name).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Configured loop schedule.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Configured source ordering procedure.
    pub fn ordering(&self) -> OrderingProcedure {
        self.ordering
    }

    /// Configured kernel switches.
    pub fn kernel(&self) -> KernelOptions {
        self.kernel
    }

    /// Configured distance-matrix storage backend.
    pub fn store(&self) -> &StoreSpec {
        &self.store
    }

    /// Configured checkpoint policy, if any.
    pub fn checkpoint(&self) -> Option<&CheckpointPolicy> {
        self.checkpoint.as_ref()
    }

    /// Configured label override, if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }
}

// ---------------------------------------------------------------------------
// The Engine trait
// ---------------------------------------------------------------------------

/// What [`Engine::prepare`] hands back to the [`Runner`]: the ordered work
/// units plus how long the ordering phase took.
#[derive(Debug)]
pub struct Plan {
    /// Work units in execution order. For the row engines these are source
    /// vertices (resume-filtered); for [`SubsetEngine`] they are slot
    /// indices into its source list; for [`BlockedFwEngine`] pivot-tile
    /// indices; adaptive engines may treat them as opaque step counters.
    pub units: Vec<u32>,
    /// Wall time spent computing the source ordering.
    pub ordering: Duration,
}

/// Everything [`Engine::run_rows`] may need, borrowed from the [`Runner`].
pub struct RowsCtx<'a> {
    /// The pool executing this run.
    pub pool: &'a ThreadPool,
    /// The run's configuration.
    pub config: &'a RunConfig,
    /// Cooperative cancellation token; engines poll it at unit boundaries.
    pub token: Option<&'a CancelToken>,
    /// Per-unit timing sink ([`Runner::run_traced`]), indexed by unit id.
    pub trace: Option<&'a ParSlice<'a, u64>>,
}

/// How a batch of work units ended — [`CancelStatus::Continue`] when every
/// unit ran, a stop status when the engine drained early.
pub type RowsOutcome = CancelStatus;

/// Timings and identity the [`Runner`] assembled for [`Engine::finish`].
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Ordering / sweep / total phase wall times.
    pub timings: PhaseTimings,
    /// Worker threads the pool actually ran.
    pub threads: usize,
    /// Report label: the config override or the engine's name.
    pub label: String,
}

/// One APSP algorithm, expressed as the four phase hooks the [`Runner`]
/// drives: plan, execute, snapshot, assemble.
///
/// Implementations own their mutable state (distance matrix, scratch
/// space, counters) across the hook calls; the `Runner` owns the
/// lifecycle — it validates resume checkpoints, chunks units for periodic
/// checkpointing, persists through the [`CheckpointSink`], and wraps
/// early stops into [`RunOutcome`]s.
pub trait Engine {
    /// What a completed run yields.
    type Output;

    /// The engine's display name, used as the report label when the
    /// [`RunConfig`] does not override it.
    fn name(&self) -> &str;

    /// Whether rows completed mid-run are final, making periodic
    /// checkpoints and resume meaningful. Engines like Floyd–Warshall —
    /// where every cell may still shrink until the last pivot — return
    /// `false`, and the [`Runner`] skips periodic checkpointing for them.
    fn row_checkpoints(&self) -> bool {
        true
    }

    /// Computes the source ordering, applies a resume checkpoint (already
    /// size-validated by the [`Runner`]), and allocates run state.
    /// Returns the remaining work units.
    fn prepare(
        &mut self,
        graph: &CsrGraph,
        config: &RunConfig,
        pool: &ThreadPool,
        resume: Option<Checkpoint>,
    ) -> Plan;

    /// Executes a batch of work units, polling `ctx.token` at unit
    /// boundaries. Returns [`CancelStatus::Continue`] when the batch
    /// completed, or the stop status after draining (every started unit
    /// finished — partial state must be consistent for
    /// [`Engine::snapshot`]).
    fn run_rows(&mut self, graph: &CsrGraph, units: &[u32], ctx: &RowsCtx<'_>) -> RowsOutcome;

    /// A consistent version-2 checkpoint of all completed work. Called by
    /// the [`Runner`] between batches (periodic persistence) and after an
    /// early stop.
    fn snapshot(&self) -> Checkpoint;

    /// Visits completed rows for incremental (ledger) persistence: called
    /// by the [`Runner`] between batches with the unit batch that just
    /// ran. The engine invokes `visit` with each completed `(source, row)`
    /// it can attribute to the batch — visiting extra already-completed
    /// rows is fine (the `Runner` deduplicates), missing a completed one
    /// only delays its append to a later batch.
    ///
    /// The default builds a full [`Engine::snapshot`] and visits every
    /// completed row — correct for any engine, O(n²) per batch. Row
    /// engines override this with an O(batch · row) walk of their
    /// published rows.
    fn visit_rows(&self, _units: &[u32], visit: &mut dyn FnMut(u32, &[u32])) {
        let snapshot = self.snapshot();
        for s in 0..snapshot.n() as u32 {
            if snapshot.completed()[s as usize] {
                visit(s, snapshot.matrix().row(s));
            }
        }
    }

    /// Like [`Engine::snapshot`], but consumes the engine — the final
    /// snapshot of a stopped run, so implementations can move their
    /// distance state into the checkpoint instead of cloning it. The
    /// default delegates to [`Engine::snapshot`] (an O(n²) copy); the row
    /// engines override it with a zero-copy handoff of their store.
    fn into_snapshot(self) -> Checkpoint
    where
        Self: Sized,
    {
        self.snapshot()
    }

    /// Assembles the completed run's output.
    fn finish(self, graph: &CsrGraph, summary: RunSummary) -> Self::Output
    where
        Self: Sized;
}

// ---------------------------------------------------------------------------
// CheckpointSink
// ---------------------------------------------------------------------------

/// The one place progress checkpoints are written from.
///
/// Before the unification every engine carried its own copy of the
/// flush-and-panic block; the [`Runner`] now owns a single sink. Writes
/// are atomic (temp file + rename + fsync) via
/// [`persist::save_checkpoint`].
#[derive(Debug, Clone)]
pub struct CheckpointSink {
    path: PathBuf,
}

impl CheckpointSink {
    /// A sink writing to `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointSink { path: path.into() }
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Persists `checkpoint`, replacing any previous file atomically.
    ///
    /// # Panics
    ///
    /// Panics when the write fails: durability was explicitly requested,
    /// and a silently unwritable checkpoint would defeat it.
    pub fn flush(&self, checkpoint: &Checkpoint) {
        persist::save_checkpoint(checkpoint, &self.path)
            .unwrap_or_else(|err| panic!("writing checkpoint {}: {err}", self.path.display()));
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// The execution driver: pairs a [`RunConfig`] with any [`Engine`] and
/// owns the full run lifecycle exactly once.
#[derive(Debug, Clone)]
pub struct Runner {
    config: RunConfig,
}

impl Runner {
    /// A runner for `config`.
    pub fn new(config: RunConfig) -> Self {
        Runner { config }
    }

    /// The runner's configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Runs `engine` to completion on a fresh thread pool.
    pub fn run<E: Engine>(&self, engine: E, graph: &CsrGraph) -> E::Output {
        let pool = ThreadPool::new(self.config.threads);
        // Without a token the sweep cannot stop early.
        self.drive(engine, graph, &pool, None, None, None)
            .unwrap_complete()
    }

    /// Runs `engine` on an existing pool (the pool's thread count wins
    /// over the configured one).
    pub fn run_with_pool<E: Engine>(
        &self,
        engine: E,
        graph: &CsrGraph,
        pool: &ThreadPool,
    ) -> E::Output {
        self.drive(engine, graph, pool, None, None, None)
            .unwrap_complete()
    }

    /// Cancellable [`Runner::run`]: the engine polls `token` at unit
    /// boundaries; on a stop the workers drain and the outcome carries a
    /// consistent checkpoint of every completed row, valid as input to
    /// [`Runner::run_resumed`] (which lands on the bit-identical final
    /// result).
    pub fn run_with_token<E: Engine>(
        &self,
        engine: E,
        graph: &CsrGraph,
        token: &CancelToken,
    ) -> RunOutcome<E::Output> {
        let pool = ThreadPool::new(self.config.threads);
        self.drive(engine, graph, &pool, None, Some(token), None)
    }

    /// Continues an interrupted run from a checkpoint: rows the checkpoint
    /// marks complete are pre-published, and only the missing units are
    /// executed. Because published rows are final, the output is
    /// bit-identical to an uninterrupted run.
    ///
    /// # Panics
    ///
    /// Panics when the checkpoint's matrix size does not match `graph`.
    pub fn run_resumed<E: Engine>(
        &self,
        engine: E,
        graph: &CsrGraph,
        checkpoint: Checkpoint,
    ) -> E::Output {
        let pool = ThreadPool::new(self.config.threads);
        self.drive(engine, graph, &pool, Some(checkpoint), None, None)
            .unwrap_complete()
    }

    /// Cancellable [`Runner::run_resumed`]: continues from `checkpoint`
    /// and may itself be interrupted again, yielding a newer checkpoint.
    ///
    /// # Panics
    ///
    /// Panics when the checkpoint's matrix size does not match `graph`.
    pub fn run_resumed_with_token<E: Engine>(
        &self,
        engine: E,
        graph: &CsrGraph,
        checkpoint: Checkpoint,
        token: &CancelToken,
    ) -> RunOutcome<E::Output> {
        let pool = ThreadPool::new(self.config.threads);
        self.drive(engine, graph, &pool, Some(checkpoint), Some(token), None)
    }

    /// Like [`Runner::run`], additionally returning the wall time each
    /// work *unit* spent executing (indexed by unit id — source vertex for
    /// the row engines). This is the per-row timing hook that used to be
    /// `ParApsp::run_traced`'s separate code path.
    pub fn run_traced<E: Engine>(&self, engine: E, graph: &CsrGraph) -> (E::Output, Vec<Duration>) {
        let pool = ThreadPool::new(self.config.threads);
        let n = graph.vertex_count();
        let mut nanos: Vec<u64> = vec![0; n];
        let out = {
            let view = ParSlice::new(&mut nanos[..]);
            self.drive(engine, graph, &pool, None, None, Some(&view))
                .unwrap_complete()
        };
        (out, nanos.into_iter().map(Duration::from_nanos).collect())
    }

    /// The single lifecycle implementation every entry point funnels into.
    fn drive<E: Engine>(
        &self,
        mut engine: E,
        graph: &CsrGraph,
        pool: &ThreadPool,
        resume: Option<Checkpoint>,
        token: Option<&CancelToken>,
        trace: Option<&ParSlice<'_, u64>>,
    ) -> RunOutcome<E::Output> {
        if let Some(cp) = &resume {
            assert_eq!(
                cp.n(),
                graph.vertex_count(),
                "checkpoint is for a {}-vertex matrix but the graph has {} vertices",
                cp.n(),
                graph.vertex_count()
            );
        }
        let start = Instant::now();
        // A ledger policy opens (and crash-recovers) its file before
        // `prepare`, so rows replayed from the torn-tail recovery join the
        // resume state, and rows only the `--resume` artifact knows about
        // are backfilled into the ledger.
        let mut ledger_state: Option<(RowLedger, Vec<bool>)> = None;
        let resume = match &self.config.checkpoint {
            Some(policy)
                if policy.format == CheckpointFormat::Ledger && engine.row_checkpoints() =>
            {
                let fail = |err: persist::PersistError| -> ! {
                    panic!("run ledger {}: {err}", policy.path.display())
                };
                let (mut ledger, replayed) =
                    RowLedger::open(&policy.path, graph.vertex_count(), policy.fsync)
                        .unwrap_or_else(|err| fail(err));
                let merged = match resume {
                    Some(cp) => {
                        let (mut dist, mut completed) = cp.into_parts();
                        for (s, done) in completed.iter_mut().enumerate() {
                            if replayed.completed()[s] && !*done {
                                dist.copy_row_from(s as u32, replayed.matrix().row(s as u32));
                                *done = true;
                            } else if *done && !replayed.completed()[s] {
                                ledger
                                    .append(s as u32, dist.row(s as u32))
                                    .unwrap_or_else(|err| fail(err));
                            }
                        }
                        ledger.commit().unwrap_or_else(|err| fail(err));
                        Checkpoint::new(dist, completed)
                    }
                    None => replayed,
                };
                let logged = merged.completed().to_vec();
                ledger_state = Some((ledger, logged));
                Some(merged)
            }
            _ => resume,
        };
        let plan = engine.prepare(graph, &self.config, pool, resume);
        let ctx = RowsCtx {
            pool,
            config: &self.config,
            token,
            trace,
        };
        let t_sssp = Instant::now();
        let status = match (&self.config.checkpoint, &mut ledger_state) {
            (Some(policy), Some((ledger, logged))) => {
                // Between batches no row owner is active, so every row the
                // engine reports completed is final — append it once.
                let mut status = CancelStatus::Continue;
                for chunk in plan.units.chunks(policy.every) {
                    status = engine.run_rows(graph, chunk, &ctx);
                    engine.visit_rows(chunk, &mut |s, row| {
                        if !logged[s as usize] {
                            ledger.append(s, row).unwrap_or_else(|err| {
                                panic!("run ledger {}: {err}", policy.path.display())
                            });
                            logged[s as usize] = true;
                        }
                    });
                    ledger.commit().unwrap_or_else(|err| {
                        panic!("run ledger {}: {err}", policy.path.display())
                    });
                    if status.is_stop() {
                        break;
                    }
                }
                status
            }
            (Some(policy), None) if engine.row_checkpoints() => {
                // Between batches no row owner is active, so a snapshot of
                // the published rows is a consistent checkpoint.
                let sink = CheckpointSink::new(&policy.path);
                let mut status = CancelStatus::Continue;
                for chunk in plan.units.chunks(policy.every) {
                    status = engine.run_rows(graph, chunk, &ctx);
                    sink.flush(&engine.snapshot());
                    if status.is_stop() {
                        break;
                    }
                }
                status
            }
            _ => engine.run_rows(graph, &plan.units, &ctx),
        };
        if let Some((ledger, _)) = ledger_state {
            ledger
                .finish()
                .unwrap_or_else(|err| panic!("run ledger: {err}"));
        }
        let sssp = t_sssp.elapsed();

        if status.is_stop() {
            // The cancellable loop has drained: no unit is mid-flight, so
            // the published rows form a consistent partial result. The
            // engine is consumed so row engines can move their store into
            // the checkpoint instead of cloning the whole matrix — the
            // ledger branch above has already appended the stopping
            // chunk's completed rows, so nothing else reads the engine.
            return RunOutcome::from_stop(status, engine.into_snapshot());
        }

        let label = match &self.config.label {
            Some(label) => label.clone(),
            None => engine.name().to_owned(),
        };
        let summary = RunSummary {
            timings: PhaseTimings {
                ordering: plan.ordering,
                sssp,
                total: start.elapsed(),
            },
            threads: pool.num_threads(),
            label,
        };
        RunOutcome::Complete(engine.finish(graph, summary))
    }
}

// ---------------------------------------------------------------------------
// ApspEngine — the shared-memory parallel row engine
// ---------------------------------------------------------------------------

/// The shared-memory parallel APSP engine: the modified Dijkstra from
/// every source, sources as independent tasks over the configured
/// ordering and schedule, rows shared through the Release/Acquire
/// publication protocol.
///
/// Pair with the `RunConfig::par_*` constructors to reproduce the paper's
/// drivers (ParAlg1, ParAlg2, ParBuckets, ParMax, ParAPSP).
#[derive(Default)]
pub struct ApspEngine {
    store: Option<Store>,
    locals: Option<PerThread<(Workspace, Counters, Duration)>>,
    solver: Option<RowSolver>,
}

impl ApspEngine {
    /// A fresh engine; all behaviour comes from the [`RunConfig`].
    pub fn new() -> Self {
        ApspEngine::default()
    }
}

impl Engine for ApspEngine {
    type Output = ApspOutput;

    fn name(&self) -> &str {
        "ParApsp"
    }

    fn prepare(
        &mut self,
        graph: &CsrGraph,
        config: &RunConfig,
        pool: &ThreadPool,
        resume: Option<Checkpoint>,
    ) -> Plan {
        let n = graph.vertex_count();
        let degrees = degree::out_degrees(graph);
        let t_order = Instant::now();
        let order = config.ordering().compute(&degrees, pool);
        let ordering = t_order.elapsed();
        debug_assert_eq!(order.len(), n);

        // A resumed run pre-publishes the checkpoint's completed rows and
        // sweeps only the rest, in the same order a fresh run would visit
        // them.
        let (store, units) = match resume {
            Some(checkpoint) => {
                let (dist, completed) = checkpoint.into_parts();
                let units: Vec<u32> = order
                    .iter()
                    .copied()
                    .filter(|&s| !completed[s as usize])
                    .collect();
                (Store::from_parts(dist, &completed, config.store()), units)
            }
            None => (Store::new(n, config.store()), order),
        };
        self.store = Some(store);
        self.locals = Some(PerThread::from_fn(pool.num_threads(), |_| {
            (Workspace::new(n), Counters::default(), Duration::ZERO)
        }));
        self.solver = Some(RowSolver::resolve(graph, config.kernel()));
        Plan { units, ordering }
    }

    fn run_rows(&mut self, graph: &CsrGraph, units: &[u32], ctx: &RowsCtx<'_>) -> RowsOutcome {
        let store = self.store.as_ref().expect("prepare() not called");
        let locals = self.locals.as_ref().expect("prepare() not called");
        let solver = self.solver.as_ref().expect("prepare() not called");
        let kernel = ctx.config.kernel();
        let trace = ctx.trace;
        let body = |tid: usize, k: usize| {
            let s = units[k];
            // SAFETY: each pool thread touches only its own scratch slot.
            let (ws, counters, busy) = unsafe { locals.get_mut(tid) };
            let t0 = Instant::now();
            // `units` is drawn from a permutation, so source `s` belongs to
            // exactly this iteration — satisfying the unique-row-owner
            // contract of the solvers (and of `Store::try_row_mut`).
            solver.solve_row(graph, s, store, ws, kernel, counters, None);
            let elapsed = t0.elapsed();
            *busy += elapsed;
            if let Some(view) = trace {
                // SAFETY: as above, the trace slot of `s` belongs
                // exclusively to this iteration.
                unsafe { view.write(s as usize, elapsed.as_nanos() as u64) };
            }
        };
        match ctx.token {
            Some(token) => {
                ctx.pool
                    .parallel_for_cancellable(units.len(), ctx.config.schedule(), token, body)
            }
            None => {
                ctx.pool
                    .parallel_for(units.len(), ctx.config.schedule(), body);
                CancelStatus::Continue
            }
        }
    }

    fn snapshot(&self) -> Checkpoint {
        let (dist, completed) = self
            .store
            .as_ref()
            .expect("prepare() not called")
            .snapshot();
        Checkpoint::new(dist, completed)
    }

    fn into_snapshot(self) -> Checkpoint {
        // Moves the store into the checkpoint — zero-copy for the dense
        // backend — instead of the default's full snapshot clone.
        let (dist, completed) = self.store.expect("prepare() not called").into_parts();
        Checkpoint::new(dist, completed)
    }

    fn visit_rows(&self, units: &[u32], visit: &mut dyn FnMut(u32, &[u32])) {
        // Units are source vertices; a published row is final.
        let store = self.store.as_ref().expect("prepare() not called");
        for &s in units {
            store.with_row(s, |row| visit(s, row));
        }
    }

    fn finish(self, _graph: &CsrGraph, summary: RunSummary) -> ApspOutput {
        let store = self.store.expect("prepare() not called");
        debug_assert_eq!(store.published_count(), store.n());
        let mut counters = Counters::default();
        let mut thread_busy = Vec::with_capacity(summary.threads);
        for (_, c, busy) in self.locals.expect("prepare() not called").into_inner() {
            counters.merge(&c);
            thread_busy.push(busy);
        }
        // The pinned high-water mark lives in the store's cache, not in
        // any per-thread counter; fold it in before the store is consumed.
        counters.pinned_bytes_peak = counters.pinned_bytes_peak.max(store.pinned_bytes_peak());
        ApspOutput {
            dist: store.into_matrix(),
            timings: summary.timings,
            counters,
            threads: summary.threads,
            algorithm: summary.label,
            thread_busy,
        }
    }
}

// ---------------------------------------------------------------------------
// SeqEngine — Peng's sequential family, collapsed
// ---------------------------------------------------------------------------

/// How a [`SeqEngine`] picks its next source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqMode {
    /// Follow the [`RunConfig`]'s ordering procedure (basic = identity,
    /// optimized = selection sort, bucket = exact counting sort).
    Ordered,
    /// Peng's adaptive variant: after each SSSP run, vertices that relayed
    /// shortest paths accumulate *intermediate credit*; the next source is
    /// the unprocessed vertex maximizing `credit * credit_weight + degree`.
    Adaptive {
        /// Weight of accumulated credit against raw degree (0 degenerates
        /// to the plain optimized algorithm).
        credit_weight: u64,
    },
}

/// The sequential engine: the whole `seq_*` family in one implementation,
/// configured by [`SeqMode`] plus the [`RunConfig`] ordering. Always runs
/// single-threaded (it ignores the pool for the sweep) and polls the
/// cancel token before every source, so a poll budget of `K` completes
/// exactly `K` rows.
pub struct SeqEngine {
    mode: SeqMode,
    store: Option<Store>,
    ws: Option<Workspace>,
    solver: Option<RowSolver>,
    counters: Counters,
    busy: Duration,
    /// Adaptive state: out-degrees, accumulated credit, processed flags.
    degrees: Vec<u32>,
    credit: Vec<u64>,
    done: Vec<bool>,
}

impl SeqEngine {
    /// An engine following the config's ordering procedure.
    pub fn ordered() -> Self {
        SeqEngine {
            mode: SeqMode::Ordered,
            store: None,
            ws: None,
            solver: None,
            counters: Counters::default(),
            busy: Duration::ZERO,
            degrees: Vec::new(),
            credit: Vec::new(),
            done: Vec::new(),
        }
    }

    /// Peng's adaptive variant with the given credit weight.
    pub fn adaptive(credit_weight: u64) -> Self {
        SeqEngine {
            mode: SeqMode::Adaptive { credit_weight },
            ..SeqEngine::ordered()
        }
    }

    /// The engine's source-selection mode.
    pub fn mode(&self) -> SeqMode {
        self.mode
    }
}

impl Engine for SeqEngine {
    type Output = ApspOutput;

    fn name(&self) -> &str {
        match self.mode {
            SeqMode::Ordered => "SeqEngine",
            SeqMode::Adaptive { .. } => "SeqAdaptive",
        }
    }

    fn prepare(
        &mut self,
        graph: &CsrGraph,
        config: &RunConfig,
        pool: &ThreadPool,
        resume: Option<Checkpoint>,
    ) -> Plan {
        let n = graph.vertex_count();
        let degrees = degree::out_degrees(graph);
        let t_order = Instant::now();
        let order = match self.mode {
            SeqMode::Ordered => config.ordering().compute(&degrees, pool),
            // Adaptive picks sources at run time; the plan only fixes how
            // many remain.
            SeqMode::Adaptive { .. } => (0..n as u32).collect(),
        };
        let ordering = t_order.elapsed();
        let (store, units, done) = match resume {
            Some(checkpoint) => {
                let (dist, completed) = checkpoint.into_parts();
                let units: Vec<u32> = order
                    .iter()
                    .copied()
                    .filter(|&s| !completed[s as usize])
                    .collect();
                (
                    Store::from_parts(dist, &completed, config.store()),
                    units,
                    completed,
                )
            }
            None => (Store::new(n, config.store()), order, vec![false; n]),
        };
        self.store = Some(store);
        self.ws = Some(Workspace::new(n));
        self.solver = Some(RowSolver::resolve(graph, config.kernel()));
        self.degrees = degrees;
        self.credit = vec![0; n];
        self.done = done;
        Plan { units, ordering }
    }

    fn run_rows(&mut self, graph: &CsrGraph, units: &[u32], ctx: &RowsCtx<'_>) -> RowsOutcome {
        let SeqEngine {
            mode,
            store,
            ws,
            solver,
            counters,
            busy,
            degrees,
            credit,
            done,
        } = self;
        let mode = *mode;
        let store = store.as_ref().expect("prepare() not called");
        let ws = ws.as_mut().expect("prepare() not called");
        let solver = solver.as_ref().expect("prepare() not called");
        let kernel = ctx.config.kernel();
        for &unit in units {
            if let Some(token) = ctx.token {
                let status = token.poll();
                if status.is_stop() {
                    return status;
                }
            }
            let (s, feedback) = match mode {
                SeqMode::Ordered => (unit, None),
                SeqMode::Adaptive { credit_weight } => {
                    // Argmax over unprocessed vertices; O(n) per pick,
                    // dwarfed by the SSSP work it orders.
                    let mut best: Option<(u64, u32)> = None;
                    for v in 0..store.n() as u32 {
                        if done[v as usize] {
                            continue;
                        }
                        let score = credit[v as usize]
                            .saturating_mul(credit_weight)
                            .saturating_add(degrees[v as usize] as u64);
                        if best.map(|(b, _)| score > b).unwrap_or(true) {
                            best = Some((score, v));
                        }
                    }
                    let (_, s) = best.expect("unprocessed vertex must exist");
                    done[s as usize] = true;
                    (s, Some(&mut credit[..]))
                }
            };
            let t0 = Instant::now();
            solver.solve_row(graph, s, store, ws, kernel, counters, feedback);
            let elapsed = t0.elapsed();
            *busy += elapsed;
            if let Some(view) = ctx.trace {
                // SAFETY: this engine is single-threaded and `s` is
                // processed exactly once.
                unsafe { view.write(s as usize, elapsed.as_nanos() as u64) };
            }
        }
        CancelStatus::Continue
    }

    fn snapshot(&self) -> Checkpoint {
        let (dist, completed) = self
            .store
            .as_ref()
            .expect("prepare() not called")
            .snapshot();
        Checkpoint::new(dist, completed)
    }

    fn into_snapshot(self) -> Checkpoint {
        let (dist, completed) = self.store.expect("prepare() not called").into_parts();
        Checkpoint::new(dist, completed)
    }

    fn visit_rows(&self, units: &[u32], visit: &mut dyn FnMut(u32, &[u32])) {
        let store = self.store.as_ref().expect("prepare() not called");
        match self.mode {
            // Ordered units are source vertices.
            SeqMode::Ordered => {
                for &s in units {
                    store.with_row(s, |row| visit(s, row));
                }
            }
            // Adaptive units are opaque step counters; the sources picked
            // this batch are whatever is newly marked done. Scanning all
            // of `done` is O(n) per batch and the `Runner` deduplicates.
            SeqMode::Adaptive { .. } => {
                for s in 0..store.n() as u32 {
                    if self.done[s as usize] {
                        store.with_row(s, |row| visit(s, row));
                    }
                }
            }
        }
    }

    fn finish(self, _graph: &CsrGraph, summary: RunSummary) -> ApspOutput {
        let store = self.store.expect("prepare() not called");
        debug_assert_eq!(store.published_count(), store.n());
        let mut counters = self.counters;
        counters.pinned_bytes_peak = counters.pinned_bytes_peak.max(store.pinned_bytes_peak());
        ApspOutput {
            dist: store.into_matrix(),
            timings: summary.timings,
            counters,
            threads: 1,
            algorithm: summary.label,
            thread_busy: vec![self.busy],
        }
    }
}

// ---------------------------------------------------------------------------
// StoreApspEngine — ApspEngine, keeping the store alive
// ---------------------------------------------------------------------------

/// [`ApspEngine`] whose [`Engine::finish`] hands back the live [`Store`]
/// instead of collapsing it into a dense [`DistanceMatrix`]
/// (which would momentarily materialize the full O(n²) matrix and defeat
/// an out-of-core run). The `store_scaling` bench and the bounded-memory
/// smoke use this to measure per-backend residency; regular callers want
/// [`ApspEngine`].
///
/// [`DistanceMatrix`]: crate::DistanceMatrix
#[derive(Default)]
pub struct StoreApspEngine {
    inner: ApspEngine,
}

impl StoreApspEngine {
    /// A fresh engine; all behaviour comes from the [`RunConfig`].
    pub fn new() -> Self {
        StoreApspEngine::default()
    }
}

/// What a completed [`StoreApspEngine`] run yields: the store still in its
/// configured backend, plus the usual run report fields.
pub struct StoreRunOutput {
    /// The completed distance matrix, resident in the selected backend.
    pub store: Store,
    /// Ordering / sweep / total phase wall times.
    pub timings: PhaseTimings,
    /// Merged kernel counters.
    pub counters: Counters,
    /// Worker threads the run used.
    pub threads: usize,
    /// Report label.
    pub algorithm: String,
}

impl Engine for StoreApspEngine {
    type Output = StoreRunOutput;

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn prepare(
        &mut self,
        graph: &CsrGraph,
        config: &RunConfig,
        pool: &ThreadPool,
        resume: Option<Checkpoint>,
    ) -> Plan {
        self.inner.prepare(graph, config, pool, resume)
    }

    fn run_rows(&mut self, graph: &CsrGraph, units: &[u32], ctx: &RowsCtx<'_>) -> RowsOutcome {
        self.inner.run_rows(graph, units, ctx)
    }

    fn snapshot(&self) -> Checkpoint {
        self.inner.snapshot()
    }

    fn into_snapshot(self) -> Checkpoint {
        self.inner.into_snapshot()
    }

    fn visit_rows(&self, units: &[u32], visit: &mut dyn FnMut(u32, &[u32])) {
        self.inner.visit_rows(units, visit);
    }

    fn finish(self, _graph: &CsrGraph, summary: RunSummary) -> StoreRunOutput {
        let store = self.inner.store.expect("prepare() not called");
        debug_assert_eq!(store.published_count(), store.n());
        let mut counters = Counters::default();
        for (_, c, _) in self
            .inner
            .locals
            .expect("prepare() not called")
            .into_inner()
        {
            counters.merge(&c);
        }
        counters.pinned_bytes_peak = counters.pinned_bytes_peak.max(store.pinned_bytes_peak());
        StoreRunOutput {
            store,
            timings: summary.timings,
            counters,
            threads: summary.threads,
            algorithm: summary.label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_graph::generate::{barabasi_albert, WeightSpec};

    /// Reference solve: Alg. 2 driven through the Runner.
    fn seq_basic(graph: &CsrGraph) -> ApspOutput {
        Runner::new(RunConfig::seq_basic()).run(SeqEngine::ordered(), graph)
    }

    #[test]
    fn value_enum_parses_and_rejects_with_full_listing() {
        assert_eq!(
            EngineKind::parse_value("par-apsp").unwrap(),
            EngineKind::ParApsp
        );
        assert_eq!(
            EngineKind::parse_value("blocked-fw").unwrap(),
            EngineKind::BlockedFw
        );
        let err = EngineKind::parse_value("par-warp").unwrap_err();
        assert!(err.contains("par-warp"));
        assert!(err.contains("par-apsp"));
        assert!(err.contains("dist"));

        assert_eq!(RelaxImpl::parse_value("avx2").unwrap(), RelaxImpl::Avx2);
        let err = RelaxImpl::parse_value("sse9").unwrap_err();
        assert!(err.contains("scalar") && err.contains("auto"));
        // The trait names agree with the pre-existing inherent names.
        for relax in RelaxImpl::ALL {
            assert_eq!(relax.value_name(), relax.name());
            assert_eq!(RelaxImpl::parse_value(relax.name()).unwrap(), relax);
        }
        // Round trip for every engine kind.
        for kind in EngineKind::value_variants() {
            assert_eq!(EngineKind::parse_value(kind.value_name()).unwrap(), *kind);
        }
    }

    #[test]
    fn engine_kind_capability_tables_are_consistent() {
        for kind in EngineKind::value_variants() {
            // Anything resumable must also be cancellable (resume exists to
            // continue interrupted runs).
            if kind.row_checkpoints() {
                assert!(kind.cancellable(), "{}", kind.value_name());
            }
        }
        assert!(!EngineKind::FloydWarshall.cancellable());
        assert!(EngineKind::BlockedFw.cancellable());
        assert!(!EngineKind::BlockedFw.row_checkpoints());
        assert!(EngineKind::SeqBasic.row_checkpoints());
        // Schedule-honouring engines are exactly the Runner-driven
        // parallel sweeps, which must also run the kernel.
        for kind in EngineKind::value_variants() {
            if kind.honours_schedule() {
                assert!(kind.uses_kernel(), "{}", kind.value_name());
            }
        }
        assert!(EngineKind::ParApsp.honours_schedule());
        assert!(EngineKind::ParAlg1.honours_schedule());
        assert!(!EngineKind::SeqBasic.honours_schedule());
        assert!(!EngineKind::BlockedFw.honours_schedule());
    }

    #[test]
    fn runner_drives_apsp_and_seq_engines_to_identical_matrices() {
        let g = barabasi_albert(180, 3, WeightSpec::Uniform { lo: 1, hi: 9 }, 7).unwrap();
        let reference = seq_basic(&g);
        let par = Runner::new(RunConfig::par_apsp(4)).run(ApspEngine::new(), &g);
        assert_eq!(reference.dist.first_difference(&par.dist), None);
        assert_eq!(par.algorithm, "ParAPSP");
        assert_eq!(par.threads, 4);
        let seq = Runner::new(RunConfig::seq_optimized(1.0)).run(SeqEngine::ordered(), &g);
        assert_eq!(reference.dist.first_difference(&seq.dist), None);
        assert_eq!(seq.algorithm, "SeqOptimized");
        assert_eq!(seq.threads, 1);
        let adaptive = Runner::new(RunConfig::seq_adaptive(10)).run(SeqEngine::adaptive(10), &g);
        assert_eq!(reference.dist.first_difference(&adaptive.dist), None);
        assert_eq!(adaptive.algorithm, "SeqAdaptive(w=10)");
    }

    #[test]
    fn adaptive_engine_supports_cancel_and_resume() {
        let g = barabasi_albert(120, 3, WeightSpec::Uniform { lo: 1, hi: 5 }, 13).unwrap();
        let full = Runner::new(RunConfig::seq_adaptive(10)).run(SeqEngine::adaptive(10), &g);
        let token = CancelToken::with_poll_budget(35);
        let outcome = Runner::new(RunConfig::seq_adaptive(10)).run_with_token(
            SeqEngine::adaptive(10),
            &g,
            &token,
        );
        let cp = outcome.into_checkpoint().expect("35 < 120 sources");
        assert_eq!(cp.completed_count(), 35);
        let resumed =
            Runner::new(RunConfig::seq_adaptive(10)).run_resumed(SeqEngine::adaptive(10), &g, cp);
        assert_eq!(full.dist.first_difference(&resumed.dist), None);
    }

    /// Satellite: `--checkpoint-every` boundaries must produce identical
    /// version-2 files across engines. With one thread, identity order,
    /// and a poll budget of `BUDGET`, every row engine completes exactly
    /// rows `0..BUDGET` — and since published rows are exact, the final
    /// flushed checkpoint must be byte-identical across par, seq, and
    /// subset.
    #[test]
    fn checkpoint_every_boundaries_produce_identical_v2_files_across_engines() {
        const BUDGET: u64 = 20;
        const EVERY: usize = 8; // not a divisor of BUDGET: exercises a mid-chunk stop
        let dir = std::env::temp_dir().join("parapsp-engine-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let g = barabasi_albert(90, 3, WeightSpec::Uniform { lo: 1, hi: 9 }, 5).unwrap();

        let mut files: Vec<(String, Vec<u8>)> = Vec::new();
        let mut record = |name: &str, run: &mut dyn FnMut(&std::path::Path, &CancelToken)| {
            let path = dir.join(format!("{name}.ckpt"));
            let token = CancelToken::with_poll_budget(BUDGET);
            run(&path, &token);
            let bytes = std::fs::read(&path).unwrap();
            std::fs::remove_file(&path).ok();
            files.push((name.to_owned(), bytes));
        };

        record("par", &mut |path, token| {
            let config = RunConfig::par_apsp(1)
                .with_ordering(OrderingProcedure::Identity)
                .with_checkpoint(path, EVERY);
            let outcome = Runner::new(config).run_with_token(ApspEngine::new(), &g, token);
            assert!(!outcome.is_complete());
        });
        record("seq", &mut |path, token| {
            let config = RunConfig::seq_basic().with_checkpoint(path, EVERY);
            let outcome = Runner::new(config).run_with_token(SeqEngine::ordered(), &g, token);
            assert!(!outcome.is_complete());
        });
        record("subset", &mut |path, token| {
            let sources: Vec<u32> = (0..90).collect();
            let config = RunConfig::subset(1)
                .with_ordering(OrderingProcedure::Identity)
                .with_checkpoint(path, EVERY);
            let outcome = Runner::new(config).run_with_token(SubsetEngine::new(sources), &g, token);
            assert!(!outcome.is_complete());
        });

        let (first_name, first) = &files[0];
        for (name, bytes) in &files[1..] {
            assert_eq!(bytes, first, "{name} vs {first_name}");
        }
        // The shared file holds exactly the budgeted rows.
        let cp = persist::read_checkpoint(first.as_slice()).unwrap();
        assert_eq!(cp.completed_count() as u64, BUDGET);
        assert!(cp.completed()[..BUDGET as usize].iter().all(|&done| done));

        // Blocked FW is not a row-checkpointing engine: a run with a
        // checkpoint policy must not write periodic files, and its stop
        // checkpoint has zero completed rows by design.
        let fw_path = dir.join("fw.ckpt");
        let config = RunConfig::new(2).with_checkpoint(&fw_path, EVERY);
        let out = Runner::new(config.clone()).run(BlockedFwEngine::new(32), &g);
        assert_eq!(out.n(), 90);
        assert!(
            !fw_path.exists(),
            "non-row engine must skip periodic writes"
        );
        let token = CancelToken::with_poll_budget(1);
        let stopped = Runner::new(config).run_with_token(BlockedFwEngine::new(32), &g, &token);
        assert_eq!(stopped.checkpoint().unwrap().completed_count(), 0);
    }

    /// Tentpole: the run ledger is an O(row) drop-in for the O(n²)
    /// checkpoint rewrite — a cancelled ledger run resumes from its own
    /// ledger (no separate `--resume` artifact needed) and lands on the
    /// bit-identical final matrix, having recomputed only the missing rows.
    #[test]
    fn ledger_runs_resume_from_their_own_file_bit_identically() {
        const BUDGET: u64 = 20;
        const EVERY: usize = 8;
        let dir = std::env::temp_dir().join("parapsp-engine-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let g = barabasi_albert(90, 3, WeightSpec::Uniform { lo: 1, hi: 9 }, 5).unwrap();
        let reference = seq_basic(&g);

        for (name, fsync) in [
            ("always", FsyncPolicy::Always),
            ("commit", FsyncPolicy::Commit),
            ("never", FsyncPolicy::Never),
        ] {
            let path = dir.join(format!("run-{name}.ledger"));
            std::fs::remove_file(&path).ok();
            let config = RunConfig::par_apsp(2)
                .with_ordering(OrderingProcedure::Identity)
                .with_threads(1)
                .with_ledger(&path, EVERY)
                .with_fsync(fsync);
            let token = CancelToken::with_poll_budget(BUDGET);
            let outcome = Runner::new(config.clone()).run_with_token(ApspEngine::new(), &g, &token);
            assert!(!outcome.is_complete());
            // The interrupted ledger replays to exactly the budgeted rows.
            let cp = persist::load_checkpoint(&path).unwrap();
            assert_eq!(cp.completed_count() as u64, BUDGET, "{name}");

            // Re-running against the same ledger resumes implicitly.
            let resumed = Runner::new(config).run(ApspEngine::new(), &g);
            assert_eq!(
                reference.dist.first_difference(&resumed.dist),
                None,
                "{name}"
            );
            let cp = persist::load_checkpoint(&path).unwrap();
            assert!(cp.is_complete(), "{name}");
            assert_eq!(
                cp.matrix().first_difference(&reference.dist),
                None,
                "{name}"
            );
            std::fs::remove_file(&path).ok();
        }
    }

    /// A `--resume` checkpoint and a recovered ledger merge: rows known
    /// only to the checkpoint are backfilled into the ledger, rows known
    /// only to the ledger join the resume state.
    #[test]
    fn ledger_merges_with_an_explicit_resume_checkpoint() {
        let dir = std::env::temp_dir().join("parapsp-engine-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let g = barabasi_albert(70, 3, WeightSpec::Uniform { lo: 1, hi: 9 }, 3).unwrap();
        let reference = seq_basic(&g);

        // A checkpoint knowing rows 0..25 ...
        let resume_cp = {
            let mut completed = vec![false; 70];
            for (s, done) in completed.iter_mut().enumerate().take(25) {
                let _ = s;
                *done = true;
            }
            Checkpoint::new(reference.dist.clone(), completed)
        };
        // ... and a ledger knowing rows 20..40.
        let path = dir.join("merge.ledger");
        std::fs::remove_file(&path).ok();
        let mut ledger = RowLedger::create(&path, 70, FsyncPolicy::Never).unwrap();
        for s in 20..40u32 {
            ledger.append(s, reference.dist.row(s)).unwrap();
        }
        ledger.finish().unwrap();

        let config = RunConfig::seq_basic().with_ledger(&path, 16);
        let out = Runner::new(config).run_resumed(SeqEngine::ordered(), &g, resume_cp);
        assert_eq!(reference.dist.first_difference(&out.dist), None);
        // The finished ledger replays complete — including the backfilled
        // checkpoint-only rows 0..20.
        let cp = persist::load_checkpoint(&path).unwrap();
        assert!(cp.is_complete());
        std::fs::remove_file(&path).ok();
    }

    /// Every row-checkpointing engine — including the adaptive sequential
    /// engine, whose work units are opaque counters, and the subset engine,
    /// whose units are slot indices — produces a complete, exact ledger.
    #[test]
    fn all_row_engines_fill_a_ledger_completely() {
        let dir = std::env::temp_dir().join("parapsp-engine-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let g = barabasi_albert(60, 3, WeightSpec::Uniform { lo: 1, hi: 9 }, 9).unwrap();
        let reference = seq_basic(&g);

        let run = |name: &str, run: &mut dyn FnMut(&std::path::Path)| {
            let path = dir.join(format!("engine-{name}.ledger"));
            std::fs::remove_file(&path).ok();
            run(&path);
            let cp = persist::load_checkpoint(&path).unwrap();
            assert!(cp.is_complete(), "{name}");
            assert_eq!(
                cp.matrix().first_difference(&reference.dist),
                None,
                "{name}"
            );
            std::fs::remove_file(&path).ok();
        };
        run("par", &mut |path| {
            let config = RunConfig::par_apsp(4).with_ledger(path, 8);
            Runner::new(config).run(ApspEngine::new(), &g);
        });
        run("adaptive", &mut |path| {
            let config = RunConfig::seq_adaptive(10).with_ledger(path, 8);
            Runner::new(config).run(SeqEngine::adaptive(10), &g);
        });
        run("subset", &mut |path| {
            let sources: Vec<u32> = (0..60).collect();
            let config = RunConfig::subset(2).with_ledger(path, 8);
            Runner::new(config).run(SubsetEngine::new(sources), &g);
        });
    }

    #[test]
    fn checkpoint_sink_reports_its_path_and_flushes() {
        let dir = std::env::temp_dir().join("parapsp-engine-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sink.ckpt");
        let sink = CheckpointSink::new(&path);
        assert_eq!(sink.path(), path.as_path());
        let cp = Checkpoint::new(crate::DistanceMatrix::new_infinite(3), vec![false; 3]);
        sink.flush(&cp);
        assert_eq!(persist::load_checkpoint(&path).unwrap(), cp);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn config_accessors_round_trip() {
        let config = RunConfig::par_alg2(3)
            .with_threads(5)
            .with_max_distance(9)
            .with_relax(RelaxImpl::Portable)
            .with_label("custom");
        assert_eq!(config.threads(), 5);
        assert_eq!(config.ordering(), OrderingProcedure::selection());
        assert_eq!(config.kernel().max_distance, Some(9));
        assert_eq!(config.kernel().relax, RelaxImpl::Portable);
        assert_eq!(config.label(), Some("custom"));
        assert!(config.checkpoint().is_none());
    }
}
