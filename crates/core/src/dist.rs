//! The dense all-pairs distance matrix result type.
//!
//! APSP output is inherently O(n²); the paper notes this is what limits
//! dataset sizes on shared-memory machines (its sx-superuser run needs
//! 160 GB). The matrix is stored row-major so that row reuse in the
//! modified Dijkstra kernel is a sequential scan.

use parapsp_graph::INF;

/// A row-major `n × n` matrix of shortest-path distances.
///
/// `dist.get(u, v)` is the weight of the shortest `u → v` path, or
/// [`INF`] when `v` is unreachable from `u`. `get(v, v)` is always 0 for
/// any vertex that was used as a source.
#[derive(Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    data: Box<[u32]>,
}

impl DistanceMatrix {
    /// Creates an `n × n` matrix filled with [`INF`].
    pub fn new_infinite(n: usize) -> Self {
        DistanceMatrix {
            n,
            data: vec![INF; n.checked_mul(n).expect("matrix size overflow")].into_boxed_slice(),
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != n * n`.
    pub fn from_raw(n: usize, data: Box<[u32]>) -> Self {
        assert_eq!(data.len(), n * n, "distance buffer has the wrong length");
        DistanceMatrix { n, data }
    }

    /// Consumes the matrix, yielding its row-major buffer (the inverse of
    /// [`DistanceMatrix::from_raw`]).
    pub fn into_raw(self) -> Box<[u32]> {
        self.data
    }

    /// Number of vertices (the matrix is `n × n`).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance from `u` to `v`.
    #[inline]
    pub fn get(&self, u: u32, v: u32) -> u32 {
        self.data[u as usize * self.n + v as usize]
    }

    /// The full distance row of source `u`.
    #[inline]
    pub fn row(&self, u: u32) -> &[u32] {
        let start = u as usize * self.n;
        &self.data[start..start + self.n]
    }

    /// Mutable row access for algorithm internals.
    #[inline]
    pub(crate) fn row_mut(&mut self, u: u32) -> &mut [u32] {
        let start = u as usize * self.n;
        &mut self.data[start..start + self.n]
    }

    /// Mutable access to the whole row-major buffer (algorithm internals:
    /// tiled and incremental updaters).
    #[inline]
    pub(crate) fn raw_mut(&mut self) -> &mut [u32] {
        &mut self.data
    }

    /// Overwrites row `u` with `row` — used by gather-style assemblers
    /// (e.g. the distributed-memory driver) that receive rows one by one.
    ///
    /// # Panics
    ///
    /// Panics when `row.len() != n`.
    pub fn copy_row_from(&mut self, u: u32, row: &[u32]) {
        self.row_mut(u).copy_from_slice(row);
    }

    /// Iterates over `(source, row)` pairs.
    pub fn rows(&self) -> impl Iterator<Item = (u32, &[u32])> {
        (0..self.n as u32).map(move |u| (u, self.row(u)))
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.data
    }

    /// True when `d(u, v) == d(v, u)` for all pairs — a structural
    /// invariant of APSP on undirected graphs that the tests exploit.
    pub fn is_symmetric(&self) -> bool {
        (0..self.n).all(|u| {
            (u + 1..self.n).all(|v| self.data[u * self.n + v] == self.data[v * self.n + u])
        })
    }

    /// Number of ordered pairs `(u, v)`, `u != v`, with a finite distance.
    pub fn reachable_pairs(&self) -> usize {
        let mut count = 0;
        for u in 0..self.n {
            for v in 0..self.n {
                if u != v && self.data[u * self.n + v] != INF {
                    count += 1;
                }
            }
        }
        count
    }

    /// Returns the first coordinate where two matrices differ, for test
    /// diagnostics.
    pub fn first_difference(&self, other: &DistanceMatrix) -> Option<(u32, u32, u32, u32)> {
        if self.n != other.n {
            return Some((u32::MAX, u32::MAX, self.n as u32, other.n as u32));
        }
        for u in 0..self.n {
            for v in 0..self.n {
                let a = self.data[u * self.n + v];
                let b = other.data[u * self.n + v];
                if a != b {
                    return Some((u as u32, v as u32, a, b));
                }
            }
        }
        None
    }
}

impl std::fmt::Debug for DistanceMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "DistanceMatrix({} × {})", self.n, self.n)?;
        let shown = self.n.min(8);
        for u in 0..shown {
            write!(f, "  [")?;
            for v in 0..shown {
                let d = self.data[u * self.n + v];
                if d == INF {
                    write!(f, "  ∞")?;
                } else {
                    write!(f, "{d:3}")?;
                }
            }
            writeln!(f, "{}]", if self.n > shown { " …" } else { "" })?;
        }
        if self.n > shown {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_matrix_is_all_infinite() {
        let m = DistanceMatrix::new_infinite(4);
        assert_eq!(m.n(), 4);
        assert!(m.as_slice().iter().all(|&d| d == INF));
        assert_eq!(m.reachable_pairs(), 0);
    }

    #[test]
    fn get_row_and_mutation() {
        let mut m = DistanceMatrix::new_infinite(3);
        m.row_mut(1)[2] = 7;
        assert_eq!(m.get(1, 2), 7);
        assert_eq!(m.row(1), &[INF, INF, 7]);
        assert_eq!(m.rows().count(), 3);
    }

    #[test]
    fn symmetry_detection() {
        let mut m = DistanceMatrix::new_infinite(2);
        assert!(m.is_symmetric());
        m.row_mut(0)[1] = 3;
        assert!(!m.is_symmetric());
        m.row_mut(1)[0] = 3;
        assert!(m.is_symmetric());
    }

    #[test]
    fn first_difference_pinpoints_mismatch() {
        let mut a = DistanceMatrix::new_infinite(3);
        let mut b = DistanceMatrix::new_infinite(3);
        a.row_mut(2)[0] = 5;
        b.row_mut(2)[0] = 6;
        assert_eq!(a.first_difference(&b), Some((2, 0, 5, 6)));
        b.row_mut(2)[0] = 5;
        assert_eq!(a.first_difference(&b), None);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn from_raw_validates_length() {
        let _ = DistanceMatrix::from_raw(2, vec![0u32; 3].into_boxed_slice());
    }

    #[test]
    fn zero_size_matrix() {
        let m = DistanceMatrix::new_infinite(0);
        assert_eq!(m.n(), 0);
        assert_eq!(m.rows().count(), 0);
        assert!(m.is_symmetric());
    }

    #[test]
    fn debug_output_truncates() {
        let m = DistanceMatrix::new_infinite(20);
        let s = format!("{m:?}");
        assert!(s.contains("20 × 20"));
        assert!(s.contains('…'));
    }
}
