//! Phase timings and work counters reported by every APSP run.
//!
//! The paper's evaluation separates *ordering time* (Table 1, Figs. 4 and
//! 6) from *Dijkstra-part time* (Fig. 5) from *overall elapsed time*
//! (Figs. 7, 8, 10a); [`PhaseTimings`] carries exactly that split. The
//! [`Counters`] quantify the dynamic-programming reuse that the paper
//! credits for its hyper-linear speedups (§5.4).

use std::time::Duration;

use crate::dist::DistanceMatrix;

/// Work counters accumulated across all SSSP runs of one APSP execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Successful distance improvements (edge and row relaxations).
    pub relaxations: u64,
    /// Queue pop operations across all modified-Dijkstra runs.
    pub queue_pops: u64,
    /// Times a dequeued vertex's published row was consumed whole
    /// (Alg. 1 lines 6–11) — the dynamic-programming shortcut. Always
    /// `lease_hits + lease_misses`.
    pub row_reuses: u64,
    /// Row leases served without paying a decode: dense/reference-row
    /// lends, hot-cache hits, and decode-ahead hits.
    pub lease_hits: u64,
    /// Row leases that decoded (or `pread`) the row on demand.
    pub lease_misses: u64,
    /// Lease hits served from a row the decode-ahead worker populated —
    /// the subset of `lease_hits` that exists because of
    /// `Store::prefetch_row` (always 0 on the dense backend).
    pub decode_ahead_hits: u64,
    /// High-water mark of hot-cache bytes pinned by live leases
    /// (merged by `max`, not sum; 0 on the dense backend).
    pub pinned_bytes_peak: u64,
    /// Completed SSSP runs (should equal the vertex count).
    pub sources: u64,
}

impl Counters {
    /// Element-wise sum (peak fields merge by `max`), used to merge
    /// per-thread counters.
    pub fn merge(&mut self, other: &Counters) {
        self.relaxations += other.relaxations;
        self.queue_pops += other.queue_pops;
        self.row_reuses += other.row_reuses;
        self.lease_hits += other.lease_hits;
        self.lease_misses += other.lease_misses;
        self.decode_ahead_hits += other.decode_ahead_hits;
        self.pinned_bytes_peak = self.pinned_bytes_peak.max(other.pinned_bytes_peak);
        self.sources += other.sources;
    }
}

/// Wall-clock decomposition of one APSP run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Time spent computing the source visit order.
    pub ordering: Duration,
    /// Time spent in the parallel (or sequential) SSSP sweep.
    pub sssp: Duration,
    /// End-to-end time (≥ ordering + sssp; includes setup).
    pub total: Duration,
}

/// The result of an APSP run: distances plus provenance and measurements.
#[derive(Debug)]
pub struct ApspOutput {
    /// The exact all-pairs distance matrix.
    pub dist: DistanceMatrix,
    /// Wall-clock phase decomposition.
    pub timings: PhaseTimings,
    /// Aggregated work counters.
    pub counters: Counters,
    /// Threads the run used.
    pub threads: usize,
    /// Human-readable algorithm label (e.g. `"ParAPSP"`).
    pub algorithm: String,
    /// Time each thread spent inside SSSP kernels (index = thread id).
    /// The spread quantifies load balance — the property the scheduling
    /// schemes of the paper's Fig. 1 trade on. Empty for algorithms that
    /// don't track it.
    pub thread_busy: Vec<Duration>,
}

impl ApspOutput {
    /// Convenience accessor for the distance matrix.
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.dist
    }

    /// Load-imbalance factor: slowest thread's busy time over the mean
    /// (1.0 = perfectly balanced). `None` when busy times weren't tracked.
    pub fn load_imbalance(&self) -> Option<f64> {
        if self.thread_busy.is_empty() {
            return None;
        }
        let secs: Vec<f64> = self.thread_busy.iter().map(Duration::as_secs_f64).collect();
        let mean = secs.iter().sum::<f64>() / secs.len() as f64;
        if mean <= 0.0 {
            return Some(1.0);
        }
        Some(secs.iter().cloned().fold(0.0, f64::max) / mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_adds_fields_and_maxes_peaks() {
        let mut a = Counters {
            relaxations: 1,
            queue_pops: 2,
            row_reuses: 3,
            lease_hits: 5,
            lease_misses: 6,
            decode_ahead_hits: 7,
            pinned_bytes_peak: 900,
            sources: 4,
        };
        let b = Counters {
            relaxations: 10,
            queue_pops: 20,
            row_reuses: 30,
            lease_hits: 50,
            lease_misses: 60,
            decode_ahead_hits: 70,
            pinned_bytes_peak: 800,
            sources: 40,
        };
        a.merge(&b);
        assert_eq!(
            a,
            Counters {
                relaxations: 11,
                queue_pops: 22,
                row_reuses: 33,
                lease_hits: 55,
                lease_misses: 66,
                decode_ahead_hits: 77,
                // Peaks are concurrent high-water marks: max, not sum.
                pinned_bytes_peak: 900,
                sources: 44,
            }
        );
    }

    #[test]
    fn default_timings_are_zero() {
        let t = PhaseTimings::default();
        assert_eq!(t.ordering, Duration::ZERO);
        assert_eq!(t.sssp, Duration::ZERO);
        assert_eq!(t.total, Duration::ZERO);
    }

    #[test]
    fn load_imbalance_math() {
        let make = |busy: Vec<Duration>| ApspOutput {
            dist: crate::DistanceMatrix::new_infinite(1),
            timings: PhaseTimings::default(),
            counters: Counters::default(),
            threads: busy.len().max(1),
            algorithm: "test".into(),
            thread_busy: busy,
        };
        assert_eq!(make(vec![]).load_imbalance(), None);
        let balanced = make(vec![Duration::from_secs(2); 4]);
        assert!((balanced.load_imbalance().unwrap() - 1.0).abs() < 1e-12);
        let skewed = make(vec![
            Duration::from_secs(3),
            Duration::from_secs(1),
            Duration::from_secs(1),
            Duration::from_secs(1),
        ]);
        assert!((skewed.load_imbalance().unwrap() - 2.0).abs() < 1e-12);
        let idle = make(vec![Duration::ZERO; 2]);
        assert_eq!(idle.load_imbalance(), Some(1.0));
    }
}
