//! The parallel APSP drivers (paper §3–§4).
//!
//! One configurable driver, [`ParApsp`], covers the whole family the paper
//! evaluates; the named constructors pin the exact configurations:
//!
//! | Constructor | Ordering | Loop schedule | Paper name |
//! |---|---|---|---|
//! | [`ParApsp::par_alg1`] | none (index order) | block | **ParAlg1** (§3.1) |
//! | [`ParApsp::par_alg2`] | O(n²) selection sort (sequential) | dynamic-cyclic | **ParAlg2** (Alg. 4) |
//! | [`ParApsp::with_par_buckets`] | ParBuckets (Alg. 5) | dynamic-cyclic | ParBuckets variant (§4.1) |
//! | [`ParApsp::with_par_max`] | ParMax (Alg. 6) | dynamic-cyclic | ParMax variant (§4.2) |
//! | [`ParApsp::par_apsp`] | MultiLists (Alg. 7) | dynamic-cyclic | **ParAPSP** (Alg. 8) |
//!
//! Every driver runs the same modified-Dijkstra kernel from all `n` sources
//! in parallel; sources are independent tasks, and completed rows are
//! shared through the publication protocol, so more parallelism means more
//! reusable rows *sooner* — the effect the paper credits for hyper-linear
//! speedup.
//!
//! **Deprecation notice.** [`ParApsp`] is now a thin shim over the unified
//! execution pipeline — [`crate::engine::Runner`] driving an
//! [`crate::engine::ApspEngine`] with a [`crate::engine::RunConfig`] — and
//! will be removed after one release. New code should construct the
//! `Runner` directly; every `ParApsp::par_*` constructor has a same-named
//! `RunConfig` counterpart.

use std::path::PathBuf;

use parapsp_graph::CsrGraph;
use parapsp_order::OrderingProcedure;
use parapsp_parfor::{CancelToken, Schedule, ThreadPool};

use crate::engine::{ApspEngine, RunConfig, Runner};
use crate::kernel::KernelOptions;
use crate::outcome::RunOutcome;
use crate::persist::Checkpoint;
use crate::stats::ApspOutput;

/// Configurable parallel APSP driver. Build with a named constructor (the
/// paper's algorithms) or customize any piece with the `with_*` methods.
///
/// Deprecated shim: delegates to [`Runner`] + [`ApspEngine`]; prefer those
/// in new code (this type will be removed after one release).
///
/// ```
/// use parapsp_core::ParApsp;
/// use parapsp_graph::generate::{barabasi_albert, WeightSpec};
///
/// let g = barabasi_albert(300, 3, WeightSpec::Unit, 42).unwrap();
/// let out = ParApsp::par_apsp(4).run(&g);
/// assert_eq!(out.dist.get(0, 0), 0);
/// assert_eq!(out.counters.sources, 300);
/// ```
#[derive(Debug, Clone)]
pub struct ParApsp {
    config: RunConfig,
}

impl ParApsp {
    /// **ParAlg1** (§3.1): parallel basic algorithm — no ordering, OpenMP
    /// default block partitioning.
    pub fn par_alg1(threads: usize) -> Self {
        ParApsp {
            config: RunConfig::par_alg1(threads),
        }
    }

    /// **ParAlg2** (Alg. 4): sequential O(n²) selection ordering +
    /// dynamic-cyclic scheduled SSSP sweep.
    pub fn par_alg2(threads: usize) -> Self {
        ParApsp {
            config: RunConfig::par_alg2(threads),
        }
    }

    /// The ParBuckets variant (§4.1): approximate parallel bucket ordering.
    pub fn with_par_buckets(threads: usize) -> Self {
        ParApsp {
            config: RunConfig::par_buckets(threads),
        }
    }

    /// The ParMax variant (§4.2): exact max+1-bucket ordering.
    pub fn with_par_max(threads: usize) -> Self {
        ParApsp {
            config: RunConfig::par_max(threads),
        }
    }

    /// **ParAPSP** (Alg. 8): the paper's proposed algorithm — MultiLists
    /// ordering + dynamic-cyclic scheduling.
    #[allow(clippy::self_named_constructors)] // named after the paper's algorithm
    pub fn par_apsp(threads: usize) -> Self {
        ParApsp {
            config: RunConfig::par_apsp(threads),
        }
    }

    /// Overrides the loop schedule (for the Fig. 1 scheduling study).
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.config = self.config.with_schedule(schedule);
        self
    }

    /// Overrides the ordering procedure.
    pub fn with_ordering(mut self, ordering: OrderingProcedure) -> Self {
        self.config = self.config.with_ordering(ordering);
        self
    }

    /// Overrides the kernel ablation switches.
    pub fn with_kernel_options(mut self, kernel: KernelOptions) -> Self {
        self.config = self.config.with_kernel_options(kernel);
        self
    }

    /// Caps computed distances: pairs farther apart than `cap` are left at
    /// `INF`. Exact within the cap; large work savings on small-world
    /// graphs when only near neighborhoods matter.
    pub fn with_max_distance(mut self, cap: u32) -> Self {
        self.config = self.config.with_max_distance(cap);
        self
    }

    /// Selects the row-relaxation implementation for the dense row-reuse
    /// pass (see [`crate::relax`]). Every variant is bit-identical — this
    /// switch exists for the scalar-vs-vector ablation and for forcing a
    /// specific path on heterogeneous fleets. The default is
    /// [`RelaxImpl::Auto`](crate::relax::RelaxImpl::Auto).
    pub fn with_relax(mut self, relax: crate::relax::RelaxImpl) -> Self {
        self.config = self.config.with_relax(relax);
        self
    }

    /// Periodically persists progress: after every `every` completed
    /// sources the driver writes a version-2 checkpoint (atomically —
    /// temp file + rename) to `path`. A run killed between writes loses
    /// at most `every` rows of work; reload the file with
    /// [`crate::persist::load_checkpoint`] and continue via
    /// [`ParApsp::run_resumed`].
    ///
    /// Checkpointing inserts a barrier every `every` sources, so small
    /// values trade sweep parallelism for durability.
    ///
    /// # Panics
    ///
    /// Panics when `every` is zero, and later — during the run — if a
    /// checkpoint write fails (durability was explicitly requested; a
    /// silently unwritable checkpoint would defeat it).
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>, every: usize) -> Self {
        self.config = self.config.with_checkpoint(path, every);
        self
    }

    /// Overrides the report label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.config = self.config.with_label(label);
        self
    }

    /// Configured thread count.
    pub fn threads(&self) -> usize {
        self.config.threads()
    }

    /// The driver's full configuration (the value a [`Runner`] consumes).
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Runs the driver on `graph`, creating a fresh thread pool.
    pub fn run(&self, graph: &CsrGraph) -> ApspOutput {
        Runner::new(self.config.clone()).run(ApspEngine::new(), graph)
    }

    /// Cancellable [`ParApsp::run`]: the sweep polls `token` at every chunk
    /// boundary (for dynamic-cyclic, before every source). On a stop the
    /// workers drain — each finishes the source it is on — and the outcome
    /// carries a consistent checkpoint of every completed row, valid as
    /// input to [`ParApsp::run_resumed`] (which lands on the bit-identical
    /// final matrix).
    pub fn run_with_token(&self, graph: &CsrGraph, token: &CancelToken) -> RunOutcome<ApspOutput> {
        Runner::new(self.config.clone()).run_with_token(ApspEngine::new(), graph, token)
    }

    /// Cancellable [`ParApsp::run_resumed`]: continues from `checkpoint`
    /// and may itself be interrupted again, yielding a newer checkpoint.
    /// (Deprecated shim for `Runner::run_resumed_with_token`.)
    ///
    /// # Panics
    ///
    /// Panics when the checkpoint's matrix size does not match `graph`.
    pub fn run_resumed_with_token(
        &self,
        graph: &CsrGraph,
        checkpoint: Checkpoint,
        token: &CancelToken,
    ) -> RunOutcome<ApspOutput> {
        Runner::new(self.config.clone()).run_resumed_with_token(
            ApspEngine::new(),
            graph,
            checkpoint,
            token,
        )
    }

    /// Continues an interrupted run from a checkpoint: rows the
    /// checkpoint marks complete are pre-published (and immediately
    /// reusable by the kernel), and only the missing sources are
    /// computed. Because published rows are final and row reuse never
    /// changes results, the output is bit-identical to an uninterrupted
    /// run — `counters.sources` reports just the rows computed now.
    ///
    /// Combine with [`ParApsp::with_checkpoint`] to keep checkpointing
    /// the resumed run.
    ///
    /// # Panics
    ///
    /// Panics when the checkpoint's matrix size does not match `graph`.
    pub fn run_resumed(&self, graph: &CsrGraph, checkpoint: Checkpoint) -> ApspOutput {
        Runner::new(self.config.clone()).run_resumed(ApspEngine::new(), graph, checkpoint)
    }

    /// Like [`ParApsp::run`], additionally returning the wall time each
    /// *source* spent in its SSSP kernel (indexed by vertex id).
    ///
    /// The distribution explains two of the paper's design choices: hub
    /// sources are orders of magnitude more expensive than leaves (so a
    /// block partition of a degree-sorted loop is maximally imbalanced,
    /// Fig. 1), and sources processed *later* get cheaper (row reuse).
    pub fn run_traced(&self, graph: &CsrGraph) -> (ApspOutput, Vec<std::time::Duration>) {
        Runner::new(self.config.clone()).run_traced(ApspEngine::new(), graph)
    }

    /// Runs the driver on `graph` using an existing pool (the pool's thread
    /// count wins over the configured one).
    pub fn run_with_pool(&self, graph: &CsrGraph, pool: &ThreadPool) -> ApspOutput {
        Runner::new(self.config.clone()).run_with_pool(ApspEngine::new(), graph, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::seq_basic;
    use parapsp_graph::generate::{
        barabasi_albert, erdos_renyi_gnm, scale_free_directed, WeightSpec,
    };
    use parapsp_graph::Direction;

    fn all_variants(threads: usize) -> Vec<ParApsp> {
        vec![
            ParApsp::par_alg1(threads),
            ParApsp::par_alg2(threads),
            ParApsp::with_par_buckets(threads),
            ParApsp::with_par_max(threads),
            ParApsp::par_apsp(threads),
        ]
    }

    #[test]
    fn every_variant_matches_sequential_on_scale_free_graph() {
        let g = barabasi_albert(300, 3, WeightSpec::Unit, 77).unwrap();
        let reference = seq_basic(&g);
        for threads in [1, 4] {
            for driver in all_variants(threads) {
                let out = driver.run(&g);
                assert_eq!(
                    reference.dist.first_difference(&out.dist),
                    None,
                    "{} with {threads} threads",
                    out.algorithm
                );
                assert_eq!(out.counters.sources, 300);
                assert_eq!(out.threads, threads);
            }
        }
    }

    #[test]
    fn directed_weighted_graph_exactness() {
        let g = scale_free_directed(250, 3, 0.4, WeightSpec::Uniform { lo: 1, hi: 7 }, 9).unwrap();
        let reference = seq_basic(&g);
        let out = ParApsp::par_apsp(4).run(&g);
        assert_eq!(reference.dist.first_difference(&out.dist), None);
    }

    #[test]
    fn every_schedule_yields_identical_distances() {
        let g = erdos_renyi_gnm(200, 900, Direction::Undirected, WeightSpec::Unit, 4).unwrap();
        let reference = seq_basic(&g);
        for schedule in [
            Schedule::Block,
            Schedule::StaticCyclic,
            Schedule::dynamic_cyclic(),
            Schedule::DynamicChunked(8),
        ] {
            let out = ParApsp::par_apsp(4).with_schedule(schedule).run(&g);
            assert_eq!(
                reference.dist.first_difference(&out.dist),
                None,
                "schedule {schedule:?}"
            );
        }
    }

    #[test]
    fn pool_reuse_across_runs() {
        let g = barabasi_albert(120, 2, WeightSpec::Unit, 2).unwrap();
        let pool = ThreadPool::new(3);
        let a = ParApsp::par_apsp(3).run_with_pool(&g, &pool);
        let b = ParApsp::par_alg1(3).run_with_pool(&g, &pool);
        assert_eq!(a.dist.first_difference(&b.dist), None);
    }

    #[test]
    fn kernel_ablations_stay_exact_in_parallel() {
        let g = barabasi_albert(200, 3, WeightSpec::Unit, 31).unwrap();
        let reference = seq_basic(&g);
        for (row_reuse, dedup_queue) in [(false, true), (true, false), (false, false)] {
            let out = ParApsp::par_apsp(4)
                .with_kernel_options(KernelOptions {
                    row_reuse,
                    dedup_queue,
                    ..KernelOptions::default()
                })
                .run(&g);
            assert_eq!(
                reference.dist.first_difference(&out.dist),
                None,
                "row_reuse={row_reuse} dedup={dedup_queue}"
            );
        }
    }

    #[test]
    fn parallel_run_reuses_rows() {
        let g = barabasi_albert(300, 4, WeightSpec::Unit, 15).unwrap();
        let out = ParApsp::par_apsp(4).run(&g);
        assert!(out.counters.row_reuses > 0);
        assert!(out.counters.queue_pops > 0);
        assert!(out.counters.relaxations > 0);
    }

    #[test]
    fn label_and_builder_overrides() {
        let d = ParApsp::par_apsp(2)
            .with_label("custom")
            .with_ordering(OrderingProcedure::SeqBucket)
            .with_relax(crate::relax::RelaxImpl::Portable)
            .with_schedule(Schedule::StaticCyclic);
        assert_eq!(d.threads(), 2);
        assert_eq!(d.config().label(), Some("custom"));
        let g = barabasi_albert(60, 2, WeightSpec::Unit, 1).unwrap();
        let out = d.run(&g);
        assert_eq!(out.algorithm, "custom");
    }

    #[test]
    fn traced_run_records_every_source() {
        let g = barabasi_albert(150, 3, WeightSpec::Unit, 63).unwrap();
        let (out, per_source) = ParApsp::par_apsp(4).run_traced(&g);
        assert_eq!(per_source.len(), 150);
        assert_eq!(out.counters.sources, 150);
        // Every source executed, so every slot was written with a positive
        // duration (kernels take at least tens of nanoseconds).
        assert!(per_source.iter().all(|d| !d.is_zero()));
        // The per-source times sum to (roughly) the total busy time.
        let sum: std::time::Duration = per_source.iter().sum();
        let busy: std::time::Duration = out.thread_busy.iter().sum();
        assert!(sum <= busy + std::time::Duration::from_millis(50));
        // Distances are unaffected by tracing.
        let plain = ParApsp::par_apsp(4).run(&g);
        assert_eq!(plain.dist.first_difference(&out.dist), None);
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_leaves_a_complete_file() {
        let dir = std::env::temp_dir().join("parapsp-par-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("full.ckpt");
        let g = barabasi_albert(180, 3, WeightSpec::Unit, 11).unwrap();
        let reference = ParApsp::par_apsp(4).run(&g);
        let out = ParApsp::par_apsp(4).with_checkpoint(&path, 32).run(&g);
        assert_eq!(reference.dist.first_difference(&out.dist), None);
        let cp = crate::persist::load_checkpoint(&path).unwrap();
        assert!(cp.is_complete());
        assert_eq!(cp.matrix().first_difference(&out.dist), None);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn resume_computes_only_missing_rows_bit_identically() {
        let g = barabasi_albert(200, 3, WeightSpec::Uniform { lo: 1, hi: 9 }, 23).unwrap();
        let full = ParApsp::par_apsp(4).run(&g);
        // Emulate a run killed midway: only a third of the rows survive.
        let completed: Vec<bool> = (0..200).map(|s| s % 3 == 0).collect();
        let kept = completed.iter().filter(|&&done| done).count() as u64;
        let cp = crate::persist::Checkpoint::new(full.dist.clone(), completed);
        let resumed = ParApsp::par_apsp(4).run_resumed(&g, cp);
        assert_eq!(full.dist.first_difference(&resumed.dist), None);
        assert_eq!(resumed.counters.sources, 200 - kept);
    }

    #[test]
    fn resumed_run_can_keep_checkpointing() {
        let dir = std::env::temp_dir().join("parapsp-par-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resumed.ckpt");
        let g = barabasi_albert(120, 2, WeightSpec::Unit, 7).unwrap();
        let full = ParApsp::par_apsp(3).run(&g);
        let completed: Vec<bool> = (0..120).map(|s| s < 40).collect();
        let cp = crate::persist::Checkpoint::new(full.dist.clone(), completed);
        let resumed = ParApsp::par_apsp(3)
            .with_checkpoint(&path, 16)
            .run_resumed(&g, cp);
        assert_eq!(full.dist.first_difference(&resumed.dist), None);
        let on_disk = crate::persist::load_checkpoint(&path).unwrap();
        assert!(on_disk.is_complete());
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "vertices")]
    fn resume_rejects_mismatched_checkpoint() {
        let g = barabasi_albert(50, 2, WeightSpec::Unit, 3).unwrap();
        let cp = crate::persist::Checkpoint::complete(crate::DistanceMatrix::new_infinite(10));
        ParApsp::par_apsp(2).run_resumed(&g, cp);
    }

    #[test]
    fn untripped_token_completes_identically() {
        let g = barabasi_albert(150, 3, WeightSpec::Unit, 19).unwrap();
        let plain = ParApsp::par_apsp(4).run(&g);
        let token = parapsp_parfor::CancelToken::new();
        let out = ParApsp::par_apsp(4)
            .run_with_token(&g, &token)
            .unwrap_complete();
        assert_eq!(plain.dist.first_difference(&out.dist), None);
    }

    #[test]
    fn pre_cancelled_token_yields_empty_checkpoint() {
        let g = barabasi_albert(100, 2, WeightSpec::Unit, 5).unwrap();
        let token = parapsp_parfor::CancelToken::new();
        token.cancel();
        let outcome = ParApsp::par_apsp(4).run_with_token(&g, &token);
        let cp = match outcome {
            crate::RunOutcome::Cancelled { checkpoint } => checkpoint,
            other => panic!("expected Cancelled, got {other:?}"),
        };
        assert_eq!(cp.completed_count(), 0);
        assert_eq!(cp.n(), 100);
    }

    #[test]
    fn cancel_then_resume_is_bit_identical() {
        let g = barabasi_albert(220, 3, WeightSpec::Uniform { lo: 1, hi: 9 }, 91).unwrap();
        let full = ParApsp::par_apsp(4).run(&g);
        for budget in [0u64, 1, 17, 80, 150] {
            let token = parapsp_parfor::CancelToken::with_poll_budget(budget);
            let outcome = ParApsp::par_apsp(4).run_with_token(&g, &token);
            let cp = match outcome {
                crate::RunOutcome::Complete(out) => {
                    // Budget outlasted the run: still must be exact.
                    assert_eq!(full.dist.first_difference(&out.dist), None);
                    continue;
                }
                crate::RunOutcome::Cancelled { checkpoint } => checkpoint,
                other => panic!("unexpected outcome {other:?}"),
            };
            // The checkpoint round-trips through the v2 format...
            let mut buf = Vec::new();
            crate::persist::write_checkpoint(&cp, &mut buf).unwrap();
            let loaded = crate::persist::read_checkpoint(buf.as_slice()).unwrap();
            assert_eq!(loaded, cp);
            // ...and resuming lands on the uninterrupted matrix.
            let resumed = ParApsp::par_apsp(4).run_resumed(&g, loaded);
            assert_eq!(
                full.dist.first_difference(&resumed.dist),
                None,
                "budget {budget}"
            );
        }
    }

    #[test]
    fn deadline_zero_stops_before_any_work() {
        let g = barabasi_albert(80, 2, WeightSpec::Unit, 13).unwrap();
        let token = parapsp_parfor::CancelToken::with_deadline(std::time::Duration::ZERO);
        let outcome = ParApsp::par_apsp(2).run_with_token(&g, &token);
        assert!(matches!(
            outcome,
            crate::RunOutcome::DeadlineExceeded { .. }
        ));
        let cp = outcome.into_checkpoint().unwrap();
        assert_eq!(cp.completed_count(), 0);
    }

    #[test]
    fn cancelled_checkpointed_run_persists_partial_state() {
        let dir = std::env::temp_dir().join("parapsp-par-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cancelled.ckpt");
        let g = barabasi_albert(160, 3, WeightSpec::Unit, 55).unwrap();
        let token = parapsp_parfor::CancelToken::with_poll_budget(40);
        let outcome = ParApsp::par_apsp(4)
            .with_checkpoint(&path, 16)
            .run_with_token(&g, &token);
        let cp = outcome.into_checkpoint().expect("budget 40 < 160 sources");
        // The on-disk checkpoint (written at the last chunk boundary) loads
        // and is resumable; the in-memory one may be newer but both resume
        // to the same matrix.
        let on_disk = crate::persist::load_checkpoint(&path).unwrap();
        let full = ParApsp::par_apsp(4).run(&g);
        for checkpoint in [on_disk, cp] {
            let resumed = ParApsp::par_apsp(4).run_resumed(&g, checkpoint);
            assert_eq!(full.dist.first_difference(&resumed.dist), None);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn resumed_run_can_be_cancelled_again() {
        let g = barabasi_albert(180, 3, WeightSpec::Unit, 77).unwrap();
        let full = ParApsp::par_apsp(3).run(&g);
        // First interruption.
        let token = parapsp_parfor::CancelToken::with_poll_budget(30);
        let cp1 = ParApsp::par_apsp(3)
            .run_with_token(&g, &token)
            .into_checkpoint()
            .expect("30 < 180");
        // Second interruption, resuming from the first checkpoint.
        let token = parapsp_parfor::CancelToken::with_poll_budget(30);
        let outcome = ParApsp::par_apsp(3).run_resumed_with_token(&g, cp1.clone(), &token);
        let cp2 = outcome.into_checkpoint().expect("30 < remaining sources");
        assert!(cp2.completed_count() >= cp1.completed_count());
        // Final resume completes the matrix.
        let resumed = ParApsp::par_apsp(3).run_resumed(&g, cp2);
        assert_eq!(full.dist.first_difference(&resumed.dist), None);
    }

    #[test]
    fn tiny_graphs() {
        let g = parapsp_graph::CsrGraph::from_unit_edges(1, Direction::Directed, &[]).unwrap();
        let out = ParApsp::par_apsp(2).run(&g);
        assert_eq!(out.dist.get(0, 0), 0);

        let g =
            parapsp_graph::CsrGraph::from_unit_edges(2, Direction::Directed, &[(0, 1)]).unwrap();
        let out = ParApsp::par_alg1(2).run(&g);
        assert_eq!(out.dist.get(0, 1), 1);
        assert_eq!(out.dist.get(1, 0), parapsp_graph::INF);
    }
}
