//! The parallel APSP drivers (paper §3–§4).
//!
//! One configurable driver, [`ParApsp`], covers the whole family the paper
//! evaluates; the named constructors pin the exact configurations:
//!
//! | Constructor | Ordering | Loop schedule | Paper name |
//! |---|---|---|---|
//! | [`ParApsp::par_alg1`] | none (index order) | block | **ParAlg1** (§3.1) |
//! | [`ParApsp::par_alg2`] | O(n²) selection sort (sequential) | dynamic-cyclic | **ParAlg2** (Alg. 4) |
//! | [`ParApsp::with_par_buckets`] | ParBuckets (Alg. 5) | dynamic-cyclic | ParBuckets variant (§4.1) |
//! | [`ParApsp::with_par_max`] | ParMax (Alg. 6) | dynamic-cyclic | ParMax variant (§4.2) |
//! | [`ParApsp::par_apsp`] | MultiLists (Alg. 7) | dynamic-cyclic | **ParAPSP** (Alg. 8) |
//!
//! Every driver runs the same modified-Dijkstra kernel from all `n` sources
//! in parallel; sources are independent tasks, and completed rows are
//! shared through the publication protocol, so more parallelism means more
//! reusable rows *sooner* — the effect the paper credits for hyper-linear
//! speedup.

use std::time::Instant;

use parapsp_graph::{degree, CsrGraph};
use parapsp_order::OrderingProcedure;
use parapsp_parfor::{PerThread, Schedule, ThreadPool};

use crate::kernel::{modified_dijkstra, KernelOptions, Workspace};
use crate::shared::SharedDistState;
use crate::stats::{ApspOutput, Counters, PhaseTimings};

/// Configurable parallel APSP driver. Build with a named constructor (the
/// paper's algorithms) or customize any piece with the `with_*` methods.
///
/// ```
/// use parapsp_core::ParApsp;
/// use parapsp_graph::generate::{barabasi_albert, WeightSpec};
///
/// let g = barabasi_albert(300, 3, WeightSpec::Unit, 42).unwrap();
/// let out = ParApsp::par_apsp(4).run(&g);
/// assert_eq!(out.dist.get(0, 0), 0);
/// assert_eq!(out.counters.sources, 300);
/// ```
#[derive(Debug, Clone)]
pub struct ParApsp {
    threads: usize,
    schedule: Schedule,
    ordering: OrderingProcedure,
    kernel: KernelOptions,
    label: String,
}

impl ParApsp {
    /// **ParAlg1** (§3.1): parallel basic algorithm — no ordering, OpenMP
    /// default block partitioning.
    pub fn par_alg1(threads: usize) -> Self {
        ParApsp {
            threads,
            schedule: Schedule::Block,
            ordering: OrderingProcedure::Identity,
            kernel: KernelOptions::default(),
            label: "ParAlg1".into(),
        }
    }

    /// **ParAlg2** (Alg. 4): sequential O(n²) selection ordering +
    /// dynamic-cyclic scheduled SSSP sweep.
    pub fn par_alg2(threads: usize) -> Self {
        ParApsp {
            threads,
            schedule: Schedule::dynamic_cyclic(),
            ordering: OrderingProcedure::selection(),
            kernel: KernelOptions::default(),
            label: "ParAlg2".into(),
        }
    }

    /// The ParBuckets variant (§4.1): approximate parallel bucket ordering.
    pub fn with_par_buckets(threads: usize) -> Self {
        ParApsp {
            threads,
            schedule: Schedule::dynamic_cyclic(),
            ordering: OrderingProcedure::par_buckets(),
            kernel: KernelOptions::default(),
            label: "ParBuckets".into(),
        }
    }

    /// The ParMax variant (§4.2): exact max+1-bucket ordering.
    pub fn with_par_max(threads: usize) -> Self {
        ParApsp {
            threads,
            schedule: Schedule::dynamic_cyclic(),
            ordering: OrderingProcedure::par_max(),
            kernel: KernelOptions::default(),
            label: "ParMax".into(),
        }
    }

    /// **ParAPSP** (Alg. 8): the paper's proposed algorithm — MultiLists
    /// ordering + dynamic-cyclic scheduling.
    #[allow(clippy::self_named_constructors)] // named after the paper's algorithm
    pub fn par_apsp(threads: usize) -> Self {
        ParApsp {
            threads,
            schedule: Schedule::dynamic_cyclic(),
            ordering: OrderingProcedure::multi_lists(),
            kernel: KernelOptions::default(),
            label: "ParAPSP".into(),
        }
    }

    /// Overrides the loop schedule (for the Fig. 1 scheduling study).
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Overrides the ordering procedure.
    pub fn with_ordering(mut self, ordering: OrderingProcedure) -> Self {
        self.ordering = ordering;
        self
    }

    /// Overrides the kernel ablation switches.
    pub fn with_kernel_options(mut self, kernel: KernelOptions) -> Self {
        self.kernel = kernel;
        self
    }

    /// Caps computed distances: pairs farther apart than `cap` are left at
    /// `INF`. Exact within the cap; large work savings on small-world
    /// graphs when only near neighborhoods matter.
    pub fn with_max_distance(mut self, cap: u32) -> Self {
        self.kernel.max_distance = Some(cap);
        self
    }

    /// Overrides the report label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs the driver on `graph`, creating a fresh thread pool.
    pub fn run(&self, graph: &CsrGraph) -> ApspOutput {
        let pool = ThreadPool::new(self.threads);
        self.run_with_pool(graph, &pool)
    }

    /// Like [`ParApsp::run`], additionally returning the wall time each
    /// *source* spent in its SSSP kernel (indexed by vertex id).
    ///
    /// The distribution explains two of the paper's design choices: hub
    /// sources are orders of magnitude more expensive than leaves (so a
    /// block partition of a degree-sorted loop is maximally imbalanced,
    /// Fig. 1), and sources processed *later* get cheaper (row reuse).
    pub fn run_traced(&self, graph: &CsrGraph) -> (ApspOutput, Vec<std::time::Duration>) {
        let pool = ThreadPool::new(self.threads);
        let n = graph.vertex_count();
        let mut nanos: Vec<u64> = vec![0; n];
        let out = {
            let view = parapsp_parfor::ParSlice::new(&mut nanos[..]);
            self.run_inner(graph, &pool, Some(&view))
        };
        (
            out,
            nanos
                .into_iter()
                .map(std::time::Duration::from_nanos)
                .collect(),
        )
    }

    /// Runs the driver on `graph` using an existing pool (the pool's thread
    /// count wins over the configured one).
    pub fn run_with_pool(&self, graph: &CsrGraph, pool: &ThreadPool) -> ApspOutput {
        self.run_inner(graph, pool, None)
    }

    fn run_inner(
        &self,
        graph: &CsrGraph,
        pool: &ThreadPool,
        trace: Option<&parapsp_parfor::ParSlice<'_, u64>>,
    ) -> ApspOutput {
        let n = graph.vertex_count();
        let start = Instant::now();

        // Phase 1: source ordering.
        let degrees = degree::out_degrees(graph);
        let t_order = Instant::now();
        let order = self.ordering.compute(&degrees, pool);
        let ordering = t_order.elapsed();
        debug_assert_eq!(order.len(), n);

        // Phase 2: the parallel SSSP sweep.
        let state = SharedDistState::new(n);
        let locals: PerThread<(Workspace, Counters, std::time::Duration)> =
            PerThread::from_fn(pool.num_threads(), |_| {
                (Workspace::new(n), Counters::default(), std::time::Duration::ZERO)
            });
        let kernel = self.kernel;
        let order_ref = &order;
        let state_ref = &state;
        let t_sssp = Instant::now();
        pool.parallel_for(n, self.schedule, |tid, k| {
            let s = order_ref[k];
            // SAFETY: each pool thread touches only its own scratch slot.
            let (ws, counters, busy) = unsafe { locals.get_mut(tid) };
            let t0 = Instant::now();
            // `order` is a permutation, so source `s` belongs to exactly
            // this iteration — satisfying the unique-row-owner contract of
            // the kernel (and of `SharedDistState::row_mut`).
            modified_dijkstra(graph, s, state_ref, ws, kernel, counters, None);
            let elapsed = t0.elapsed();
            *busy += elapsed;
            if let Some(view) = trace {
                // SAFETY: `order` is a permutation, so source `s` (and its
                // trace slot) belongs exclusively to this iteration.
                unsafe { view.write(s as usize, elapsed.as_nanos() as u64) };
            }
        });
        let sssp = t_sssp.elapsed();

        debug_assert_eq!(state.published_count(), n);
        let mut counters = Counters::default();
        let mut thread_busy = Vec::with_capacity(pool.num_threads());
        for (_, c, busy) in locals.into_inner() {
            counters.merge(&c);
            thread_busy.push(busy);
        }
        ApspOutput {
            dist: state.into_matrix(),
            timings: PhaseTimings {
                ordering,
                sssp,
                total: start.elapsed(),
            },
            counters,
            threads: pool.num_threads(),
            algorithm: self.label.clone(),
            thread_busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::seq_basic;
    use parapsp_graph::generate::{
        barabasi_albert, erdos_renyi_gnm, scale_free_directed, WeightSpec,
    };
    use parapsp_graph::Direction;

    fn all_variants(threads: usize) -> Vec<ParApsp> {
        vec![
            ParApsp::par_alg1(threads),
            ParApsp::par_alg2(threads),
            ParApsp::with_par_buckets(threads),
            ParApsp::with_par_max(threads),
            ParApsp::par_apsp(threads),
        ]
    }

    #[test]
    fn every_variant_matches_sequential_on_scale_free_graph() {
        let g = barabasi_albert(300, 3, WeightSpec::Unit, 77).unwrap();
        let reference = seq_basic(&g);
        for threads in [1, 4] {
            for driver in all_variants(threads) {
                let out = driver.run(&g);
                assert_eq!(
                    reference.dist.first_difference(&out.dist),
                    None,
                    "{} with {threads} threads",
                    out.algorithm
                );
                assert_eq!(out.counters.sources, 300);
                assert_eq!(out.threads, threads);
            }
        }
    }

    #[test]
    fn directed_weighted_graph_exactness() {
        let g = scale_free_directed(250, 3, 0.4, WeightSpec::Uniform { lo: 1, hi: 7 }, 9).unwrap();
        let reference = seq_basic(&g);
        let out = ParApsp::par_apsp(4).run(&g);
        assert_eq!(reference.dist.first_difference(&out.dist), None);
    }

    #[test]
    fn every_schedule_yields_identical_distances() {
        let g = erdos_renyi_gnm(200, 900, Direction::Undirected, WeightSpec::Unit, 4).unwrap();
        let reference = seq_basic(&g);
        for schedule in [
            Schedule::Block,
            Schedule::StaticCyclic,
            Schedule::dynamic_cyclic(),
            Schedule::DynamicChunked(8),
        ] {
            let out = ParApsp::par_apsp(4).with_schedule(schedule).run(&g);
            assert_eq!(
                reference.dist.first_difference(&out.dist),
                None,
                "schedule {schedule:?}"
            );
        }
    }

    #[test]
    fn pool_reuse_across_runs() {
        let g = barabasi_albert(120, 2, WeightSpec::Unit, 2).unwrap();
        let pool = ThreadPool::new(3);
        let a = ParApsp::par_apsp(3).run_with_pool(&g, &pool);
        let b = ParApsp::par_alg1(3).run_with_pool(&g, &pool);
        assert_eq!(a.dist.first_difference(&b.dist), None);
    }

    #[test]
    fn kernel_ablations_stay_exact_in_parallel() {
        let g = barabasi_albert(200, 3, WeightSpec::Unit, 31).unwrap();
        let reference = seq_basic(&g);
        for (row_reuse, dedup_queue) in [(false, true), (true, false), (false, false)] {
            let out = ParApsp::par_apsp(4)
                .with_kernel_options(KernelOptions {
                    row_reuse,
                    dedup_queue,
                    max_distance: None,
                })
                .run(&g);
            assert_eq!(
                reference.dist.first_difference(&out.dist),
                None,
                "row_reuse={row_reuse} dedup={dedup_queue}"
            );
        }
    }

    #[test]
    fn parallel_run_reuses_rows() {
        let g = barabasi_albert(300, 4, WeightSpec::Unit, 15).unwrap();
        let out = ParApsp::par_apsp(4).run(&g);
        assert!(out.counters.row_reuses > 0);
        assert!(out.counters.queue_pops > 0);
        assert!(out.counters.relaxations > 0);
    }

    #[test]
    fn label_and_builder_overrides() {
        let d = ParApsp::par_apsp(2)
            .with_label("custom")
            .with_ordering(OrderingProcedure::SeqBucket)
            .with_schedule(Schedule::StaticCyclic);
        assert_eq!(d.threads(), 2);
        let g = barabasi_albert(60, 2, WeightSpec::Unit, 1).unwrap();
        let out = d.run(&g);
        assert_eq!(out.algorithm, "custom");
    }

    #[test]
    fn traced_run_records_every_source() {
        let g = barabasi_albert(150, 3, WeightSpec::Unit, 63).unwrap();
        let (out, per_source) = ParApsp::par_apsp(4).run_traced(&g);
        assert_eq!(per_source.len(), 150);
        assert_eq!(out.counters.sources, 150);
        // Every source executed, so every slot was written with a positive
        // duration (kernels take at least tens of nanoseconds).
        assert!(per_source.iter().all(|d| !d.is_zero()));
        // The per-source times sum to (roughly) the total busy time.
        let sum: std::time::Duration = per_source.iter().sum();
        let busy: std::time::Duration = out.thread_busy.iter().sum();
        assert!(sum <= busy + std::time::Duration::from_millis(50));
        // Distances are unaffected by tracing.
        let plain = ParApsp::par_apsp(4).run(&g);
        assert_eq!(plain.dist.first_difference(&out.dist), None);
    }

    #[test]
    fn tiny_graphs() {
        let g = parapsp_graph::CsrGraph::from_unit_edges(1, Direction::Directed, &[]).unwrap();
        let out = ParApsp::par_apsp(2).run(&g);
        assert_eq!(out.dist.get(0, 0), 0);

        let g = parapsp_graph::CsrGraph::from_unit_edges(2, Direction::Directed, &[(0, 1)]).unwrap();
        let out = ParApsp::par_alg1(2).run(&g);
        assert_eq!(out.dist.get(0, 1), 1);
        assert_eq!(out.dist.get(1, 0), parapsp_graph::INF);
    }
}
