//! All-pairs shortest *paths* (not just distances): predecessor tracking
//! and route reconstruction.
//!
//! The paper's algorithms return the distance matrix; applications like the
//! transportation studies cited in its related work (§6) also need the
//! routes. This module extends the modified-Dijkstra kernel with a
//! predecessor matrix sharing the same row-publication protocol — when a
//! published row of `t` relaxes `v`, the predecessor of `v` on the
//! composed path `s ⇝ t ⇝ v` is exactly `t`'s recorded predecessor of `v`,
//! so reuse composes for predecessors just as it does for distances.
//!
//! Memory cost: a second n × n `u32` matrix.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use parapsp_graph::{degree, CsrGraph, INF};
use parapsp_order::OrderingProcedure;
use parapsp_parfor::{PerThread, Schedule, ThreadPool};

use crate::dist::DistanceMatrix;

/// Sentinel in the predecessor matrix: no predecessor (self or unreachable).
pub const NO_PRED: u32 = u32::MAX;

/// Row-major n × n predecessor matrix: `pred(s, v)` is the vertex right
/// before `v` on a shortest `s → v` path, or [`NO_PRED`].
#[derive(Clone)]
pub struct PredecessorMatrix {
    n: usize,
    data: Box<[u32]>,
}

impl PredecessorMatrix {
    /// Predecessor of `v` on the shortest `s → v` path.
    #[inline]
    pub fn get(&self, s: u32, v: u32) -> u32 {
        self.data[s as usize * self.n + v as usize]
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reconstructs the shortest `s → v` path as a vertex sequence
    /// (inclusive of both endpoints). Returns `None` when `v` is
    /// unreachable from `s`.
    pub fn path(&self, s: u32, v: u32) -> Option<Vec<u32>> {
        if s == v {
            return Some(vec![s]);
        }
        let mut route = vec![v];
        let mut cursor = v;
        // A shortest path visits each vertex at most once; the bound guards
        // against corrupted input.
        for _ in 0..self.n {
            let prev = self.get(s, cursor);
            if prev == NO_PRED {
                return None;
            }
            route.push(prev);
            if prev == s {
                route.reverse();
                return Some(route);
            }
            cursor = prev;
        }
        None
    }
}

impl std::fmt::Debug for PredecessorMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PredecessorMatrix({} × {})", self.n, self.n)
    }
}

/// Distances and predecessors from every source.
#[derive(Debug)]
pub struct ApspPaths {
    /// The exact distance matrix.
    pub dist: DistanceMatrix,
    /// Predecessor matrix for route reconstruction.
    pub pred: PredecessorMatrix,
    /// End-to-end wall time.
    pub elapsed: std::time::Duration,
}

/// Shared distance + predecessor state with one publication flag per row
/// pair. Same memory model as `SharedDistState` (see `crate::shared`): the
/// flag is stored with `Release` after *both* rows are final, and loaded
/// with `Acquire` before either is read.
struct SharedPathState {
    n: usize,
    dist: Box<[UnsafeCell<u32>]>,
    pred: Box<[UnsafeCell<u32>]>,
    flags: Box<[AtomicBool]>,
}

// SAFETY: identical protocol to `SharedDistState`; both matrices are
// guarded by the same flag.
unsafe impl Sync for SharedPathState {}

impl SharedPathState {
    fn new(n: usize) -> Self {
        let len = n.checked_mul(n).expect("matrix size overflow");
        let dist: Box<[u32]> = vec![INF; len].into_boxed_slice();
        let pred: Box<[u32]> = vec![NO_PRED; len].into_boxed_slice();
        // SAFETY: UnsafeCell<u32> is repr(transparent) over u32.
        let dist = unsafe { Box::from_raw(Box::into_raw(dist) as *mut [UnsafeCell<u32>]) };
        let pred = unsafe { Box::from_raw(Box::into_raw(pred) as *mut [UnsafeCell<u32>]) };
        let flags = (0..n).map(|_| AtomicBool::new(false)).collect();
        SharedPathState {
            n,
            dist,
            pred,
            flags,
        }
    }

    /// # Safety
    /// Caller must be the unique owner of row `s` (unpublished).
    #[allow(clippy::mut_from_ref)]
    unsafe fn rows_mut(&self, s: u32) -> (&mut [u32], &mut [u32]) {
        let start = s as usize * self.n;
        // SAFETY: forwarded from the caller; dist and pred are distinct
        // allocations so the two borrows never alias.
        unsafe {
            (
                std::slice::from_raw_parts_mut(self.dist[start].get(), self.n),
                std::slice::from_raw_parts_mut(self.pred[start].get(), self.n),
            )
        }
    }

    fn publish(&self, s: u32) {
        self.flags[s as usize].store(true, Ordering::Release);
    }

    fn published_rows(&self, t: u32) -> Option<(&[u32], &[u32])> {
        if self.flags[t as usize].load(Ordering::Acquire) {
            let start = t as usize * self.n;
            // SAFETY: Acquire pairs with the owner's Release; rows are
            // final after publication.
            Some(unsafe {
                (
                    std::slice::from_raw_parts(self.dist[start].get() as *const u32, self.n),
                    std::slice::from_raw_parts(self.pred[start].get() as *const u32, self.n),
                )
            })
        } else {
            None
        }
    }

    fn into_matrices(self) -> (DistanceMatrix, PredecessorMatrix) {
        let n = self.n;
        // SAFETY: inverse transmute of `new`.
        let dist: Box<[u32]> = unsafe { Box::from_raw(Box::into_raw(self.dist) as *mut [u32]) };
        let pred: Box<[u32]> = unsafe { Box::from_raw(Box::into_raw(self.pred) as *mut [u32]) };
        (
            DistanceMatrix::from_raw(n, dist),
            PredecessorMatrix { n, data: pred },
        )
    }
}

/// The modified Dijkstra with predecessor tracking, from source `s`.
///
/// Safety contract identical to the distance-only kernel: the caller is the
/// unique task for source `s`.
fn kernel_with_pred(
    graph: &CsrGraph,
    s: u32,
    state: &SharedPathState,
    queue: &mut VecDeque<u32>,
    in_queue: &mut [bool],
) {
    // SAFETY: unique ownership of row `s` is the caller's contract.
    let (dist, pred) = unsafe { state.rows_mut(s) };
    dist[s as usize] = 0;
    queue.push_back(s);
    in_queue[s as usize] = true;
    while let Some(t) = queue.pop_front() {
        in_queue[t as usize] = false;
        let dt = dist[t as usize];
        if let Some((t_dist, t_pred)) = state.published_rows(t) {
            for v in 0..state.n {
                let alt = dt.saturating_add(t_dist[v]);
                if alt < dist[v] {
                    dist[v] = alt;
                    // Composition: the predecessor of v inside t's tree is
                    // also its predecessor on the s ⇝ t ⇝ v path; for
                    // v == t's direct successors this is t itself, which is
                    // what t_pred records. v == t never improves (alt == dt).
                    pred[v] = if t_pred[v] == NO_PRED { t } else { t_pred[v] };
                }
            }
            continue;
        }
        for (v, w) in graph.out_edges(t) {
            let alt = dt.saturating_add(w);
            if alt < dist[v as usize] {
                dist[v as usize] = alt;
                pred[v as usize] = t;
                if !in_queue[v as usize] {
                    queue.push_back(v);
                    in_queue[v as usize] = true;
                }
            }
        }
    }
    state.publish(s);
}

/// ParAPSP with route reconstruction: MultiLists ordering, dynamic-cyclic
/// scheduling, and a predecessor matrix produced alongside the distances.
pub fn par_apsp_with_paths(graph: &CsrGraph, threads: usize) -> ApspPaths {
    let n = graph.vertex_count();
    let pool = ThreadPool::new(threads);
    let start = Instant::now();
    let degrees = degree::out_degrees(graph);
    let order = OrderingProcedure::multi_lists().compute(&degrees, &pool);
    let state = SharedPathState::new(n);
    let locals: PerThread<(VecDeque<u32>, Vec<bool>)> =
        PerThread::from_fn(pool.num_threads(), |_| (VecDeque::new(), vec![false; n]));
    let order_ref = &order;
    let state_ref = &state;
    pool.parallel_for(n, Schedule::dynamic_cyclic(), |tid, k| {
        let s = order_ref[k];
        // SAFETY: one slot per pool thread.
        let (queue, in_queue) = unsafe { locals.get_mut(tid) };
        // `order` is a permutation: source `s` is uniquely owned here.
        kernel_with_pred(graph, s, state_ref, queue, in_queue);
    });
    let (dist, pred) = state.into_matrices();
    ApspPaths {
        dist,
        pred,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_graph::generate::{barabasi_albert, erdos_renyi_gnm, WeightSpec};
    use parapsp_graph::Direction;

    /// Checks that every reconstructed path is a real edge walk whose
    /// weights sum to the reported distance.
    fn validate_paths(graph: &CsrGraph, result: &ApspPaths) {
        let n = graph.vertex_count();
        for s in 0..n as u32 {
            for v in 0..n as u32 {
                let d = result.dist.get(s, v);
                if d == INF {
                    assert!(result.pred.path(s, v).is_none() || s == v);
                    continue;
                }
                let path = result
                    .pred
                    .path(s, v)
                    .unwrap_or_else(|| panic!("no path {s} -> {v} but dist {d}"));
                assert_eq!(path.first(), Some(&s));
                assert_eq!(path.last(), Some(&v));
                let mut total = 0u32;
                for pair in path.windows(2) {
                    let (a, b) = (pair[0], pair[1]);
                    let w = graph
                        .out_edges(a)
                        .filter(|&(t, _)| t == b)
                        .map(|(_, w)| w)
                        .min()
                        .unwrap_or_else(|| panic!("path uses nonexistent edge {a} -> {b}"));
                    total += w;
                }
                assert_eq!(total, d, "path weight mismatch {s} -> {v}");
            }
        }
    }

    #[test]
    fn paths_are_valid_on_weighted_directed_graph() {
        let g = erdos_renyi_gnm(
            80,
            400,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 9 },
            3,
        )
        .unwrap();
        for threads in [1, 4] {
            let result = par_apsp_with_paths(&g, threads);
            let reference = crate::baselines::apsp_dijkstra(&g);
            assert_eq!(reference.first_difference(&result.dist), None);
            validate_paths(&g, &result);
        }
    }

    #[test]
    fn paths_are_valid_on_scale_free_graph() {
        let g = barabasi_albert(120, 3, WeightSpec::Unit, 8).unwrap();
        let result = par_apsp_with_paths(&g, 4);
        validate_paths(&g, &result);
    }

    #[test]
    fn trivial_paths() {
        let g = CsrGraph::from_unit_edges(3, Direction::Directed, &[(0, 1)]).unwrap();
        let result = par_apsp_with_paths(&g, 2);
        assert_eq!(result.pred.path(0, 0), Some(vec![0]));
        assert_eq!(result.pred.path(0, 1), Some(vec![0, 1]));
        assert_eq!(result.pred.path(1, 0), None);
        assert_eq!(result.pred.path(0, 2), None);
        assert_eq!(result.pred.get(0, 1), 0);
        assert_eq!(result.pred.get(0, 2), NO_PRED);
        assert_eq!(result.pred.n(), 3);
    }

    #[test]
    fn long_chain_path_reconstructs_fully() {
        let g = parapsp_graph::generate::path_graph(50, Direction::Undirected);
        let result = par_apsp_with_paths(&g, 3);
        let path = result.pred.path(0, 49).unwrap();
        assert_eq!(path, (0..50u32).collect::<Vec<_>>());
    }

    use parapsp_graph::CsrGraph;
}
