//! The modified Dijkstra kernel (paper Alg. 1, after Peng et al.).
//!
//! Despite the name it is *not* a priority-queue Dijkstra: Peng's procedure
//! is a FIFO label-correcting SSSP (SPFA-style) with one extra move — when
//! the dequeued vertex `t` already has a complete SSSP row (`flag[t]`),
//! the whole row `D[t][*]` is used to relax every vertex at once and `t`'s
//! edges are *not* expanded. Vertices improved by a row reuse are not
//! re-enqueued; Peng et al. prove this preserves exactness (the intuition:
//! any continuation of a path through a flagged vertex is already covered
//! by that vertex's complete row).
//!
//! The kernel writes into a caller-supplied row and reads other rows
//! through the publication protocol of the [`crate::store`] backends,
//! which makes the very same code the engine of the sequential *and*
//! parallel algorithms, against any storage tier.

use std::collections::VecDeque;

use parapsp_graph::{CsrGraph, INF};
use parapsp_parfor::BitSet;

use crate::relax::{relax_row, RelaxImpl};
use crate::stats::Counters;
use crate::store::{LeaseOrigin, Store};

/// Tuning/ablation switches for the kernel. The defaults reproduce the
/// paper; the switches exist so the benchmark harness can quantify each
/// ingredient separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelOptions {
    /// Reuse published rows (the dynamic-programming step of Alg. 1,
    /// lines 6–11). Disabling degrades the kernel to plain SPFA.
    pub row_reuse: bool,
    /// Skip enqueueing a vertex that is already queued (the standard SPFA
    /// guard; the paper's pseudocode enqueues unconditionally).
    pub dedup_queue: bool,
    /// Distance cap: pairs farther than this stay at [`INF`](parapsp_graph::INF).
    /// Bounded-horizon APSP ("k-hop neighborhoods") does much less work on
    /// small-world graphs while remaining exact within the cap: any path of
    /// total length ≤ cap decomposes into segments that are themselves
    /// ≤ cap, so capped rows compose correctly under reuse.
    pub max_distance: Option<u32>,
    /// Which [`relax_row`] implementation performs the dense row-reuse
    /// pass. All variants are bit-identical; the switch exists so the
    /// benchmark harness can quantify the vectorization win.
    pub relax: RelaxImpl,
    /// Which per-source SSSP solver computes each row (see
    /// [`crate::solver`]). All solvers produce bit-identical distances;
    /// they differ in how they order relaxations.
    pub solver: crate::solver::SolverKind,
}

impl Default for KernelOptions {
    fn default() -> Self {
        KernelOptions {
            row_reuse: true,
            dedup_queue: true,
            max_distance: None,
            relax: RelaxImpl::Auto,
            solver: crate::solver::SolverKind::Dijkstra,
        }
    }
}

/// Reusable per-task scratch space, sized once per thread so the inner loop
/// performs no allocation in the steady state.
///
/// Every [`crate::solver`] variant shares this one structure: the FIFO
/// kernel uses `queue`/`in_queue`, the bucketed solvers additionally use
/// the cyclic [`BucketRing`] plus the `removed`/`scratch` staging lists.
/// Sharing matters for the no-alloc guarantee — each solver borrows the
/// same warmed capacities instead of allocating per source.
pub(crate) struct Workspace {
    pub(crate) queue: VecDeque<u32>,
    /// Packed "is queued" bitmap: `n/8` bytes instead of `n`, so frontier
    /// bookkeeping stays cache-resident while rows stream through.
    pub(crate) in_queue: BitSet,
    /// Cyclic bucket array for the Δ-stepping / stepping solvers.
    pub(crate) buckets: BucketRing,
    /// Vertices removed from the current bucket, staged for the
    /// heavy-edge phase (Δ-stepping only).
    pub(crate) removed: Vec<u32>,
    /// Membership bitmap for `removed` (cleared by iterating `removed`,
    /// never by an O(n) sweep).
    pub(crate) in_removed: BitSet,
    /// Drain staging: bucket slots are swapped here so a light-phase
    /// relaxation can push back into the slot being drained.
    pub(crate) scratch: Vec<u32>,
    /// Staging row for store backends that cannot lend in-place mutable
    /// rows ([`Store::try_row_mut`] returns `None`): the solver computes
    /// into this buffer and hands it over via [`Store::publish_from`].
    /// Allocated once per thread, like the rest of the workspace.
    pub(crate) row_buf: Vec<u32>,
}

impl Workspace {
    pub(crate) fn new(n: usize) -> Self {
        Workspace {
            queue: VecDeque::with_capacity(64),
            in_queue: BitSet::new(n),
            buckets: BucketRing::new(),
            removed: Vec::new(),
            in_removed: BitSet::new(n),
            scratch: Vec::new(),
            row_buf: vec![INF; n],
        }
    }
}

/// A cyclic array of distance buckets, reused across sources.
///
/// Bucket `b` (absolute index `tent / Δ`) lives in slot `b % ring`. The
/// ring only needs to cover the live window: every queued tentative
/// distance lies within `max_weight` of the bucket being processed, so a
/// ring of `⌈max_weight / Δ⌉ + slack` slots guarantees no two *live*
/// absolute buckets alias one slot. Entries are lazily deleted — a
/// vertex may have stale entries in higher buckets after an improvement;
/// consumers drop an entry whose current `tent / Δ` no longer matches
/// the absolute bucket being drained (distances only decrease, so a
/// stale entry can never masquerade as a ring-aliased future bucket).
///
/// `reset` clears slots but keeps their capacity, which is what makes
/// per-source solves allocation-free once warm.
pub(crate) struct BucketRing {
    slots: Vec<Vec<u32>>,
    ring: usize,
    live: usize,
}

impl BucketRing {
    pub(crate) fn new() -> Self {
        BucketRing {
            slots: Vec::new(),
            ring: 0,
            live: 0,
        }
    }

    /// Prepares the ring for a new source with `ring` slots, retaining
    /// previously grown slot capacities.
    pub(crate) fn reset(&mut self, ring: usize) {
        debug_assert!(ring >= 1);
        if self.slots.len() < ring {
            self.slots.resize_with(ring, Vec::new);
        }
        for slot in &mut self.slots {
            slot.clear();
        }
        self.ring = ring;
        self.live = 0;
    }

    /// Number of entries currently queued (including stale ones).
    #[inline]
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    #[inline]
    pub(crate) fn push(&mut self, abs_bucket: u64, v: u32) {
        let idx = (abs_bucket % self.ring as u64) as usize;
        self.slots[idx].push(v);
        self.live += 1;
    }

    /// Whether absolute bucket `abs_bucket`'s slot holds any entries.
    #[inline]
    pub(crate) fn slot_is_empty(&self, abs_bucket: u64) -> bool {
        self.slots[(abs_bucket % self.ring as u64) as usize].is_empty()
    }

    /// Moves every entry of `abs_bucket`'s slot into `into` (appending),
    /// leaving the slot empty but with its capacity intact.
    pub(crate) fn drain_into(&mut self, abs_bucket: u64, into: &mut Vec<u32>) {
        let idx = (abs_bucket % self.ring as u64) as usize;
        self.live -= self.slots[idx].len();
        into.append(&mut self.slots[idx]);
    }
}

/// Runs the modified Dijkstra from source `s`, filling row `s` of `store`
/// and publishing it on completion.
///
/// # Safety contract (enforced by callers)
///
/// The caller must guarantee that it is the unique task running source `s`
/// (see [`Store::try_row_mut`]). Every APSP driver in this crate iterates
/// a permutation of the sources, which provides that guarantee.
///
/// On store backends that lend rows the solve happens in place; otherwise
/// it is staged in `ws.row_buf` and handed over via
/// [`Store::publish_from`]. Row reuse fires on *every* backend through
/// [`Store::lease_row`]: dense rows are lent at zero cost, delta/mmap
/// rows are pinned in the hot-row cache for the duration of the
/// relaxation pass (decoding on a miss), and the queue-front
/// [`Store::prefetch_row`] hint turns into a decode-ahead that hides that
/// decode behind the current row's work.
///
/// Optional `intermediate_credit`: incremented at `t` whenever expanding
/// `t`'s edges improved some other vertex — the signal Peng's *adaptive*
/// ordering feeds back into source selection.
pub(crate) fn modified_dijkstra(
    graph: &CsrGraph,
    s: u32,
    store: &Store,
    ws: &mut Workspace,
    options: KernelOptions,
    counters: &mut Counters,
    mut intermediate_credit: Option<&mut [u64]>,
) {
    let n = store.n();
    debug_assert_eq!(graph.vertex_count(), n);
    debug_assert!(ws.in_queue.none_set(), "dirty workspace");

    // SAFETY: the caller guarantees unique ownership of row `s` and that it
    // is unpublished; the borrow ends before publication below.
    let (row, staged) = match unsafe { store.try_row_mut(s) } {
        Some(row) => (row, false),
        None => {
            let buf = ws.row_buf.as_mut_slice();
            buf.fill(INF);
            (buf, true)
        }
    };
    row[s as usize] = 0;

    ws.queue.push_back(s);
    if options.dedup_queue {
        ws.in_queue.set(s as usize);
    }

    let cap = options.max_distance.unwrap_or(u32::MAX);
    // Resolve the dispatch once per source, not once per dequeued row.
    let relax_impl = options.relax.resolve();
    // Counter updates are hoisted into locals and flushed once on return:
    // a per-element write to a `&mut Counters` field inside the row-reuse
    // loop is a loop-carried memory dependence that blocks vectorization.
    let mut queue_pops = 0u64;
    let mut relaxations = 0u64;
    let mut row_reuses = 0u64;
    let mut lease_hits = 0u64;
    let mut lease_misses = 0u64;
    let mut decode_ahead_hits = 0u64;

    while let Some(t) = ws.queue.pop_front() {
        queue_pops += 1;
        if options.dedup_queue {
            ws.in_queue.clear(t as usize);
        }
        let dt = row[t as usize];

        // Alg. 1 lines 6–11: a flagged vertex contributes its whole row.
        // `t != s` always holds for published rows (row `s` is published
        // only after this function returns), so no aliasing with `row`.
        if options.row_reuse {
            // Overlap the latency of the *next* reuse candidate with the
            // work on `t`: on dense its row head starts travelling toward
            // the cache now; on delta/mmap the decode-ahead worker starts
            // materializing it into the hot-row cache.
            if let Some(&next) = ws.queue.front() {
                store.prefetch_row(next);
            }
            if let Some(t_row) = store.lease_row(t) {
                row_reuses += 1;
                match t_row.origin() {
                    LeaseOrigin::CacheMiss => lease_misses += 1,
                    LeaseOrigin::DecodeAhead => {
                        lease_hits += 1;
                        decode_ahead_hits += 1;
                    }
                    LeaseOrigin::Lent | LeaseOrigin::CacheHit => lease_hits += 1,
                }
                relaxations += relax_row(relax_impl, row, &t_row, dt, cap);
                continue;
            }
        }

        // Alg. 1 lines 12–18: ordinary edge relaxation with enqueue.
        let mut improved_someone = false;
        for (v, w) in graph.out_edges(t) {
            let alt = dt.saturating_add(w);
            if alt < row[v as usize] && alt <= cap {
                row[v as usize] = alt;
                relaxations += 1;
                improved_someone = true;
                if !options.dedup_queue || !ws.in_queue.get(v as usize) {
                    ws.queue.push_back(v);
                    if options.dedup_queue {
                        ws.in_queue.set(v as usize);
                    }
                }
            }
        }
        if improved_someone && t != s {
            if let Some(credit) = intermediate_credit.as_deref_mut() {
                credit[t as usize] += 1;
            }
        }
    }

    counters.queue_pops += queue_pops;
    counters.relaxations += relaxations;
    counters.row_reuses += row_reuses;
    counters.lease_hits += lease_hits;
    counters.lease_misses += lease_misses;
    counters.decode_ahead_hits += decode_ahead_hits;
    counters.sources += 1;
    // Alg. 1 line 21: flag[s] = 1 — i.e. publish the completed row.
    if staged {
        store.publish_from(s, row);
    } else {
        store.publish(s);
    }

    if !options.dedup_queue {
        // Without the guard the bitmap was never written, nothing to clean.
        debug_assert!(ws.in_queue.none_set());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreSpec;
    use parapsp_graph::{CsrGraph, Direction, INF};

    fn run_all_sources_on(
        graph: &CsrGraph,
        options: KernelOptions,
        spec: &StoreSpec,
    ) -> crate::DistanceMatrix {
        let n = graph.vertex_count();
        let store = Store::new(n, spec);
        let mut ws = Workspace::new(n);
        let mut counters = Counters::default();
        for s in 0..n as u32 {
            modified_dijkstra(graph, s, &store, &mut ws, options, &mut counters, None);
        }
        assert_eq!(counters.sources, n as u64);
        store.into_matrix()
    }

    fn run_all_sources(graph: &CsrGraph, options: KernelOptions) -> crate::DistanceMatrix {
        run_all_sources_on(graph, options, &StoreSpec::dense())
    }

    #[test]
    fn every_store_backend_is_bit_identical() {
        let g = parapsp_graph::generate::erdos_renyi_gnm(
            70,
            350,
            Direction::Directed,
            parapsp_graph::generate::WeightSpec::Uniform { lo: 1, hi: 9 },
            17,
        )
        .unwrap();
        let dense = run_all_sources(&g, KernelOptions::default());
        for spec in [StoreSpec::delta(4), StoreSpec::mmap(1 << 20)] {
            let got = run_all_sources_on(&g, KernelOptions::default(), &spec);
            assert_eq!(dense.first_difference(&got), None, "{}", spec.label());
        }
    }

    #[test]
    fn weighted_diamond_exact_distances() {
        // 0 -> 1 (2), 0 -> 2 (1), 1 -> 3 (1), 2 -> 3 (5): best 0->3 is 3.
        let g = CsrGraph::from_edges(
            4,
            Direction::Directed,
            &[(0, 1, 2), (0, 2, 1), (1, 3, 1), (2, 3, 5)],
        )
        .unwrap();
        let d = run_all_sources(&g, KernelOptions::default());
        assert_eq!(d.get(0, 3), 3);
        assert_eq!(d.get(0, 2), 1);
        assert_eq!(d.get(3, 0), INF);
        assert_eq!(d.get(2, 2), 0);
    }

    #[test]
    fn unit_weight_path_graph() {
        let g = parapsp_graph::generate::path_graph(6, Direction::Undirected);
        let d = run_all_sources(&g, KernelOptions::default());
        for u in 0..6u32 {
            for v in 0..6u32 {
                assert_eq!(d.get(u, v), u.abs_diff(v));
            }
        }
    }

    #[test]
    fn distance_cap_truncates_exactly() {
        let g = parapsp_graph::generate::path_graph(10, Direction::Undirected);
        let capped = run_all_sources(
            &g,
            KernelOptions {
                max_distance: Some(3),
                ..KernelOptions::default()
            },
        );
        let full = run_all_sources(&g, KernelOptions::default());
        for u in 0..10u32 {
            for v in 0..10u32 {
                let exact = full.get(u, v);
                let expect = if exact <= 3 { exact } else { INF };
                assert_eq!(capped.get(u, v), expect, "({u}, {v})");
            }
        }
    }

    #[test]
    fn distance_cap_is_exact_within_cap_on_weighted_graph() {
        let g = parapsp_graph::generate::erdos_renyi_gnm(
            100,
            500,
            Direction::Directed,
            parapsp_graph::generate::WeightSpec::Uniform { lo: 1, hi: 9 },
            71,
        )
        .unwrap();
        let full = run_all_sources(&g, KernelOptions::default());
        for cap in [0u32, 5, 17, 50] {
            let capped = run_all_sources(
                &g,
                KernelOptions {
                    max_distance: Some(cap),
                    ..KernelOptions::default()
                },
            );
            for u in 0..100u32 {
                for v in 0..100u32 {
                    let exact = full.get(u, v);
                    let expect = if exact <= cap || u == v { exact } else { INF };
                    assert_eq!(capped.get(u, v), expect, "cap {cap} ({u}, {v})");
                }
            }
        }
    }

    #[test]
    fn row_reuse_and_plain_spfa_agree_on_every_backend() {
        let g = parapsp_graph::generate::erdos_renyi_gnm(
            80,
            300,
            Direction::Directed,
            parapsp_graph::generate::WeightSpec::Uniform { lo: 1, hi: 20 },
            13,
        )
        .unwrap();
        let reference = run_all_sources(
            &g,
            KernelOptions {
                row_reuse: false,
                ..KernelOptions::default()
            },
        );
        for spec in [
            StoreSpec::dense(),
            StoreSpec::delta(4),
            StoreSpec::mmap(1 << 20),
        ] {
            let with_reuse = run_all_sources_on(&g, KernelOptions::default(), &spec);
            assert_eq!(
                reference.first_difference(&with_reuse),
                None,
                "{} reuse vs plain SPFA",
                spec.label()
            );
            let without = run_all_sources_on(
                &g,
                KernelOptions {
                    row_reuse: false,
                    ..KernelOptions::default()
                },
                &spec,
            );
            assert_eq!(reference.first_difference(&without), None, "{}", spec.label());
        }
    }

    #[test]
    fn dedup_toggle_does_not_change_results() {
        let g = parapsp_graph::generate::barabasi_albert(
            120,
            2,
            parapsp_graph::generate::WeightSpec::Unit,
            5,
        )
        .unwrap();
        let a = run_all_sources(&g, KernelOptions::default());
        let b = run_all_sources(
            &g,
            KernelOptions {
                dedup_queue: false,
                ..KernelOptions::default()
            },
        );
        assert_eq!(a.first_difference(&b), None);
    }

    #[test]
    fn row_reuse_actually_fires_on_later_sources() {
        let g = parapsp_graph::generate::complete_graph(10);
        let store = Store::new(10, &StoreSpec::dense());
        let mut ws = Workspace::new(10);
        let mut counters = Counters::default();
        for s in 0..10u32 {
            modified_dijkstra(
                &g,
                s,
                &store,
                &mut ws,
                KernelOptions::default(),
                &mut counters,
                None,
            );
        }
        assert!(
            counters.row_reuses > 0,
            "complete graph must trigger row reuse"
        );
        assert_eq!(store.published_count(), 10);
    }

    #[test]
    fn row_reuse_fires_on_every_backend_and_stays_exact() {
        // The regression PR 10 closes: delta/mmap used to fall back to
        // plain edge expansion (row_reuses == 0). Leases must now serve
        // reuse on every backend, with the lease split accounting for
        // every reuse.
        let g = parapsp_graph::generate::complete_graph(12);
        let expect = run_all_sources(&g, KernelOptions::default());
        for spec in [StoreSpec::delta(2), StoreSpec::mmap(1 << 20)] {
            let store = Store::new(12, &spec);
            let mut ws = Workspace::new(12);
            let mut counters = Counters::default();
            for s in 0..12u32 {
                modified_dijkstra(
                    &g,
                    s,
                    &store,
                    &mut ws,
                    KernelOptions::default(),
                    &mut counters,
                    None,
                );
            }
            assert!(
                counters.row_reuses > 0,
                "{}: leases must win reuse back on non-lending backends",
                spec.label()
            );
            assert_eq!(
                counters.row_reuses,
                counters.lease_hits + counters.lease_misses,
                "{}: every reuse is a lease hit or miss",
                spec.label()
            );
            assert!(
                counters.decode_ahead_hits <= counters.lease_hits,
                "{}: decode-ahead hits are a subset of hits",
                spec.label()
            );
            let got = store.into_matrix();
            assert_eq!(expect.first_difference(&got), None, "{}", spec.label());
        }
    }

    #[test]
    fn relax_impls_agree_bit_for_bit_including_counters() {
        // Hoisting the counter updates and switching implementations must
        // not change a single counter value: same graph, same visit order,
        // same pops / reuses / relaxations for every RelaxImpl.
        let g = parapsp_graph::generate::erdos_renyi_gnm(
            90,
            500,
            Direction::Directed,
            parapsp_graph::generate::WeightSpec::Uniform { lo: 1, hi: 9 },
            29,
        )
        .unwrap();
        let run = |options: KernelOptions| {
            let store = Store::new(90, &StoreSpec::dense());
            let mut ws = Workspace::new(90);
            let mut counters = Counters::default();
            for s in 0..90u32 {
                modified_dijkstra(&g, s, &store, &mut ws, options, &mut counters, None);
            }
            (store.into_matrix(), counters)
        };
        for max_distance in [None, Some(7)] {
            let mut reference: Option<(crate::DistanceMatrix, Counters)> = None;
            for relax in RelaxImpl::ALL {
                let (dist, counters) = run(KernelOptions {
                    relax,
                    max_distance,
                    ..KernelOptions::default()
                });
                match &reference {
                    None => reference = Some((dist, counters)),
                    Some((ref_dist, ref_counters)) => {
                        assert_eq!(
                            ref_dist.first_difference(&dist),
                            None,
                            "{relax:?} cap={max_distance:?} distances"
                        );
                        assert_eq!(
                            *ref_counters, counters,
                            "{relax:?} cap={max_distance:?} counters"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn disconnected_components_stay_infinite() {
        let g = CsrGraph::from_unit_edges(4, Direction::Undirected, &[(0, 1), (2, 3)]).unwrap();
        let d = run_all_sources(&g, KernelOptions::default());
        assert_eq!(d.get(0, 1), 1);
        assert_eq!(d.get(0, 2), INF);
        assert_eq!(d.get(3, 1), INF);
        assert!(d.is_symmetric());
    }

    #[test]
    fn intermediate_credit_counts_hub() {
        // Star graph: every cross-leaf path passes through the hub 0.
        let g = parapsp_graph::generate::star_graph(8);
        let store = Store::new(8, &StoreSpec::dense());
        let mut ws = Workspace::new(8);
        let mut counters = Counters::default();
        let mut credit = vec![0u64; 8];
        // Disable row reuse so edges are always expanded.
        let opts = KernelOptions {
            row_reuse: false,
            ..KernelOptions::default()
        };
        for s in 0..8u32 {
            modified_dijkstra(
                &g,
                s,
                &store,
                &mut ws,
                opts,
                &mut counters,
                Some(&mut credit),
            );
        }
        assert!(credit[0] > 0, "the hub must collect intermediate credit");
        assert!(credit[1..].iter().all(|&c| c == 0), "leaves never relay");
    }
}
