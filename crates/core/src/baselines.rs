//! Classic shortest-path baselines (paper §2 Background, §6 Related Work).
//!
//! These serve two purposes: cross-validating the Peng-family algorithms on
//! arbitrary graphs, and reproducing the background comparisons (the paper
//! contrasts its O(n^2.4)-empirical approach with O(n³) Floyd–Warshall and
//! with per-source Dijkstra/Bellman–Ford).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use parapsp_graph::{CsrGraph, INF};
use parapsp_parfor::{ParSlice, Schedule, ThreadPool};

use crate::dist::DistanceMatrix;

/// Floyd–Warshall, O(n³) time and O(n²) space. The classic APSP baseline
/// (paper ref.\[10\]); practical only for small `n`.
pub fn floyd_warshall(graph: &CsrGraph) -> DistanceMatrix {
    let n = graph.vertex_count();
    let mut dist = DistanceMatrix::new_infinite(n);
    for v in 0..n as u32 {
        dist.row_mut(v)[v as usize] = 0;
    }
    for (u, v, w) in graph.arcs() {
        let cell = &mut dist.row_mut(u)[v as usize];
        *cell = (*cell).min(w);
    }
    for k in 0..n {
        for i in 0..n {
            let dik = dist.get(i as u32, k as u32);
            if dik == INF {
                continue;
            }
            for j in 0..n {
                let dkj = dist.get(k as u32, j as u32);
                let alt = dik.saturating_add(dkj);
                if alt < dist.get(i as u32, j as u32) {
                    dist.row_mut(i as u32)[j] = alt;
                }
            }
        }
    }
    dist
}

/// Binary-heap Dijkstra SSSP into a caller-provided row
/// (`dist_row.len() == n`, will be overwritten).
pub fn dijkstra_sssp(graph: &CsrGraph, source: u32, dist_row: &mut [u32]) {
    dist_row.fill(INF);
    dist_row[source as usize] = 0;
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist_row[u as usize] {
            continue; // stale entry
        }
        for (v, w) in graph.out_edges(u) {
            let alt = d.saturating_add(w);
            if alt < dist_row[v as usize] {
                dist_row[v as usize] = alt;
                heap.push(Reverse((alt, v)));
            }
        }
    }
}

/// APSP by running [`dijkstra_sssp`] from every source — the "naïve
/// approach" of the paper's §2.1, O(n · (n + m) log n).
pub fn apsp_dijkstra(graph: &CsrGraph) -> DistanceMatrix {
    let n = graph.vertex_count();
    let mut dist = DistanceMatrix::new_infinite(n);
    for s in 0..n as u32 {
        dijkstra_sssp(graph, s, dist.row_mut(s));
    }
    dist
}

/// Parallel per-source heap Dijkstra — the obvious "embarrassingly
/// parallel" comparator that does *not* share any information between
/// sources (used by the ablation benches to isolate the value of Peng's
/// row reuse).
pub fn par_apsp_dijkstra(graph: &CsrGraph, pool: &ThreadPool) -> DistanceMatrix {
    let n = graph.vertex_count();
    let mut data = vec![INF; n * n];
    {
        let view = ParSlice::new(&mut data[..]);
        pool.parallel_for(n, Schedule::dynamic_cyclic(), |_tid, s| {
            let mut row = vec![INF; n];
            dijkstra_sssp(graph, s as u32, &mut row);
            let base = s * n;
            for (j, d) in row.into_iter().enumerate() {
                // SAFETY: row `s` belongs exclusively to this iteration.
                unsafe { view.write(base + j, d) };
            }
        });
    }
    DistanceMatrix::from_raw(n, data.into_boxed_slice())
}

/// Bellman–Ford SSSP (paper ref.\[4\]). With `u32` weights there are no
/// negative cycles, so it always converges; kept for the background
/// comparison and as an extra cross-check.
pub fn bellman_ford_sssp(graph: &CsrGraph, source: u32) -> Vec<u32> {
    let n = graph.vertex_count();
    let mut dist = vec![INF; n];
    dist[source as usize] = 0;
    // Standard queue-based Bellman–Ford (equivalent to SPFA).
    let mut queue = VecDeque::new();
    let mut in_queue = vec![false; n];
    queue.push_back(source);
    in_queue[source as usize] = true;
    while let Some(u) = queue.pop_front() {
        in_queue[u as usize] = false;
        let du = dist[u as usize];
        for (v, w) in graph.out_edges(u) {
            let alt = du.saturating_add(w);
            if alt < dist[v as usize] {
                dist[v as usize] = alt;
                if !in_queue[v as usize] {
                    queue.push_back(v);
                    in_queue[v as usize] = true;
                }
            }
        }
    }
    dist
}

/// BFS SSSP for unit-weight graphs (hop counts).
pub fn bfs_sssp(graph: &CsrGraph, source: u32) -> Vec<u32> {
    let n = graph.vertex_count();
    let mut dist = vec![INF; n];
    dist[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for v in graph.neighbors(u) {
            if dist[*v as usize] == INF {
                dist[*v as usize] = du + 1;
                queue.push_back(*v);
            }
        }
    }
    dist
}

/// APSP by BFS from every source. Exact only for unit-weight graphs.
pub fn apsp_bfs(graph: &CsrGraph) -> DistanceMatrix {
    let n = graph.vertex_count();
    let mut dist = DistanceMatrix::new_infinite(n);
    for s in 0..n as u32 {
        let row = bfs_sssp(graph, s);
        dist.row_mut(s).copy_from_slice(&row);
    }
    dist
}

/// Parallel per-source BFS APSP for unit-weight graphs — the strongest
/// no-information-sharing comparator on the paper's (unit-weight) complex
/// networks.
pub fn par_apsp_bfs(graph: &CsrGraph, pool: &ThreadPool) -> DistanceMatrix {
    let n = graph.vertex_count();
    let mut data = vec![INF; n * n];
    {
        let view = ParSlice::new(&mut data[..]);
        pool.parallel_for(n, Schedule::dynamic_cyclic(), |_tid, s| {
            let row = bfs_sssp(graph, s as u32);
            let base = s * n;
            for (j, d) in row.into_iter().enumerate() {
                // SAFETY: row `s` belongs exclusively to this iteration.
                unsafe { view.write(base + j, d) };
            }
        });
    }
    DistanceMatrix::from_raw(n, data.into_boxed_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_graph::generate::{barabasi_albert, erdos_renyi_gnm, WeightSpec};
    use parapsp_graph::Direction;

    fn weighted_fixture() -> CsrGraph {
        erdos_renyi_gnm(
            90,
            400,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 12 },
            23,
        )
        .unwrap()
    }

    #[test]
    fn floyd_warshall_matches_dijkstra() {
        let g = weighted_fixture();
        let fw = floyd_warshall(&g);
        let dj = apsp_dijkstra(&g);
        assert_eq!(fw.first_difference(&dj), None);
    }

    #[test]
    fn parallel_dijkstra_matches_sequential() {
        let g = weighted_fixture();
        let seq = apsp_dijkstra(&g);
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let par = par_apsp_dijkstra(&g, &pool);
            assert_eq!(seq.first_difference(&par), None, "{threads} threads");
        }
    }

    #[test]
    fn bellman_ford_matches_dijkstra_rows() {
        let g = weighted_fixture();
        let mut row = vec![0u32; g.vertex_count()];
        for s in [0u32, 7, 42] {
            dijkstra_sssp(&g, s, &mut row);
            assert_eq!(bellman_ford_sssp(&g, s), row, "source {s}");
        }
    }

    #[test]
    fn bfs_equals_dijkstra_on_unit_weights() {
        let g = barabasi_albert(150, 3, WeightSpec::Unit, 6).unwrap();
        let bfs = apsp_bfs(&g);
        let dj = apsp_dijkstra(&g);
        assert_eq!(bfs.first_difference(&dj), None);
    }

    #[test]
    fn parallel_bfs_matches_sequential_bfs() {
        let g = barabasi_albert(120, 3, WeightSpec::Unit, 61).unwrap();
        let seq = apsp_bfs(&g);
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let par = par_apsp_bfs(&g, &pool);
            assert_eq!(seq.first_difference(&par), None, "{threads} threads");
        }
    }

    #[test]
    fn known_small_graph() {
        // Triangle with a shortcut: 0-1 (4), 1-2 (1), 0-2 (6) undirected.
        let g = CsrGraph::from_edges(3, Direction::Undirected, &[(0, 1, 4), (1, 2, 1), (0, 2, 6)])
            .unwrap();
        let fw = floyd_warshall(&g);
        assert_eq!(fw.get(0, 2), 5); // via vertex 1
        assert_eq!(fw.get(0, 1), 4);
        assert_eq!(fw.get(2, 0), 5);
        assert!(fw.is_symmetric());
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let g = CsrGraph::from_unit_edges(3, Direction::Directed, &[(0, 1)]).unwrap();
        let fw = floyd_warshall(&g);
        assert_eq!(fw.get(1, 0), INF);
        assert_eq!(fw.get(2, 0), INF);
        assert_eq!(fw.get(0, 2), INF);
        let mut row = vec![0u32; 3];
        dijkstra_sssp(&g, 1, &mut row);
        assert_eq!(row, vec![INF, 0, INF]);
    }

    #[test]
    fn multigraph_takes_cheapest_parallel_edge() {
        let g = CsrGraph::from_edges(2, Direction::Directed, &[(0, 1, 9), (0, 1, 2)]).unwrap();
        let fw = floyd_warshall(&g);
        assert_eq!(fw.get(0, 1), 2);
        let dj = apsp_dijkstra(&g);
        assert_eq!(dj.get(0, 1), 2);
    }
}
