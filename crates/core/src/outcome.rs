//! Structured results for cancellable APSP runs.
//!
//! A run driven with a [`CancelToken`](parapsp_parfor::CancelToken) has
//! three exits: it finishes, it is cancelled (Ctrl-C, an operator, a test),
//! or its deadline fires. The two early exits are not errors — they carry a
//! valid version-2 [`Checkpoint`] of every row that finished, so the caller
//! can persist it and later continue with
//! [`Runner::run_resumed`](crate::engine::Runner::run_resumed) to the
//! bit-identical final matrix.

use parapsp_parfor::CancelStatus;

use crate::persist::Checkpoint;

/// How a cancellable run ended.
#[derive(Debug)]
pub enum RunOutcome<T> {
    /// The run finished normally.
    Complete(T),
    /// The token was cancelled; `checkpoint` holds every completed row.
    Cancelled {
        /// Consistent snapshot of all rows completed before the stop.
        checkpoint: Checkpoint,
    },
    /// The deadline elapsed; `checkpoint` holds every completed row.
    DeadlineExceeded {
        /// Consistent snapshot of all rows completed before the stop.
        checkpoint: Checkpoint,
    },
}

impl<T> RunOutcome<T> {
    /// Wraps a checkpoint according to the stop status a loop reported.
    ///
    /// # Panics
    ///
    /// Panics on [`CancelStatus::Continue`] — a run that continued to the
    /// end must produce [`RunOutcome::Complete`] with its real output.
    pub fn from_stop(status: CancelStatus, checkpoint: Checkpoint) -> Self {
        match status {
            CancelStatus::Cancelled => RunOutcome::Cancelled { checkpoint },
            CancelStatus::DeadlineExceeded => RunOutcome::DeadlineExceeded { checkpoint },
            CancelStatus::Continue => {
                panic!("RunOutcome::from_stop called with CancelStatus::Continue")
            }
        }
    }

    /// `true` for [`RunOutcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, RunOutcome::Complete(_))
    }

    /// The checkpoint of an interrupted run, `None` when complete.
    pub fn checkpoint(&self) -> Option<&Checkpoint> {
        match self {
            RunOutcome::Complete(_) => None,
            RunOutcome::Cancelled { checkpoint } | RunOutcome::DeadlineExceeded { checkpoint } => {
                Some(checkpoint)
            }
        }
    }

    /// Consumes the outcome, yielding the interrupted run's checkpoint.
    pub fn into_checkpoint(self) -> Option<Checkpoint> {
        match self {
            RunOutcome::Complete(_) => None,
            RunOutcome::Cancelled { checkpoint } | RunOutcome::DeadlineExceeded { checkpoint } => {
                Some(checkpoint)
            }
        }
    }

    /// Unwraps the completed output.
    ///
    /// # Panics
    ///
    /// Panics when the run was interrupted.
    pub fn unwrap_complete(self) -> T {
        match self {
            RunOutcome::Complete(out) => out,
            RunOutcome::Cancelled { .. } => {
                panic!("run was cancelled, not complete")
            }
            RunOutcome::DeadlineExceeded { .. } => {
                panic!("run hit its deadline, not complete")
            }
        }
    }

    /// Maps the `Complete` payload, leaving interruptions untouched.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> RunOutcome<U> {
        match self {
            RunOutcome::Complete(out) => RunOutcome::Complete(f(out)),
            RunOutcome::Cancelled { checkpoint } => RunOutcome::Cancelled { checkpoint },
            RunOutcome::DeadlineExceeded { checkpoint } => {
                RunOutcome::DeadlineExceeded { checkpoint }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DistanceMatrix;

    fn cp() -> Checkpoint {
        Checkpoint::new(DistanceMatrix::new_infinite(3), vec![true, false, false])
    }

    #[test]
    fn accessors_distinguish_the_three_exits() {
        let complete: RunOutcome<u32> = RunOutcome::Complete(7);
        assert!(complete.is_complete());
        assert!(complete.checkpoint().is_none());
        assert_eq!(complete.unwrap_complete(), 7);

        let cancelled: RunOutcome<u32> = RunOutcome::from_stop(CancelStatus::Cancelled, cp());
        assert!(!cancelled.is_complete());
        assert_eq!(cancelled.checkpoint().unwrap().completed_count(), 1);
        assert!(matches!(cancelled, RunOutcome::Cancelled { .. }));

        let deadline: RunOutcome<u32> = RunOutcome::from_stop(CancelStatus::DeadlineExceeded, cp());
        assert!(matches!(deadline, RunOutcome::DeadlineExceeded { .. }));
        assert_eq!(deadline.into_checkpoint().unwrap().n(), 3);
    }

    #[test]
    fn map_transforms_only_complete() {
        let doubled = RunOutcome::Complete(21).map(|v| v * 2);
        assert_eq!(doubled.unwrap_complete(), 42);
        let still_cancelled =
            RunOutcome::<u32>::from_stop(CancelStatus::Cancelled, cp()).map(|v| v * 2);
        assert!(matches!(still_cancelled, RunOutcome::Cancelled { .. }));
    }

    #[test]
    #[should_panic(expected = "cancelled")]
    fn unwrap_complete_panics_on_cancel() {
        let _ = RunOutcome::<u32>::from_stop(CancelStatus::Cancelled, cp()).unwrap_complete();
    }

    #[test]
    #[should_panic(expected = "Continue")]
    fn from_stop_rejects_continue() {
        let _ = RunOutcome::<u32>::from_stop(CancelStatus::Continue, cp());
    }
}
