//! Incremental APSP maintenance under edge insertions.
//!
//! The paper's related work cites Roditty & Zwick's dynamic shortest-path
//! results (ref. 16). The *incremental* direction (insertions /
//! weight decreases only) has a simple exact update: when edge `(u, v, w)`
//! appears, every improved pair must route through it, so
//!
//! ```text
//! D'[x, y] = min(D[x, y],  D[x, u] + w + D[v, y])
//! ```
//!
//! — one O(n²) pass, embarrassingly parallel over rows, versus a full
//! O(n^2.4) recompute. Deletions/weight increases lack such an update and
//! require recomputation (that asymmetry is precisely why the dynamic APSP
//! literature exists); [`IncrementalApsp`] tracks whether its matrix is
//! still valid.

use parapsp_graph::{CsrGraph, Direction, GraphBuilder, INF};
use parapsp_parfor::{ParSlice, Schedule, ThreadPool};

use crate::dist::DistanceMatrix;
use crate::engine::{ApspEngine, RunConfig, Runner};

/// A distance matrix kept exact across edge insertions.
#[derive(Debug)]
pub struct IncrementalApsp {
    dist: DistanceMatrix,
    /// Edges inserted since the base graph (kept so the graph can be
    /// rebuilt for a from-scratch verification or recompute).
    inserted: Vec<(u32, u32, u32)>,
    direction: Direction,
}

impl IncrementalApsp {
    /// Seeds the structure with a full ParAPSP solve of `graph`.
    pub fn new(graph: &CsrGraph, threads: usize) -> Self {
        IncrementalApsp {
            dist: Runner::new(RunConfig::par_apsp(threads))
                .run(ApspEngine::new(), graph)
                .dist,
            inserted: Vec::new(),
            direction: graph.direction(),
        }
    }

    /// Current exact distances.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.dist
    }

    /// Edges inserted since construction.
    pub fn inserted_edges(&self) -> &[(u32, u32, u32)] {
        &self.inserted
    }

    /// Applies one edge insertion (or weight decrease) exactly, in O(n²)
    /// parallel work. Undirected structures apply the update in both
    /// directions.
    ///
    /// Returns the number of pairs whose distance improved.
    pub fn insert_edge(&mut self, u: u32, v: u32, w: u32, pool: &ThreadPool) -> usize {
        let n = self.dist.n();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge endpoints out of range"
        );
        self.inserted.push((u, v, w));
        let mut improved = self.apply_directed(u, v, w, pool);
        if !self.direction.is_directed() && u != v {
            improved += self.apply_directed(v, u, w, pool);
        }
        improved
    }

    fn apply_directed(&mut self, u: u32, v: u32, w: u32, pool: &ThreadPool) -> usize {
        let n = self.dist.n();
        // Snapshot the two pivot rows/columns we read: row of v, and the
        // column of u (i.e. D[x, u] for all x). Reading them up front keeps
        // the parallel pass free of read/write overlap.
        let row_v: Vec<u32> = self.dist.row(v).to_vec();
        let col_u: Vec<u32> = (0..n as u32).map(|x| self.dist.get(x, u)).collect();

        let improved = std::sync::atomic::AtomicUsize::new(0);
        {
            let data = self.dist.raw_mut();
            let view = ParSlice::new(data);
            pool.parallel_for(n, Schedule::Block, |_tid, x| {
                let via_u = col_u[x];
                if via_u == INF {
                    return;
                }
                let base = via_u.saturating_add(w);
                if base == INF {
                    return;
                }
                let mut local = 0usize;
                let row_base = x * n;
                for (y, &via_v) in row_v.iter().enumerate() {
                    let alt = base.saturating_add(via_v);
                    // SAFETY: row `x` of the matrix belongs exclusively to
                    // this iteration (rows are the parallel unit).
                    if alt < unsafe { view.read(row_base + y) } {
                        unsafe { view.write(row_base + y, alt) };
                        local += 1;
                    }
                }
                if local > 0 {
                    improved.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
        improved.into_inner()
    }

    /// Rebuilds the graph (base edges must be supplied by the caller) and
    /// recomputes from scratch — the escape hatch for deletions.
    pub fn recompute(
        base_edges: &[(u32, u32, u32)],
        n: usize,
        direction: Direction,
        threads: usize,
    ) -> Result<Self, parapsp_graph::GraphError> {
        let mut builder = GraphBuilder::new(n, direction);
        for &(u, v, w) in base_edges {
            builder.add_edge(u, v, w)?;
        }
        Ok(Self::new(&builder.build(), threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::apsp_dijkstra;
    use parapsp_graph::generate::{barabasi_albert, erdos_renyi_gnm, WeightSpec};

    fn graph_plus_edges(base: &CsrGraph, extra: &[(u32, u32, u32)]) -> CsrGraph {
        let mut builder = GraphBuilder::new(base.vertex_count(), base.direction());
        for (u, v, w) in base.logical_edges() {
            builder.add_edge(u, v, w).unwrap();
        }
        for &(u, v, w) in extra {
            builder.add_edge(u, v, w).unwrap();
        }
        builder.build()
    }

    #[test]
    fn insertions_match_full_recompute_directed() {
        let base = erdos_renyi_gnm(
            100,
            300,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 20 },
            90,
        )
        .unwrap();
        let pool = ThreadPool::new(4);
        let mut incremental = IncrementalApsp::new(&base, 4);
        let mut extra = Vec::new();
        // A deterministic stream of insertions, including weight decreases
        // on existing pairs.
        for i in 0..25u32 {
            let u = (i * 17) % 100;
            let v = (i * 29 + 3) % 100;
            if u == v {
                continue;
            }
            let w = 1 + (i % 7);
            incremental.insert_edge(u, v, w, &pool);
            extra.push((u, v, w));
            let expected = apsp_dijkstra(&graph_plus_edges(&base, &extra));
            assert_eq!(
                expected.first_difference(incremental.distances()),
                None,
                "after inserting {:?}",
                (u, v, w)
            );
        }
        assert_eq!(incremental.inserted_edges().len(), extra.len());
    }

    #[test]
    fn insertions_match_full_recompute_undirected() {
        let base = barabasi_albert(80, 2, WeightSpec::Uniform { lo: 1, hi: 9 }, 91).unwrap();
        let pool = ThreadPool::new(3);
        let mut incremental = IncrementalApsp::new(&base, 3);
        let inserts = [(0u32, 79u32, 1u32), (40, 41, 2), (5, 60, 1)];
        let mut extra = Vec::new();
        for &(u, v, w) in &inserts {
            incremental.insert_edge(u, v, w, &pool);
            extra.push((u, v, w));
        }
        let expected = apsp_dijkstra(&graph_plus_edges(&base, &extra));
        assert_eq!(expected.first_difference(incremental.distances()), None);
    }

    #[test]
    fn bridging_components_reports_improvements() {
        // Two disconnected cliques; the bridge connects 50 × 50 pairs.
        let base = CsrGraph::from_unit_edges(
            6,
            Direction::Undirected,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        )
        .unwrap();
        let pool = ThreadPool::new(2);
        let mut incremental = IncrementalApsp::new(&base, 2);
        assert_eq!(incremental.distances().get(0, 3), INF);
        let improved = incremental.insert_edge(2, 3, 1, &pool);
        assert!(improved > 0);
        assert_eq!(incremental.distances().get(0, 3), 2); // 0 — 2 — 3
        assert_eq!(incremental.distances().get(5, 0), 3); // 5 — 3 — 2 — 0
        assert!(incremental.distances().is_symmetric());
    }

    #[test]
    fn useless_insertion_changes_nothing() {
        let base = parapsp_graph::generate::complete_graph(20);
        let pool = ThreadPool::new(2);
        let mut incremental = IncrementalApsp::new(&base, 2);
        // A heavy parallel edge can't improve unit distances.
        let improved = incremental.insert_edge(3, 7, 100, &pool);
        assert_eq!(improved, 0);
    }

    #[test]
    fn recompute_escape_hatch() {
        let edges = vec![(0u32, 1u32, 2u32), (1, 2, 2)];
        let rebuilt = IncrementalApsp::recompute(&edges, 3, Direction::Directed, 2).unwrap();
        assert_eq!(rebuilt.distances().get(0, 2), 4);
    }

    use parapsp_graph::CsrGraph;
}
