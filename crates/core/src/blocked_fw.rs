//! Cache-blocked, parallel Floyd–Warshall — the related-work comparator.
//!
//! The paper's §6 contrasts ParAPSP with Katz & Kider's blocked
//! Floyd–Warshall for GPUs, noting its O(n³) complexity. This is the CPU
//! analogue: the classic three-phase tiled algorithm (pivot tile → pivot
//! row/column tiles → remaining tiles), with phases 2 and 3 parallelized
//! over independent tiles on the workspace thread pool. It lets the
//! benches reproduce the related-work shape — blocked FW wins on tiny
//! dense graphs, the O(n^2.4)-empirical ParAPSP takes over quickly.
//!
//! The algorithm lives in [`BlockedFwEngine`], driven by the unified
//! [`Runner`] pipeline with *pivot iterations* as its work units; it is
//! not a row-checkpointing engine (see [`Engine::row_checkpoints`]) —
//! until the last pivot finishes every cell may still shrink, so periodic
//! checkpoints are skipped and an interrupted run's checkpoint has zero
//! completed rows.

use std::time::Instant;

use parapsp_graph::{CsrGraph, INF};
use parapsp_parfor::{CancelStatus, ParSlice, Schedule, ThreadPool};

use crate::dist::DistanceMatrix;
use crate::engine::{Engine, Plan, RowsCtx, RowsOutcome, RunConfig, RunSummary};
use crate::persist::Checkpoint;

/// Relaxes tile `(bi, bj)` through pivot block `bk` on the flat matrix.
///
/// # Safety
///
/// The caller must guarantee that no other thread concurrently writes tile
/// `(bi, bj)` or any of the two pivot tiles being read.
#[allow(clippy::too_many_arguments)]
unsafe fn relax_tile(
    view: &ParSlice<'_, u32>,
    n: usize,
    block: usize,
    bi: usize,
    bj: usize,
    bk: usize,
) {
    let i_end = ((bi + 1) * block).min(n);
    let j_end = ((bj + 1) * block).min(n);
    let k_end = ((bk + 1) * block).min(n);
    for k in bk * block..k_end {
        for i in bi * block..i_end {
            // SAFETY: (i, k) is in the pivot column tile, never written in
            // the phase that calls us with this (bi, bj, bk) combination
            // (or it is our own tile, owned by this thread).
            let dik = unsafe { view.read(i * n + k) };
            if dik == INF {
                continue;
            }
            for j in bj * block..j_end {
                // SAFETY: same phase-disjointness argument for (k, j); the
                // written cell (i, j) lies in this thread's own tile.
                let dkj = unsafe { view.read(k * n + j) };
                let alt = dik.saturating_add(dkj);
                if alt < unsafe { view.read(i * n + j) } {
                    unsafe { view.write(i * n + j, alt) };
                }
            }
        }
    }
}

/// The blocked Floyd–Warshall engine: `block × block` tiles, one work unit
/// per pivot iteration, phases 2 and 3 of each pivot parallelized over
/// independent tiles.
///
/// Exact for any non-negative weights; O(n³) work, O(n²) memory. `block`
/// is clamped to `[8, n]`; 64 is a good default for `u32` cells. A
/// [`RunConfig::with_max_distance`] cap is applied as a post-filter (the
/// capped matrix equals the post-filtered exact one, since distances
/// compose). Resume input is accepted but ignored — FW checkpoints carry
/// no partial rows, so a resumed run recomputes from scratch.
#[derive(Debug)]
pub struct BlockedFwEngine {
    block: usize,
    n: usize,
    data: Option<Box<[u32]>>,
    cap: Option<u32>,
}

impl BlockedFwEngine {
    /// An engine with the given tile size (clamped to `[8, n]` at run
    /// time).
    pub fn new(block: usize) -> Self {
        BlockedFwEngine {
            block,
            n: 0,
            data: None,
            cap: None,
        }
    }
}

impl Engine for BlockedFwEngine {
    type Output = DistanceMatrix;

    fn name(&self) -> &str {
        "BlockedFW"
    }

    fn row_checkpoints(&self) -> bool {
        false
    }

    fn prepare(
        &mut self,
        graph: &CsrGraph,
        config: &RunConfig,
        _pool: &ThreadPool,
        _resume: Option<Checkpoint>,
    ) -> Plan {
        let t0 = Instant::now();
        let n = graph.vertex_count();
        let mut data: Box<[u32]> = vec![INF; n * n].into_boxed_slice();
        for v in 0..n {
            data[v * n + v] = 0;
        }
        for (u, v, w) in graph.arcs() {
            let cell = &mut data[u as usize * n + v as usize];
            *cell = (*cell).min(w);
        }
        self.block = self.block.max(8).min(n.max(1));
        self.n = n;
        self.data = Some(data);
        self.cap = config.kernel().max_distance;
        let tiles = if n == 0 { 0 } else { n.div_ceil(self.block) };
        Plan {
            units: (0..tiles as u32).collect(),
            ordering: t0.elapsed(),
        }
    }

    fn run_rows(&mut self, _graph: &CsrGraph, units: &[u32], ctx: &RowsCtx<'_>) -> RowsOutcome {
        let n = self.n;
        let block = self.block;
        let tiles = if n == 0 { 0 } else { n.div_ceil(block) };
        let data = self.data.as_mut().expect("prepare() not called");
        let view = ParSlice::new(&mut data[..]);
        for &unit in units {
            let bk = unit as usize;
            // The coarsest safe cancellation boundary — within one pivot
            // step the three phases form a dependency chain.
            if let Some(token) = ctx.token {
                let status = token.poll();
                if status.is_stop() {
                    return status;
                }
            }
            // Phase 1: the pivot tile, sequential (self-dependent).
            // SAFETY: single thread touches the matrix in this phase.
            unsafe { relax_tile(&view, n, block, bk, bk, bk) };

            // Phase 2: pivot row and pivot column tiles — each depends only
            // on itself and the (now final) pivot tile, so they all run in
            // parallel. 2·(tiles − 1) independent tiles.
            let others: Vec<usize> = (0..tiles).filter(|&t| t != bk).collect();
            if !others.is_empty() {
                let others_ref = &others;
                let view_ref = &view;
                ctx.pool.parallel_for(
                    others_ref.len() * 2,
                    Schedule::dynamic_cyclic(),
                    |_tid, idx| {
                        let t = others_ref[idx / 2];
                        // SAFETY: tiles are pairwise disjoint; reads touch only
                        // the pivot tile (finalized in phase 1) and the tile
                        // itself.
                        if idx % 2 == 0 {
                            unsafe { relax_tile(view_ref, n, block, bk, t, bk) };
                        // pivot row
                        } else {
                            unsafe { relax_tile(view_ref, n, block, t, bk, bk) };
                            // pivot column
                        }
                    },
                );

                // Phase 3: every remaining tile reads its pivot-row and
                // pivot-column tiles (finalized in phase 2) and writes only
                // itself — (tiles − 1)² independent tiles.
                ctx.pool.parallel_for(
                    others_ref.len() * others_ref.len(),
                    Schedule::dynamic_cyclic(),
                    |_tid, idx| {
                        let bi = others_ref[idx / others_ref.len()];
                        let bj = others_ref[idx % others_ref.len()];
                        // SAFETY: (bi, bj) is owned by this iteration; the
                        // tiles read — (bi, bk) and (bk, bj) — are not
                        // written during phase 3.
                        unsafe { relax_tile(view_ref, n, block, bi, bj, bk) };
                    },
                );
            }
        }
        CancelStatus::Continue
    }

    fn snapshot(&self) -> Checkpoint {
        // No final rows exist mid-FW; see the module docs. The checkpoint
        // is still a valid v2 file; resuming it recomputes everything.
        Checkpoint::new(DistanceMatrix::new_infinite(self.n), vec![false; self.n])
    }

    fn finish(self, _graph: &CsrGraph, _summary: RunSummary) -> DistanceMatrix {
        let n = self.n;
        let mut data = self.data.expect("prepare() not called");
        if let Some(cap) = self.cap {
            // Capped distances compose, so post-filtering the exact matrix
            // equals running a capped kernel.
            for i in 0..n {
                for j in 0..n {
                    if i != j && data[i * n + j] > cap {
                        data[i * n + j] = INF;
                    }
                }
            }
        }
        DistanceMatrix::from_raw(n, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{apsp_dijkstra, floyd_warshall};
    use crate::engine::Runner;
    use crate::outcome::RunOutcome;
    use parapsp_graph::generate::{barabasi_albert, erdos_renyi_gnm, WeightSpec};
    use parapsp_graph::Direction;
    use parapsp_parfor::CancelToken;

    fn blocked_floyd_warshall(graph: &CsrGraph, block: usize, pool: &ThreadPool) -> DistanceMatrix {
        Runner::new(RunConfig::new(pool.num_threads())).run_with_pool(
            BlockedFwEngine::new(block),
            graph,
            pool,
        )
    }

    fn blocked_floyd_warshall_cancellable(
        graph: &CsrGraph,
        block: usize,
        pool: &ThreadPool,
        token: &CancelToken,
    ) -> RunOutcome<DistanceMatrix> {
        Runner::new(RunConfig::new(pool.num_threads())).run_with_token(
            BlockedFwEngine::new(block),
            graph,
            token,
        )
    }

    #[test]
    fn matches_plain_floyd_warshall() {
        let g = erdos_renyi_gnm(
            150,
            900,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 20 },
            44,
        )
        .unwrap();
        let reference = floyd_warshall(&g);
        for block in [8usize, 16, 64, 200] {
            for threads in [1, 4] {
                let pool = ThreadPool::new(threads);
                let blocked = blocked_floyd_warshall(&g, block, &pool);
                assert_eq!(
                    reference.first_difference(&blocked),
                    None,
                    "block {block}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn matches_dijkstra_on_scale_free_graph() {
        let g = barabasi_albert(200, 3, WeightSpec::Unit, 45).unwrap();
        let pool = ThreadPool::new(4);
        let blocked = blocked_floyd_warshall(&g, 32, &pool);
        let reference = apsp_dijkstra(&g);
        assert_eq!(reference.first_difference(&blocked), None);
    }

    #[test]
    fn non_multiple_sizes_and_tiny_graphs() {
        // n not divisible by the block size exercises the edge tiles.
        let g = erdos_renyi_gnm(37, 200, Direction::Directed, WeightSpec::Unit, 46).unwrap();
        let pool = ThreadPool::new(3);
        let blocked = blocked_floyd_warshall(&g, 10, &pool);
        assert_eq!(floyd_warshall(&g).first_difference(&blocked), None);

        let empty = CsrGraph::from_unit_edges(0, Direction::Directed, &[]).unwrap();
        assert_eq!(blocked_floyd_warshall(&empty, 64, &pool).n(), 0);

        let single = CsrGraph::from_unit_edges(1, Direction::Directed, &[]).unwrap();
        let d = blocked_floyd_warshall(&single, 64, &pool);
        assert_eq!(d.get(0, 0), 0);
    }

    #[test]
    fn capped_run_equals_post_filtered_exact_matrix() {
        let g = erdos_renyi_gnm(
            80,
            500,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 9 },
            48,
        )
        .unwrap();
        let cap = 11u32;
        let exact = floyd_warshall(&g);
        let capped =
            Runner::new(RunConfig::new(3).with_max_distance(cap)).run(BlockedFwEngine::new(16), &g);
        for u in 0..80u32 {
            for v in 0..80u32 {
                let d = exact.get(u, v);
                let expected = if u != v && d > cap { INF } else { d };
                assert_eq!(capped.get(u, v), expected, "({u}, {v})");
            }
        }
    }

    #[test]
    fn cancellable_fw_completes_and_cancels() {
        let g = barabasi_albert(100, 3, WeightSpec::Unit, 47).unwrap();
        let pool = ThreadPool::new(4);
        // Untripped token: identical result.
        let token = parapsp_parfor::CancelToken::new();
        let out = blocked_floyd_warshall_cancellable(&g, 32, &pool, &token).unwrap_complete();
        let plain = blocked_floyd_warshall(&g, 32, &pool);
        assert_eq!(plain.first_difference(&out), None);
        // Cancelled mid-run (n=100, block=32 → 4 pivots; budget 2 stops at
        // the third): the checkpoint has zero completed rows by design.
        let token = parapsp_parfor::CancelToken::with_poll_budget(2);
        let outcome = blocked_floyd_warshall_cancellable(&g, 32, &pool, &token);
        let cp = outcome.into_checkpoint().expect("2 polls < 4 pivots");
        assert_eq!(cp.completed_count(), 0);
        let mut buf = Vec::new();
        crate::persist::write_checkpoint(&cp, &mut buf).unwrap();
        assert!(crate::persist::read_checkpoint(buf.as_slice()).is_ok());
    }

    use parapsp_graph::CsrGraph;
}
