//! The vectorized min-plus row-relaxation kernel.
//!
//! Row reuse (paper Alg. 1 lines 6–11) is a dense min-plus update: when the
//! dequeued vertex `t` has a published row, every vertex `v` is relaxed at
//! once via `row[v] = min(row[v], dt ⊕ t_row[v])`, where `⊕` is saturating
//! addition (so `INF = u32::MAX` is absorbing). On scale-free graphs that
//! single pass dominates APSP runtime, so this module provides it in three
//! interchangeable, bit-identical implementations:
//!
//! * [`RelaxImpl::Scalar`] — the original branchy per-element loop, kept as
//!   the semantic reference and the ablation baseline.
//! * [`RelaxImpl::Portable`] — a branch-free formulation over fixed 8×u32
//!   chunks, written so LLVM's autovectorizer turns it into SIMD on any
//!   target. Two identities make it branch-free:
//!   * saturating add: `dt ⊕ x = dt + min(x, !dt)` — `min(x, !dt)` clamps
//!     the addend so the sum never wraps and lands exactly on `u32::MAX`
//!     when it would have overflowed;
//!   * the guarded update `if alt < row[v] && alt <= cap { row[v] = alt }`
//!     is `row[v] = min(row[v], select(alt <= cap, alt, u32::MAX))`, a
//!     lane-wise select + min with no control dependence.
//! * [`RelaxImpl::Avx2`] — the same dataflow hand-written with `std::arch`
//!   AVX2 intrinsics (8 lanes per 256-bit op), selected at runtime via
//!   `is_x86_feature_detected!` and silently degrading to `Portable` where
//!   AVX2 is missing.
//!
//! All three return the number of improved lanes so callers can maintain
//! exact [`Counters::relaxations`](crate::stats::Counters) totals without
//! per-element counter writes (a per-element read-modify-write on a shared
//! counter field is precisely what blocks autovectorization of the loop).

/// Which implementation of [`relax_row`] to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RelaxImpl {
    /// The branchy per-element reference loop.
    Scalar,
    /// Branch-free 8-wide chunks relying on LLVM autovectorization.
    Portable,
    /// Explicit AVX2 intrinsics (x86_64 only); falls back to `Portable`
    /// when the CPU or target lacks AVX2.
    Avx2,
    /// Resolve at runtime: `Avx2` when available, else `Portable`.
    #[default]
    Auto,
}

impl RelaxImpl {
    /// Every selectable variant, in ablation order.
    pub const ALL: [RelaxImpl; 4] = [
        RelaxImpl::Scalar,
        RelaxImpl::Portable,
        RelaxImpl::Avx2,
        RelaxImpl::Auto,
    ];

    /// The concrete implementation this choice runs on the current machine
    /// (`Auto` and an unavailable `Avx2` both resolve to something real).
    pub fn resolve(self) -> RelaxImpl {
        match self {
            RelaxImpl::Auto => {
                if avx2_available() {
                    RelaxImpl::Avx2
                } else {
                    RelaxImpl::Portable
                }
            }
            RelaxImpl::Avx2 if !avx2_available() => RelaxImpl::Portable,
            other => other,
        }
    }

    /// Stable lowercase name (CLI values and benchmark labels).
    pub fn name(self) -> &'static str {
        match self {
            RelaxImpl::Scalar => "scalar",
            RelaxImpl::Portable => "portable",
            RelaxImpl::Avx2 => "avx2",
            RelaxImpl::Auto => "auto",
        }
    }

    /// Parses a [`RelaxImpl::name`] back into the variant: a lookup over
    /// [`RelaxImpl::ALL`], so the name table is the single source of truth
    /// (no shadow match to drift when a variant is added).
    pub fn parse(raw: &str) -> Option<RelaxImpl> {
        RelaxImpl::ALL.into_iter().find(|imp| imp.name() == raw)
    }
}

/// Best-effort software prefetch of the cache line holding `*ptr` into
/// all cache levels (`prefetcht0`).
///
/// A pure hint for the row-reuse fast path: the kernel calls it on the
/// head of the next reuse-candidate row so the line is (ideally) already
/// in cache when [`relax_row`] starts streaming it, and the hardware
/// prefetcher takes over from there. This is the dense half of
/// `Store::prefetch_row`; on delta/mmap backends the same hint becomes a
/// *decode-ahead* — a worker thread materializes the row into the
/// hot-row cache — so both tiers hide the next row's latency behind the
/// current row's relaxation. Compiles to nothing off x86_64, and
/// is always sound to issue — architecturally a prefetch performs no
/// memory access, so even a dangling address cannot fault.
#[inline(always)]
pub fn prefetch_read(ptr: *const u32) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint with no architectural memory
    // access; it is defined for arbitrary addresses.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

/// Whether the running CPU supports the AVX2 path.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Relaxes `row` against a published row: for every `v`,
/// `row[v] = min(row[v], dt ⊕ t_row[v])` where `⊕` saturates at
/// [`u32::MAX`] (= `INF`) and candidates above `cap` are discarded.
/// Returns the number of entries that improved.
///
/// Pass `cap = u32::MAX` for the uncapped kernel. All [`RelaxImpl`]
/// variants are bit-identical in both the resulting row and the count.
///
/// # Panics
///
/// Panics when `row` and `t_row` differ in length.
pub fn relax_row(imp: RelaxImpl, row: &mut [u32], t_row: &[u32], dt: u32, cap: u32) -> u64 {
    assert_eq!(row.len(), t_row.len(), "row length mismatch");
    match imp.resolve() {
        RelaxImpl::Scalar => relax_row_scalar(row, t_row, dt, cap),
        RelaxImpl::Portable => relax_row_portable(row, t_row, dt, cap),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `resolve` returns `Avx2` only when the CPU reports AVX2.
        RelaxImpl::Avx2 => unsafe { relax_row_avx2(row, t_row, dt, cap) },
        #[cfg(not(target_arch = "x86_64"))]
        RelaxImpl::Avx2 => unreachable!("Avx2 resolves to Portable off x86_64"),
        RelaxImpl::Auto => unreachable!("Auto resolves to a concrete impl"),
    }
}

/// The reference implementation: branchy, one element at a time.
pub fn relax_row_scalar(row: &mut [u32], t_row: &[u32], dt: u32, cap: u32) -> u64 {
    let mut improved = 0u64;
    for (mine, &via_t) in row.iter_mut().zip(t_row) {
        let alt = dt.saturating_add(via_t);
        if alt < *mine && alt <= cap {
            *mine = alt;
            improved += 1;
        }
    }
    improved
}

/// Branch-free portable implementation over fixed 8×u32 chunks.
///
/// Every operation in the chunk body is a lane-independent min / add /
/// select with no side exits, which is the shape LLVM's loop vectorizer
/// recognizes; the improvement count is accumulated per chunk (not per
/// element) so no scalar dependence chain crosses lanes.
pub fn relax_row_portable(row: &mut [u32], t_row: &[u32], dt: u32, cap: u32) -> u64 {
    // `dt + min(x, !dt)` never wraps: min(x, !dt) <= u32::MAX - dt.
    let not_dt = !dt;
    let mut improved = 0u64;
    let mut row_chunks = row.chunks_exact_mut(8);
    let mut t_chunks = t_row.chunks_exact(8);
    for (mine8, via8) in row_chunks.by_ref().zip(t_chunks.by_ref()) {
        let mut hits = 0u32;
        for (mine, &via_t) in mine8.iter_mut().zip(via8) {
            let alt = dt + via_t.min(not_dt);
            let capped = if alt <= cap { alt } else { u32::MAX };
            let new = (*mine).min(capped);
            hits += (new != *mine) as u32;
            *mine = new;
        }
        improved += u64::from(hits);
    }
    improved + relax_row_scalar(row_chunks.into_remainder(), t_chunks.remainder(), dt, cap)
}

/// Explicit AVX2 implementation: 8 lanes per iteration.
///
/// # Safety
///
/// The caller must ensure the running CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn relax_row_avx2(row: &mut [u32], t_row: &[u32], dt: u32, cap: u32) -> u64 {
    use std::arch::x86_64::*;

    debug_assert_eq!(row.len(), t_row.len());
    let n = row.len();
    let lanes = n - n % 8;
    // SAFETY (for every intrinsic below): unaligned loads/stores stay
    // within `row[..lanes]` / `t_row[..lanes]`, and AVX2 is enabled by
    // the caller contract.
    unsafe {
        let dt_v = _mm256_set1_epi32(dt as i32);
        let not_dt_v = _mm256_set1_epi32(!dt as i32);
        let cap_v = _mm256_set1_epi32(cap as i32);
        let inf_v = _mm256_set1_epi32(-1); // u32::MAX in every lane
        let mut improved = 0u64;
        let mut i = 0;
        while i < lanes {
            let mine = _mm256_loadu_si256(row.as_ptr().add(i) as *const __m256i);
            let via = _mm256_loadu_si256(t_row.as_ptr().add(i) as *const __m256i);
            // Saturating dt + via: clamp the addend so the sum cannot wrap.
            let alt = _mm256_add_epi32(dt_v, _mm256_min_epu32(via, not_dt_v));
            // Unsigned `alt <= cap` as `min(alt, cap) == alt` (AVX2 has no
            // unsigned compare; min+eq sidesteps the sign-flip trick).
            let le_cap = _mm256_cmpeq_epi32(_mm256_min_epu32(alt, cap_v), alt);
            // Lanes over the cap must not relax: substitute INF.
            let candidate = _mm256_blendv_epi8(inf_v, alt, le_cap);
            let new = _mm256_min_epu32(mine, candidate);
            let unchanged = _mm256_cmpeq_epi32(new, mine);
            let mask = _mm256_movemask_ps(_mm256_castsi256_ps(unchanged)) as u32 & 0xFF;
            improved += u64::from(8 - mask.count_ones());
            _mm256_storeu_si256(row.as_mut_ptr().add(i) as *mut __m256i, new);
            i += 8;
        }
        improved + relax_row_scalar(&mut row[lanes..], &t_row[lanes..], dt, cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_graph::INF;

    /// Tiny deterministic RNG (splitmix64) so the differential cases are
    /// reproducible without pulling the rand stub into unit tests.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_row(len: usize, seed: u64, inf_percent: u64, near_max: bool) -> Vec<u32> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                let r = splitmix(&mut s);
                if r % 100 < inf_percent {
                    INF
                } else if near_max {
                    // Values within 16 of u32::MAX: saturation territory.
                    u32::MAX - (r % 16) as u32
                } else {
                    (r % 1_000_000) as u32
                }
            })
            .collect()
    }

    fn concrete_impls() -> Vec<RelaxImpl> {
        let mut imps = vec![RelaxImpl::Scalar, RelaxImpl::Portable];
        if avx2_available() {
            imps.push(RelaxImpl::Avx2);
        }
        imps.push(RelaxImpl::Auto);
        imps
    }

    fn assert_all_impls_agree(row: &[u32], t_row: &[u32], dt: u32, cap: u32, context: &str) {
        let mut reference = row.to_vec();
        let ref_count = relax_row_scalar(&mut reference, t_row, dt, cap);
        for imp in concrete_impls() {
            let mut candidate = row.to_vec();
            let count = relax_row(imp, &mut candidate, t_row, dt, cap);
            assert_eq!(
                candidate,
                reference,
                "{context}: {} row differs from scalar",
                imp.name()
            );
            assert_eq!(
                count,
                ref_count,
                "{context}: {} count differs from scalar",
                imp.name()
            );
        }
    }

    #[test]
    fn simple_improvement_and_count() {
        let mut row = vec![10, 5, INF, 7];
        let t_row = vec![1, 9, 2, 3];
        let improved = relax_row(RelaxImpl::Scalar, &mut row, &t_row, 2, u32::MAX);
        // alt = [3, 11, 4, 5]: improves indices 0, 2, 3.
        assert_eq!(row, vec![3, 5, 4, 5]);
        assert_eq!(improved, 3);
    }

    #[test]
    fn cap_discards_candidates_beyond_it() {
        let mut row = vec![INF, INF, 4];
        let t_row = vec![1, 10, 1];
        let improved = relax_row(RelaxImpl::Portable, &mut row, &t_row, 2, 5);
        // alt = [3, 12, 3]; 12 > cap stays INF.
        assert_eq!(row, vec![3, INF, 3]);
        assert_eq!(improved, 2);
    }

    #[test]
    fn saturating_add_absorbs_inf() {
        let mut row = vec![INF; 9];
        let t_row = vec![INF, u32::MAX - 1, 0, 1, INF, 5, INF, u32::MAX - 2, INF];
        assert_all_impls_agree(&row.clone(), &t_row, 3, u32::MAX, "inf lanes");
        let improved = relax_row(RelaxImpl::Auto, &mut row, &t_row, 3, u32::MAX);
        // dt ⊕ INF and dt ⊕ (MAX-1) and dt ⊕ (MAX-2) all saturate to MAX:
        // no improvement over INF. Finite lanes improve.
        assert_eq!(row, vec![INF, INF, 3, 4, INF, 8, INF, INF, INF]);
        assert_eq!(improved, 3);
    }

    #[test]
    fn differential_random_rows() {
        for (case, len) in [1usize, 7, 8, 9, 63, 256, 1000].into_iter().enumerate() {
            let seed = case as u64 * 101 + 7;
            let row = random_row(len, seed, 20, false);
            let t_row = random_row(len, seed ^ 0xDEAD_BEEF, 20, false);
            for dt in [0u32, 1, 1_000_000, u32::MAX / 2, u32::MAX] {
                for cap in [0u32, 5, 1_500_000, u32::MAX - 1, u32::MAX] {
                    assert_all_impls_agree(
                        &row,
                        &t_row,
                        dt,
                        cap,
                        &format!("len={len} dt={dt} cap={cap}"),
                    );
                }
            }
        }
    }

    #[test]
    fn differential_near_overflow_values() {
        for len in [8usize, 12, 64, 129] {
            let row = random_row(len, 42, 10, true);
            let t_row = random_row(len, 43, 10, true);
            for dt in [0u32, 15, u32::MAX - 3, u32::MAX] {
                assert_all_impls_agree(&row, &t_row, dt, u32::MAX, &format!("near-max len={len}"));
                assert_all_impls_agree(&row, &t_row, dt, u32::MAX - 5, "near-max tight cap");
            }
        }
    }

    #[test]
    fn empty_rows_are_a_noop() {
        for imp in RelaxImpl::ALL {
            assert_eq!(relax_row(imp, &mut [], &[], 3, u32::MAX), 0);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = relax_row(RelaxImpl::Scalar, &mut [1, 2], &[1], 0, u32::MAX);
    }

    #[test]
    fn resolve_never_returns_auto_or_unavailable_avx2() {
        for imp in RelaxImpl::ALL {
            let resolved = imp.resolve();
            assert_ne!(resolved, RelaxImpl::Auto, "{}", imp.name());
            if resolved == RelaxImpl::Avx2 {
                assert!(avx2_available());
            }
        }
    }

    #[test]
    fn names_parse_roundtrip() {
        for imp in RelaxImpl::ALL {
            assert_eq!(RelaxImpl::parse(imp.name()), Some(imp));
        }
        assert_eq!(RelaxImpl::parse("sse9"), None);
        assert_eq!(RelaxImpl::default(), RelaxImpl::Auto);
    }
}
