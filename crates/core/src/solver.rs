//! Pluggable per-source SSSP row solvers (the `RowSolver` seam).
//!
//! The paper's engines all compute one row at a time, and until this
//! module the *how* was hard-wired to the modified Dijkstra in
//! [`crate::kernel`]. The seam here makes the row solver a run-time
//! choice while everything around it — the kernel's `Workspace` scratch, the
//! vectorized [`relax_row`] pass, the distance cap, the Release/Acquire
//! row publication — stays shared:
//!
//! * [`SolverKind::Dijkstra`] — the paper's FIFO label-correcting kernel
//!   (Peng's modified Dijkstra) with the row-reuse trick.
//! * [`SolverKind::Delta`] — classic Δ-stepping (Meyer–Sanders, evaluated
//!   for complex networks by Kranjčević, Palossi & Pintarelli): vertices
//!   bucketed by `⌊tent/Δ⌋`, light edges (`w ≤ Δ`) relaxed to a fixpoint
//!   per bucket, heavy edges once per removed vertex.
//! * [`SolverKind::Stepping`] — a bucket-fusion stepping variant in the
//!   Dong–Gu–Sun style: consecutive buckets are fused into one span
//!   (up to a batch budget) and the span is settled by a FIFO
//!   sub-frontier, trading Δ-stepping's strict bucket granularity for
//!   wider batches and no light/heavy split.
//! * [`SolverKind::Auto`] — probe the graph once ([`probe`]) and let
//!   [`autotune`] pick solver, Δ, schedule and relax implementation.
//!
//! Every solver computes *exact* capped SSSP, so all of them are
//! bit-identical on the final matrix (distances are unique); the engine
//! matrix test enforces this per solver × engine × fixture.
//!
//! # Row reuse per solver
//!
//! Reusing a published row means relaxing `D[t][*]` wholesale and
//! *skipping* `t`'s edge expansion, with reuse-improved vertices never
//! re-enqueued. That is sound in any solver (the candidates only
//! over-approximate), but *complete* only under a discipline where a
//! flagged vertex is guaranteed to be re-examined at its final distance
//! (or its final distance came from another complete row — Peng's
//! dominance argument). The FIFO kernel and the Δ-stepping solver keep
//! that discipline: every edge-relaxation improvement re-enqueues /
//! re-buckets the vertex, so its row fires again at the settled
//! distance. Crucially, reuse improvements must **bypass the buckets**:
//! a reused row improves vertices to arbitrary distances far above the
//! current bucket, and inserting those into the cyclic ring would
//! violate its `max_weight/Δ` live-window invariant (two live absolute
//! buckets aliasing one slot loses entries — that is where bucketed
//! relaxation makes naive reuse illegal).
//!
//! The fused-span stepping solver *declines* reuse via its capability
//! flag ([`SolverKind::supports_row_reuse`], mirroring the
//! [`EngineKind`](crate::EngineKind) capability tables): its span
//! extraction treats "no live entry at the vertex's current bucket" as
//! "settled and fully expanded", an invariant reuse breaks by improving
//! without inserting; keeping it legal would need a row re-application
//! on every span a reused vertex re-enters — an O(n) pass per re-entry
//! that forfeits exactly the batching the fusion buys (see DESIGN.md
//! §12 and EXPERIMENTS.md).
//!
//! Reuse rows are read through [`Store::lease_row`] (a [`RowLease`]
//! guard), so the trick fires identically on every store backend: dense
//! lends the row, delta/mmap pin a hot-cache entry for the relaxation
//! pass while [`Store::prefetch_row`] decode-ahead hints keep the next
//! candidate warm. `supports_row_reuse` composes with leases the obvious
//! way: a solver that declines reuse never calls `lease_row` at all.
//!
//! [`RowLease`]: crate::store::RowLease

use parapsp_graph::CsrGraph;
use parapsp_parfor::{spec, Schedule};

use crate::kernel::{modified_dijkstra, KernelOptions, Workspace};
use crate::relax::{relax_row, RelaxImpl};
use crate::stats::Counters;
use crate::store::{LeaseOrigin, Store};

// ---------------------------------------------------------------------------
// SolverKind — the CLI-facing choice
// ---------------------------------------------------------------------------

/// Which per-source SSSP solver computes each row.
///
/// All variants produce bit-identical distances; they differ in how they
/// order relaxations, which is a (graph-class-dependent) performance
/// choice. CLI spellings: `dijkstra`, `delta`, `delta:auto`, `delta:<Δ>`,
/// `stepping`, `auto`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// The paper's modified Dijkstra (FIFO label-correcting + row reuse).
    #[default]
    Dijkstra,
    /// Classic Δ-stepping with light/heavy edge bucketing.
    Delta {
        /// Bucket width; `None` picks Δ from the mean edge weight.
        delta: Option<u32>,
    },
    /// Bucket-fusion stepping (fused spans, no light/heavy split).
    Stepping,
    /// Probe the graph once and pick a concrete solver ([`autotune`]).
    Auto,
}

impl SolverKind {
    /// Every CLI spelling, for self-describing rejection messages.
    pub const POSSIBLE: &'static [&'static str] =
        &["dijkstra", "delta[:<Δ>|:auto]", "stepping", "auto"];

    /// Stable label: `dijkstra`, `delta:auto`, `delta:<Δ>`, `stepping`,
    /// `auto`. Round-trips through [`SolverKind::parse`].
    pub fn label(self) -> String {
        match self {
            SolverKind::Dijkstra => "dijkstra".to_owned(),
            SolverKind::Delta { delta: None } => "delta:auto".to_owned(),
            SolverKind::Delta { delta: Some(d) } => format!("delta:{d}"),
            SolverKind::Stepping => "stepping".to_owned(),
            SolverKind::Auto => "auto".to_owned(),
        }
    }

    /// Parses a CLI spelling; shares the spec helper (and error style)
    /// with `--schedule` parsing.
    pub fn parse(raw: &str) -> Result<SolverKind, String> {
        let (name, param) = spec::split_spec(raw);
        match name {
            "dijkstra" | "stepping" | "auto" if param.is_some() => {
                Err(spec::reject_param("solver", name))
            }
            "dijkstra" => Ok(SolverKind::Dijkstra),
            "stepping" => Ok(SolverKind::Stepping),
            "auto" => Ok(SolverKind::Auto),
            "delta" => match param {
                None | Some("auto") => Ok(SolverKind::Delta { delta: None }),
                Some(p) => Ok(SolverKind::Delta {
                    delta: Some(spec::parse_positive_param(
                        "solver",
                        "delta",
                        Some(p),
                        None,
                    )?),
                }),
            },
            _ => Err(spec::reject_unknown("solver", raw, Self::POSSIBLE)),
        }
    }

    /// Capability flag: whether this solver may apply the paper's
    /// row-reuse trick (see the module docs for why the stepping solver
    /// declines). `Auto` reports `true` because resolution always picks
    /// a concrete solver, which then answers for itself.
    pub fn supports_row_reuse(self) -> bool {
        !matches!(self, SolverKind::Stepping)
    }
}

impl std::str::FromStr for SolverKind {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        SolverKind::parse(raw)
    }
}

// ---------------------------------------------------------------------------
// Graph probe + auto-tuner
// ---------------------------------------------------------------------------

/// Cheap structural measurements driving [`autotune`]. One O(n + m) pass
/// plus two heap-Dijkstra sweeps; fully deterministic for a fixed graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphProbe {
    /// Vertex count.
    pub n: usize,
    /// Directed arc count.
    pub m: usize,
    /// Mean out-degree (`m / n`).
    pub density: f64,
    /// Max out-degree over mean out-degree (≈1 regular, large scale-free).
    pub degree_skew: f64,
    /// Smallest edge weight (0 on edgeless graphs).
    pub weight_min: u32,
    /// Largest edge weight (0 on edgeless graphs).
    pub weight_max: u32,
    /// Mean edge weight (0 on edgeless graphs).
    pub weight_mean: f64,
    /// Weighted eccentricity estimate from a double sweep: Dijkstra from
    /// the max-degree vertex, then from the farthest vertex found; the
    /// second sweep's largest finite distance. A lower bound on the true
    /// diameter, accurate enough to separate graph classes.
    pub approx_diameter: u32,
}

/// Probes `graph` once. Deterministic: ties (max-degree start vertex,
/// farthest vertex) break toward the lowest id.
pub fn probe(graph: &CsrGraph) -> GraphProbe {
    let n = graph.vertex_count();
    let m = graph.arc_count();
    let (mut max_deg, mut start) = (0u32, 0u32);
    for v in 0..n as u32 {
        let d = graph.out_degree(v);
        if d > max_deg {
            max_deg = d;
            start = v;
        }
    }
    let mean_deg = if n == 0 { 0.0 } else { m as f64 / n as f64 };
    let (weight_min, weight_max, weight_mean) = weight_stats(graph);
    let approx_diameter = if n == 0 || m == 0 {
        0
    } else {
        let mut dist = vec![parapsp_graph::INF; n];
        crate::baselines::dijkstra_sssp(graph, start, &mut dist);
        let far = farthest_finite(&dist).unwrap_or(start);
        crate::baselines::dijkstra_sssp(graph, far, &mut dist);
        dist.iter()
            .copied()
            .filter(|&d| d != parapsp_graph::INF)
            .max()
            .unwrap_or(0)
    };
    GraphProbe {
        n,
        m,
        density: mean_deg,
        degree_skew: if mean_deg > 0.0 {
            max_deg as f64 / mean_deg
        } else {
            1.0
        },
        weight_min,
        weight_max,
        weight_mean,
        approx_diameter,
    }
}

fn farthest_finite(dist: &[u32]) -> Option<u32> {
    let mut best: Option<(u32, u32)> = None;
    for (v, &d) in dist.iter().enumerate() {
        if d != parapsp_graph::INF && best.map(|(bd, _)| d > bd).unwrap_or(true) {
            best = Some((d, v as u32));
        }
    }
    best.map(|(_, v)| v)
}

/// `(min, max, mean)` edge weight in one pass; zeros on edgeless graphs.
fn weight_stats(graph: &CsrGraph) -> (u32, u32, f64) {
    let mut min = u32::MAX;
    let mut max = 0u32;
    let mut sum = 0u64;
    let mut count = 0u64;
    for v in 0..graph.vertex_count() as u32 {
        for &w in graph.weights(v) {
            min = min.min(w);
            max = max.max(w);
            sum += w as u64;
            count += 1;
        }
    }
    if count == 0 {
        (0, 0, 0.0)
    } else {
        (min, max, sum as f64 / count as f64)
    }
}

/// What [`autotune`] decided, plus the probe it decided from.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoChoice {
    /// A *concrete* solver (never [`SolverKind::Auto`], and Δ is pinned).
    pub solver: SolverKind,
    /// Recommended source-sweep schedule (work stealing on skewed
    /// degree distributions, the paper's dynamic-cyclic otherwise).
    pub schedule: Schedule,
    /// Recommended relaxation implementation (always runtime `Auto`).
    pub relax: RelaxImpl,
    /// The measurements the choice was derived from.
    pub probe: GraphProbe,
}

/// Δ from the probe: the mean edge weight (≥ 1). The classic guidance is
/// Δ = Θ(mean weight): buckets then hold one expected "hop" of the
/// frontier, so light-edge fixpoints stay short while buckets stay fat
/// enough to batch.
pub fn auto_delta(weight_mean: f64) -> u32 {
    (weight_mean.round() as u32).max(1)
}

/// Picks solver + Δ + schedule + relax from one [`probe`] pass.
///
/// The heuristic was fitted to the `solver_scaling` measurements
/// (BENCH_solver.json, discussed in EXPERIMENTS.md and DESIGN.md §12):
///
/// * uniform weights → `dijkstra` (the FIFO kernel is BFS-like and the
///   row-reuse trick dominates — the paper's home turf);
/// * strong degree skew (max/mean ≥ 8) → `dijkstra` (hub rows publish
///   early and get reused constantly) with a work-stealing sweep (row
///   costs are skewed too);
/// * dense (mean out-degree ≥ 6) *and* wide weight range (max/min ≥ 50)
///   → `delta` with Δ = mean weight / 4: the measured Δ-stepping win —
///   on Watts–Strogatz-style regular dense graphs with wide weights the
///   FIFO kernel re-relaxes ~30% more edges than the bucket discipline,
///   and the light/heavy-partitioned adjacency turns that into a
///   1.1–1.2× end-to-end win that grows with n;
/// * otherwise → `dijkstra` (including sparse wide graphs: the FIFO
///   kernel's relaxation count is near-optimal there and its lower
///   per-edge overhead keeps it ahead — measured, not assumed).
///
/// The tuner never picks `stepping`: across every class measured it
/// loses end-to-end, chiefly because its span extraction forfeits the
/// row-reuse trick (module docs). It stays independently selectable for
/// exactly that kind of honest comparison.
pub fn autotune(graph: &CsrGraph) -> AutoChoice {
    let p = probe(graph);
    let uniform = p.weight_min == p.weight_max;
    let skewed = p.degree_skew >= 8.0;
    let dense = p.density >= 6.0;
    let wide = p.weight_max as f64 / p.weight_min.max(1) as f64 >= 50.0;
    let solver = if !uniform && !skewed && dense && wide {
        // Δ-sweeps put the optimum near a quarter of the mean weight on
        // this class (finer buckets than the classic Δ = mean guidance).
        SolverKind::Delta {
            delta: Some((auto_delta(p.weight_mean) / 4).max(1)),
        }
    } else {
        SolverKind::Dijkstra
    };
    AutoChoice {
        solver,
        schedule: if skewed {
            Schedule::work_stealing()
        } else {
            Schedule::dynamic_cyclic()
        },
        relax: RelaxImpl::Auto,
        probe: p,
    }
}

// ---------------------------------------------------------------------------
// RowSolver — the resolved, per-run solver
// ---------------------------------------------------------------------------

/// Span batch target for the stepping solver: fuse buckets until the
/// extracted span holds at least this many vertices.
const STEPPING_RHO: usize = 64;
/// Most consecutive buckets one stepping span may fuse (bounds the
/// cyclic ring window).
const STEPPING_FUSE_MAX: u64 = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolved {
    Dijkstra,
    Delta,
    Stepping,
}

/// Light/heavy adjacency partition for Δ-stepping, built once per run at
/// resolve time: each vertex's edges are reordered light-first (`w ≤ Δ`),
/// so the light fixpoint and the heavy pass each scan one contiguous
/// slice — no per-edge weight test, no double traversal of the full
/// adjacency list (which is what made the naive formulation lose ~2× in
/// edge throughput to the FIFO kernel).
#[derive(Debug, Clone)]
struct LightHeavy {
    targets: Vec<u32>,
    weights: Vec<u32>,
    /// `n + 1` prefix offsets (CSR shape) into `targets`/`weights`.
    offsets: Vec<u32>,
    /// Per-vertex split: edges before it are light, from it on heavy.
    light_end: Vec<u32>,
}

impl LightHeavy {
    fn build(graph: &CsrGraph, delta: u32) -> LightHeavy {
        let n = graph.vertex_count();
        let m = graph.arc_count();
        let mut targets = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut light_end = Vec::with_capacity(n);
        offsets.push(0);
        for v in 0..n as u32 {
            for (u, w) in graph.out_edges(v) {
                if w <= delta {
                    targets.push(u);
                    weights.push(w);
                }
            }
            light_end.push(targets.len() as u32);
            for (u, w) in graph.out_edges(v) {
                if w > delta {
                    targets.push(u);
                    weights.push(w);
                }
            }
            offsets.push(targets.len() as u32);
        }
        LightHeavy {
            targets,
            weights,
            offsets,
            light_end,
        }
    }

    #[inline]
    fn light(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.light_end[v as usize] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    #[inline]
    fn heavy(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.light_end[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }
}

/// A [`SolverKind`] resolved against one graph: `Auto` collapsed to a
/// concrete solver, Δ pinned, the cyclic-ring width precomputed from the
/// maximum edge weight, and (for Δ-stepping) the adjacency re-laid-out
/// into its light/heavy partition. Resolution happens once per run
/// (engine `prepare`); `solve_row` is then allocation-free per source.
#[derive(Debug, Clone)]
pub(crate) struct RowSolver {
    kind: Resolved,
    delta: u32,
    ring: usize,
    partition: Option<LightHeavy>,
}

impl RowSolver {
    /// Resolves `options.solver` for `graph`.
    pub(crate) fn resolve(graph: &CsrGraph, options: KernelOptions) -> RowSolver {
        let concrete = match options.solver {
            SolverKind::Auto => autotune(graph).solver,
            other => other,
        };
        match concrete {
            SolverKind::Dijkstra => RowSolver {
                kind: Resolved::Dijkstra,
                delta: 1,
                ring: 1,
                partition: None,
            },
            SolverKind::Delta { delta } => {
                let (_, maxw, meanw) = weight_stats(graph);
                let delta = delta.unwrap_or_else(|| auto_delta(meanw)).max(1);
                RowSolver {
                    kind: Resolved::Delta,
                    delta,
                    ring: (maxw as u64).div_ceil(delta as u64) as usize + 2,
                    partition: Some(LightHeavy::build(graph, delta)),
                }
            }
            SolverKind::Stepping => {
                let (_, maxw, meanw) = weight_stats(graph);
                let delta = auto_delta(meanw);
                RowSolver {
                    kind: Resolved::Stepping,
                    delta,
                    ring: (maxw as u64).div_ceil(delta as u64) as usize
                        + STEPPING_FUSE_MAX as usize
                        + 2,
                    partition: None,
                }
            }
            SolverKind::Auto => unreachable!("autotune returns a concrete solver"),
        }
    }

    /// Computes row `s`, publishing it on completion. Same contract as
    /// [`modified_dijkstra`]: the caller is the unique owner of row `s`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn solve_row(
        &self,
        graph: &CsrGraph,
        s: u32,
        store: &Store,
        ws: &mut Workspace,
        options: KernelOptions,
        counters: &mut Counters,
        intermediate_credit: Option<&mut [u64]>,
    ) {
        match self.kind {
            Resolved::Dijkstra => {
                modified_dijkstra(graph, s, store, ws, options, counters, intermediate_credit)
            }
            Resolved::Delta => delta_row(
                self,
                graph,
                s,
                store,
                ws,
                options,
                counters,
                intermediate_credit,
            ),
            Resolved::Stepping => stepping_row(
                self,
                graph,
                s,
                store,
                ws,
                options,
                counters,
                intermediate_credit,
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Δ-stepping
// ---------------------------------------------------------------------------

/// Classic Δ-stepping from source `s`.
///
/// Buckets partition tentative distances into width-Δ ranges. The
/// current bucket is drained to a fixpoint over *light* edges (`w ≤ Δ`,
/// which can re-insert into the same bucket), then every removed vertex
/// relaxes its *heavy* edges once (`w > Δ`, which always lands in a
/// later bucket). Both passes scan contiguous slices of the
/// [`LightHeavy`] partition built at resolve time — no per-edge weight
/// test. Entries are lazily deleted: an improvement pushes a fresh
/// entry and the stale one is dropped at drain time when `tent/Δ` no
/// longer matches the drained bucket.
///
/// Row reuse (when `options.row_reuse`): a drained, non-stale vertex
/// with a published row relaxes the whole row at its current tentative
/// distance instead of expanding edges, and is excluded from the heavy
/// phase. Reuse improvements bypass the buckets (Peng's no-re-enqueue
/// rule — also what keeps the cyclic ring's live window intact); the
/// discipline stays complete because any *edge* improvement of the
/// reused vertex re-buckets it, firing the row again at the settled
/// distance, and purely-reuse-set distances are dominated by the row
/// that set them.
#[allow(clippy::too_many_arguments)]
fn delta_row(
    solver: &RowSolver,
    graph: &CsrGraph,
    s: u32,
    store: &Store,
    ws: &mut Workspace,
    options: KernelOptions,
    counters: &mut Counters,
    mut intermediate_credit: Option<&mut [u64]>,
) {
    let n = store.n();
    debug_assert_eq!(graph.vertex_count(), n);
    let delta = solver.delta as u64;
    let part = solver
        .partition
        .as_ref()
        .expect("delta resolved with a light/heavy partition");

    // SAFETY: the caller guarantees unique ownership of row `s` and that
    // it is unpublished; the borrow ends before publication below.
    let (row, staged) = match unsafe { store.try_row_mut(s) } {
        Some(row) => (row, false),
        None => {
            let buf = ws.row_buf.as_mut_slice();
            buf.fill(parapsp_graph::INF);
            (buf, true)
        }
    };
    row[s as usize] = 0;

    let cap = options.max_distance.unwrap_or(u32::MAX);
    let relax_impl = options.relax.resolve();
    // Δ-stepping keeps the reuse discipline complete (module docs), so the
    // kernel option alone decides.
    let reuse = options.row_reuse;
    let mut queue_pops = 0u64;
    let mut relaxations = 0u64;
    let mut row_reuses = 0u64;
    let mut lease_hits = 0u64;
    let mut lease_misses = 0u64;
    let mut decode_ahead_hits = 0u64;

    ws.buckets.reset(solver.ring);
    ws.buckets.push(0, s);
    let mut cur: u64 = 0;

    while ws.buckets.live() > 0 {
        // All live entries sit within `ring` absolute buckets of `cur`,
        // so the next non-empty slot is found in at most `ring` steps.
        let mut b = cur;
        for k in 0..solver.ring as u64 {
            if !ws.buckets.slot_is_empty(cur + k) {
                b = cur + k;
                break;
            }
        }
        debug_assert!(!ws.buckets.slot_is_empty(b), "live() > 0 but no slot found");

        // Light phase: drain bucket b to a fixpoint.
        debug_assert!(ws.removed.is_empty());
        while !ws.buckets.slot_is_empty(b) {
            ws.scratch.clear();
            ws.buckets.drain_into(b, &mut ws.scratch);
            // `scratch` is disjoint from `ws.buckets`/`ws.removed`, so the
            // pushes below never alias the list being iterated.
            for i in 0..ws.scratch.len() {
                let v = ws.scratch[i];
                let dv = row[v as usize];
                if dv as u64 / delta != b {
                    continue; // stale entry: a fresher one exists or it settled
                }
                queue_pops += 1;
                if reuse {
                    // Decode-ahead for the next drained entry, mirroring
                    // the FIFO kernel's queue-front prefetch: its row is
                    // being materialized while this one relaxes.
                    if let Some(&next) = ws.scratch.get(i + 1) {
                        store.prefetch_row(next);
                    }
                    if let Some(v_row) = store.lease_row(v) {
                        row_reuses += 1;
                        match v_row.origin() {
                            LeaseOrigin::CacheMiss => lease_misses += 1,
                            LeaseOrigin::DecodeAhead => {
                                lease_hits += 1;
                                decode_ahead_hits += 1;
                            }
                            LeaseOrigin::Lent | LeaseOrigin::CacheHit => lease_hits += 1,
                        }
                        relaxations += relax_row(relax_impl, row, &v_row, dv, cap);
                        continue; // row covers light *and* heavy continuations
                    }
                }
                if !ws.in_removed.get(v as usize) {
                    ws.in_removed.set(v as usize);
                    ws.removed.push(v);
                }
                let mut improved_someone = false;
                for (u, w) in part.light(v) {
                    let alt = dv.saturating_add(w);
                    if alt < row[u as usize] && alt <= cap {
                        row[u as usize] = alt;
                        relaxations += 1;
                        improved_someone = true;
                        ws.buckets.push(alt as u64 / delta, u);
                    }
                }
                if improved_someone && v != s {
                    if let Some(credit) = intermediate_credit.as_deref_mut() {
                        credit[v as usize] += 1;
                    }
                }
            }
        }

        // Heavy phase: every vertex settled in bucket b expands its
        // heavy edges once, at its (now final within the bucket) tent.
        for i in 0..ws.removed.len() {
            let v = ws.removed[i];
            let dv = row[v as usize];
            let mut improved_someone = false;
            for (u, w) in part.heavy(v) {
                let alt = dv.saturating_add(w);
                if alt < row[u as usize] && alt <= cap {
                    row[u as usize] = alt;
                    relaxations += 1;
                    improved_someone = true;
                    ws.buckets.push(alt as u64 / delta, u);
                }
            }
            if improved_someone && v != s {
                if let Some(credit) = intermediate_credit.as_deref_mut() {
                    credit[v as usize] += 1;
                }
            }
        }
        for i in 0..ws.removed.len() {
            ws.in_removed.clear(ws.removed[i] as usize);
        }
        ws.removed.clear();
        cur = b + 1;
    }

    counters.queue_pops += queue_pops;
    counters.relaxations += relaxations;
    counters.row_reuses += row_reuses;
    counters.lease_hits += lease_hits;
    counters.lease_misses += lease_misses;
    counters.decode_ahead_hits += decode_ahead_hits;
    counters.sources += 1;
    if staged {
        store.publish_from(s, row);
    } else {
        store.publish(s);
    }
}

// ---------------------------------------------------------------------------
// Bucket-fusion stepping
// ---------------------------------------------------------------------------

/// Bucket-fusion stepping from source `s`.
///
/// Buckets share the Δ-stepping ring, but instead of settling one
/// bucket at a time the solver *fuses* up to [`STEPPING_FUSE_MAX`]
/// consecutive buckets (stopping early once the span holds
/// [`STEPPING_RHO`] vertices) and settles the whole span with a FIFO
/// sub-frontier: improvements below the span threshold re-enter the
/// FIFO, improvements at or above it go back to the buckets (always
/// beyond the fused range, so processed spans never reopen). There is
/// no light/heavy split — the span threshold plays Δ's role
/// adaptively. Row reuse is gated off by capability (module docs).
#[allow(clippy::too_many_arguments)]
fn stepping_row(
    solver: &RowSolver,
    graph: &CsrGraph,
    s: u32,
    store: &Store,
    ws: &mut Workspace,
    options: KernelOptions,
    counters: &mut Counters,
    mut intermediate_credit: Option<&mut [u64]>,
) {
    let n = store.n();
    debug_assert_eq!(graph.vertex_count(), n);
    debug_assert!(ws.in_queue.none_set(), "dirty workspace");
    let delta = solver.delta as u64;

    // SAFETY: as in `delta_row`.
    let (row, staged) = match unsafe { store.try_row_mut(s) } {
        Some(row) => (row, false),
        None => {
            let buf = ws.row_buf.as_mut_slice();
            buf.fill(parapsp_graph::INF);
            (buf, true)
        }
    };
    row[s as usize] = 0;

    let cap = options.max_distance.unwrap_or(u32::MAX);
    let mut queue_pops = 0u64;
    let mut relaxations = 0u64;

    ws.buckets.reset(solver.ring);
    ws.buckets.push(0, s);
    let mut cur: u64 = 0;

    while ws.buckets.live() > 0 {
        let mut b = cur;
        for k in 0..solver.ring as u64 {
            if !ws.buckets.slot_is_empty(cur + k) {
                b = cur + k;
                break;
            }
        }
        debug_assert!(!ws.buckets.slot_is_empty(b), "live() > 0 but no slot found");

        // Fuse buckets b, b+1, … into one span until the batch budget is
        // met, seeding the FIFO with every current (non-stale) member.
        let mut last = b;
        let mut batch = 0usize;
        for off in 0..STEPPING_FUSE_MAX {
            let abs = b + off;
            last = abs;
            ws.scratch.clear();
            ws.buckets.drain_into(abs, &mut ws.scratch);
            for &v in ws.scratch.iter() {
                if row[v as usize] as u64 / delta == abs && !ws.in_queue.get(v as usize) {
                    ws.queue.push_back(v);
                    ws.in_queue.set(v as usize);
                    batch += 1;
                }
            }
            if batch >= STEPPING_RHO {
                break;
            }
        }
        // Everything strictly below this threshold is settled in-span.
        let threshold = (last + 1) * delta;

        while let Some(v) = ws.queue.pop_front() {
            ws.in_queue.clear(v as usize);
            queue_pops += 1;
            let dv = row[v as usize];
            debug_assert!((dv as u64) < threshold, "span member above threshold");
            let mut improved_someone = false;
            for (u, w) in graph.out_edges(v) {
                let alt = dv.saturating_add(w);
                if alt < row[u as usize] && alt <= cap {
                    row[u as usize] = alt;
                    relaxations += 1;
                    improved_someone = true;
                    if (alt as u64) < threshold {
                        if !ws.in_queue.get(u as usize) {
                            ws.queue.push_back(u);
                            ws.in_queue.set(u as usize);
                        }
                    } else {
                        // Beyond the span: always a bucket > `last`, so
                        // processed spans never reopen.
                        ws.buckets.push(alt as u64 / delta, u);
                    }
                }
            }
            if improved_someone && v != s {
                if let Some(credit) = intermediate_credit.as_deref_mut() {
                    credit[v as usize] += 1;
                }
            }
        }
        cur = last + 1;
    }

    counters.queue_pops += queue_pops;
    counters.relaxations += relaxations;
    counters.sources += 1;
    if staged {
        store.publish_from(s, row);
    } else {
        store.publish(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_graph::generate::{
        barabasi_albert, erdos_renyi_gnm, path_graph, star_graph, WeightSpec,
    };
    use parapsp_graph::{CsrGraph, Direction, INF};

    fn fixtures() -> Vec<(&'static str, CsrGraph)> {
        vec![
            (
                "er-wide",
                erdos_renyi_gnm(
                    48,
                    200,
                    Direction::Directed,
                    WeightSpec::Uniform { lo: 1, hi: 100 },
                    7,
                )
                .unwrap(),
            ),
            (
                "ba",
                barabasi_albert(56, 3, WeightSpec::Uniform { lo: 1, hi: 9 }, 21).unwrap(),
            ),
            ("path", path_graph(9, Direction::Directed)),
            ("star", star_graph(30)),
        ]
    }

    fn all_solver_kinds() -> Vec<SolverKind> {
        vec![
            SolverKind::Dijkstra,
            SolverKind::Delta { delta: None },
            SolverKind::Delta { delta: Some(3) },
            SolverKind::Stepping,
            SolverKind::Auto,
        ]
    }

    /// Full APSP sweep with the resolved solver, outside any engine.
    fn sweep_on(
        graph: &CsrGraph,
        options: KernelOptions,
        spec: &crate::store::StoreSpec,
    ) -> crate::DistanceMatrix {
        let n = graph.vertex_count();
        let solver = RowSolver::resolve(graph, options);
        let store = Store::new(n, spec);
        let mut ws = Workspace::new(n);
        let mut counters = Counters::default();
        for s in 0..n as u32 {
            solver.solve_row(graph, s, &store, &mut ws, options, &mut counters, None);
        }
        assert_eq!(counters.sources, n as u64);
        store.into_matrix()
    }

    fn sweep(graph: &CsrGraph, options: KernelOptions) -> crate::DistanceMatrix {
        sweep_on(graph, options, &crate::store::StoreSpec::dense())
    }

    #[test]
    fn every_solver_is_bit_identical_on_every_store_backend() {
        use crate::store::StoreSpec;
        for (name, graph) in fixtures() {
            let reference = sweep(&graph, KernelOptions::default());
            for kind in all_solver_kinds() {
                let options = KernelOptions {
                    solver: kind,
                    ..KernelOptions::default()
                };
                for spec in [StoreSpec::delta(4), StoreSpec::mmap(1 << 20)] {
                    let got = sweep_on(&graph, options, &spec);
                    assert_eq!(
                        got,
                        reference,
                        "{name}: solver {} on store {} diverged",
                        kind.label(),
                        spec.label()
                    );
                }
            }
        }
    }

    #[test]
    fn parse_accepts_every_cli_spelling() {
        assert_eq!("dijkstra".parse(), Ok(SolverKind::Dijkstra));
        assert_eq!("delta".parse(), Ok(SolverKind::Delta { delta: None }));
        assert_eq!("delta:auto".parse(), Ok(SolverKind::Delta { delta: None }));
        assert_eq!(
            "delta:12".parse(),
            Ok(SolverKind::Delta { delta: Some(12) })
        );
        assert_eq!("stepping".parse(), Ok(SolverKind::Stepping));
        assert_eq!("auto".parse(), Ok(SolverKind::Auto));
    }

    #[test]
    fn parse_rejects_malformed_specs_with_possible_values() {
        for bad in [
            "",
            "djkstra",
            "delta:0",
            "delta:wide",
            "stepping:4",
            "auto:1",
        ] {
            let err = bad.parse::<SolverKind>().unwrap_err();
            assert!(err.contains("solver"), "{bad}: {err}");
        }
        let err = "warp".parse::<SolverKind>().unwrap_err();
        assert!(
            err.contains("possible values") && err.contains("stepping"),
            "{err}"
        );
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for kind in all_solver_kinds() {
            assert_eq!(kind.label().parse(), Ok(kind), "{}", kind.label());
        }
    }

    #[test]
    fn row_reuse_capability_is_gated_only_for_stepping() {
        assert!(SolverKind::Dijkstra.supports_row_reuse());
        assert!(SolverKind::Delta { delta: None }.supports_row_reuse());
        assert!(SolverKind::Delta { delta: Some(4) }.supports_row_reuse());
        assert!(SolverKind::Auto.supports_row_reuse());
        assert!(!SolverKind::Stepping.supports_row_reuse());
    }

    #[test]
    fn every_solver_is_bit_identical_to_the_kernel() {
        for (name, graph) in fixtures() {
            let reference = sweep(&graph, KernelOptions::default());
            for kind in all_solver_kinds() {
                for row_reuse in [true, false] {
                    let options = KernelOptions {
                        solver: kind,
                        row_reuse,
                        ..KernelOptions::default()
                    };
                    let got = sweep(&graph, options);
                    assert_eq!(
                        got,
                        reference,
                        "{name}: solver {} (reuse={row_reuse}) diverged",
                        kind.label()
                    );
                }
            }
        }
    }

    #[test]
    fn every_solver_is_exact_under_a_distance_cap() {
        for (name, graph) in fixtures() {
            let full = sweep(&graph, KernelOptions::default());
            let n = graph.vertex_count();
            for cap in [0u32, 3, 17] {
                let options = KernelOptions {
                    max_distance: Some(cap),
                    ..KernelOptions::default()
                };
                for kind in all_solver_kinds() {
                    let got = sweep(
                        &graph,
                        KernelOptions {
                            solver: kind,
                            ..options
                        },
                    );
                    for u in 0..n as u32 {
                        for v in 0..n as u32 {
                            let want = match full.get(u, v) {
                                d if d <= cap => d,
                                _ => INF,
                            };
                            assert_eq!(
                                got.get(u, v),
                                want,
                                "{name}: solver {} cap {cap} at ({u},{v})",
                                kind.label()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cap_boundary_is_inclusive_at_exactly_cap_for_every_solver() {
        // 0 →2→ 1 →3→ 2 →4→ 3: d(0,3) = 9 exactly. A cap of 9 must keep
        // it; a cap of 8 must drop it but keep d(0,2) = 5.
        let g = CsrGraph::from_edges(4, Direction::Directed, &[(0, 1, 2), (1, 2, 3), (2, 3, 4)])
            .unwrap();
        for kind in all_solver_kinds() {
            let at = |cap: u32| {
                sweep(
                    &g,
                    KernelOptions {
                        solver: kind,
                        max_distance: Some(cap),
                        ..KernelOptions::default()
                    },
                )
            };
            let inclusive = at(9);
            assert_eq!(inclusive.get(0, 3), 9, "solver {}", kind.label());
            let exclusive = at(8);
            assert_eq!(exclusive.get(0, 3), INF, "solver {}", kind.label());
            assert_eq!(exclusive.get(0, 2), 5, "solver {}", kind.label());
        }
    }

    #[test]
    fn delta_of_zero_is_clamped_not_fatal() {
        let g = path_graph(6, Direction::Undirected);
        let reference = sweep(&g, KernelOptions::default());
        let got = sweep(
            &g,
            KernelOptions {
                solver: SolverKind::Delta { delta: Some(0) },
                ..KernelOptions::default()
            },
        );
        assert_eq!(got, reference);
    }

    #[test]
    fn probe_is_deterministic_and_sane() {
        for (name, graph) in fixtures() {
            let a = probe(&graph);
            let b = probe(&graph);
            assert_eq!(a, b, "{name}: probe must be deterministic");
            assert_eq!(a.n, graph.vertex_count());
            assert_eq!(a.m, graph.arc_count());
            assert!(a.weight_min <= a.weight_max, "{name}");
        }
        // Known values on a path: diameter = n - 1 with unit weights.
        let p = probe(&path_graph(9, Direction::Undirected));
        assert_eq!(p.approx_diameter, 8);
        assert_eq!((p.weight_min, p.weight_max), (1, 1));
    }

    #[test]
    fn autotune_always_picks_a_concrete_solver() {
        for (name, graph) in fixtures() {
            let choice = autotune(&graph);
            assert_ne!(choice.solver, SolverKind::Auto, "{name}");
            if let SolverKind::Delta { delta } = choice.solver {
                assert!(delta.is_some(), "{name}: auto must pin a concrete Δ");
            }
        }
        // Unit weights are the kernel's home turf.
        let unit = autotune(&path_graph(16, Direction::Undirected));
        assert_eq!(unit.solver, SolverKind::Dijkstra);
        // A hub-and-spoke graph is maximally degree-skewed.
        let hub = autotune(&star_graph(64));
        assert_eq!(hub.solver, SolverKind::Dijkstra);
        assert_eq!(hub.schedule, parapsp_parfor::Schedule::work_stealing());
        // Dense + regular + wide weight range is the measured Δ-stepping
        // win (Watts–Strogatz-style graphs).
        let dense_wide = autotune(
            &parapsp_graph::generate::watts_strogatz(
                300,
                8,
                0.2,
                WeightSpec::Uniform { lo: 1, hi: 1000 },
                3,
            )
            .unwrap(),
        );
        assert!(
            matches!(dense_wide.solver, SolverKind::Delta { delta: Some(d) } if d >= 1),
            "expected delta, got {}",
            dense_wide.solver.label()
        );
        // Sparse wide graphs stay on the kernel: measured, the FIFO
        // relaxation count is near-optimal there.
        let sparse_wide = autotune(
            &erdos_renyi_gnm(
                300,
                450,
                Direction::Directed,
                WeightSpec::Uniform { lo: 1, hi: 1000 },
                3,
            )
            .unwrap(),
        );
        assert_eq!(sparse_wide.solver, SolverKind::Dijkstra);
    }

    #[test]
    fn bucket_ring_push_drain_and_reset_retain_capacity() {
        let mut ring = crate::kernel::BucketRing::new();
        ring.reset(4);
        ring.push(0, 10);
        ring.push(5, 11); // wraps onto slot 1
        ring.push(1, 12);
        assert_eq!(ring.live(), 3);
        assert!(!ring.slot_is_empty(5));
        let mut out = Vec::new();
        ring.drain_into(5, &mut out);
        // Slot 5 % 4 == slot 1: both entries come out together (lazy
        // deletion sorts out staleness at the consumer).
        assert_eq!(out, vec![11, 12]);
        assert_eq!(ring.live(), 1);
        ring.reset(4);
        assert_eq!(ring.live(), 0);
        assert!(ring.slot_is_empty(0));
    }

    #[test]
    fn steady_state_rows_allocate_nothing() {
        let graph = erdos_renyi_gnm(
            40,
            160,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 20 },
            5,
        )
        .unwrap();
        let n = graph.vertex_count();
        for kind in [
            SolverKind::Dijkstra,
            SolverKind::Delta { delta: None },
            SolverKind::Stepping,
        ] {
            let options = KernelOptions {
                solver: kind,
                ..KernelOptions::default()
            };
            let solver = RowSolver::resolve(&graph, options);
            let mut ws = Workspace::new(n);
            let mut counters = Counters::default();
            // Warm sweep: scratch vectors and bucket slots grow to their
            // high-water marks here.
            let warm = Store::new(n, &crate::store::StoreSpec::dense());
            for s in 0..n as u32 {
                solver.solve_row(&graph, s, &warm, &mut ws, options, &mut counters, None);
            }
            // Steady state: a second identical sweep reusing the same
            // Workspace must not touch the heap at all. (Pinned for the
            // dense store only: staged backends encode/write per publish.)
            let store = Store::new(n, &crate::store::StoreSpec::dense());
            let before = crate::alloc_counter::count();
            for s in 0..n as u32 {
                solver.solve_row(&graph, s, &store, &mut ws, options, &mut counters, None);
            }
            let after = crate::alloc_counter::count();
            assert_eq!(
                after - before,
                0,
                "solver {} allocated in steady state",
                kind.label()
            );
        }
    }
}
