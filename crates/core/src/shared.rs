//! The shared distance matrix with per-row publication flags — the heart of
//! the parallel algorithms' memory model.
//!
//! # Protocol
//!
//! * Every row `s` has exactly one logical owner: the task running the
//!   modified Dijkstra from source `s`. Only the owner may call
//!   [`SharedDistState::row_mut`], and only before publication.
//! * When the owner finishes, it calls [`SharedDistState::publish`], which
//!   stores `flag[s] = true` with `Release` ordering. The row is immutable
//!   from then on.
//! * Any thread may call [`SharedDistState::published_row`]; an `Acquire`
//!   load of the flag synchronizes-with the owner's `Release` store, so a
//!   `Some` result hands back a fully written, final row (this is the
//!   message-passing pattern of Rust Atomics & Locks ch. 3).
//!
//! This mirrors the paper's `flag` vector (Alg. 1 line 6 / line 21): OpenMP
//! gets the same effect implicitly from its flush semantics; in Rust the
//! orderings are explicit.
//!
//! The [`Store`](crate::store::Store) facade generalizes this protocol to
//! non-dense backends, and its [`RowLease`](crate::store::RowLease) layer
//! generalizes the read side: every lease — a borrow here, a pinned
//! hot-cache entry elsewhere — is handed out only after the same
//! Acquire/Release handshake, so a lease always views a complete, final
//! row no matter where its bytes live (DESIGN.md §14).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

use parapsp_graph::INF;

use crate::dist::DistanceMatrix;

/// An `n × n` distance matrix shared across SSSP tasks, with one
/// publication flag per row.
pub(crate) struct SharedDistState {
    n: usize,
    cells: Box<[UnsafeCell<u32>]>,
    flags: Box<[AtomicBool]>,
}

// SAFETY: all mutable access goes through `row_mut`, whose contract makes
// the caller the unique owner of that row until `publish`; readers only see
// a row after the Acquire/Release handshake on its flag, at which point the
// row is never written again. `u32` itself is Send.
unsafe impl Sync for SharedDistState {}

impl SharedDistState {
    /// Allocates the matrix, filled with [`INF`], all rows unpublished.
    pub(crate) fn new(n: usize) -> Self {
        let len = n.checked_mul(n).expect("distance matrix size overflow");
        // Build as a plain Vec<u32> (memset-fast) and convert: UnsafeCell<T>
        // is repr(transparent) over T, so the layouts are identical.
        let plain: Box<[u32]> = vec![INF; len].into_boxed_slice();
        // SAFETY: Box<[u32]> and Box<[UnsafeCell<u32>]> have the same
        // layout (repr(transparent)), and ownership transfers intact.
        let cells: Box<[UnsafeCell<u32>]> =
            unsafe { Box::from_raw(Box::into_raw(plain) as *mut [UnsafeCell<u32>]) };
        let flags: Box<[AtomicBool]> = (0..n).map(|_| AtomicBool::new(false)).collect();
        SharedDistState { n, cells, flags }
    }

    /// Builds the state from a partially computed matrix: rows flagged in
    /// `completed` are pre-published (they are final — resumed kernels may
    /// reuse them immediately), the rest are reset to [`INF`] so their
    /// future owners find the untouched state the kernel contract expects.
    pub(crate) fn from_parts(dist: DistanceMatrix, completed: &[bool]) -> Self {
        let n = dist.n();
        assert_eq!(completed.len(), n, "one completed flag per row");
        let mut plain: Box<[u32]> = dist.into_raw();
        for (s, &done) in completed.iter().enumerate() {
            if !done {
                plain[s * n..(s + 1) * n].fill(INF);
            }
        }
        // SAFETY: same repr(transparent) cast as in `new`.
        let cells: Box<[UnsafeCell<u32>]> =
            unsafe { Box::from_raw(Box::into_raw(plain) as *mut [UnsafeCell<u32>]) };
        let flags: Box<[AtomicBool]> = completed
            .iter()
            .map(|&done| AtomicBool::new(done))
            .collect();
        SharedDistState { n, cells, flags }
    }

    /// Clones the published rows into a fresh matrix and reports which rows
    /// those are (the checkpoint payload). Must run while no row owner is
    /// active — the APSP drivers call it only between parallel sweeps.
    pub(crate) fn snapshot(&self) -> (DistanceMatrix, Vec<bool>) {
        let mut dist = DistanceMatrix::new_infinite(self.n);
        let mut completed = vec![false; self.n];
        for s in 0..self.n as u32 {
            if let Some(row) = self.published_row(s) {
                dist.copy_row_from(s, row);
                completed[s as usize] = true;
            }
        }
        (dist, completed)
    }

    /// Number of vertices.
    #[inline]
    pub(crate) fn n(&self) -> usize {
        self.n
    }

    /// Exclusive access to row `s`.
    ///
    /// # Safety
    ///
    /// The caller must be the unique owner of row `s`: no other `row_mut`
    /// for the same `s` may be live anywhere, and `publish(s)` must not
    /// have been called yet. The APSP drivers guarantee this by assigning
    /// each source to exactly one loop iteration of a permutation.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub(crate) unsafe fn row_mut(&self, s: u32) -> &mut [u32] {
        debug_assert!(
            !self.flags[s as usize].load(Ordering::Relaxed),
            "row {s} mutated after publication"
        );
        let start = s as usize * self.n;
        // SAFETY: in-bounds by construction; exclusivity by the caller.
        unsafe { std::slice::from_raw_parts_mut(self.cells[start].get(), self.n) }
    }

    /// Issues a software prefetch for the head of row `t`'s storage (see
    /// [`crate::relax::prefetch_read`]). A pure performance hint: valid
    /// for any in-range row, published or not, because a prefetch
    /// performs no architectural memory access.
    #[inline]
    pub(crate) fn prefetch_row(&self, t: u32) {
        let start = t as usize * self.n;
        crate::relax::prefetch_read(self.cells[start].get() as *const u32);
    }

    /// Marks row `s` complete and visible to all threads (Alg. 1 line 21).
    #[inline]
    pub(crate) fn publish(&self, s: u32) {
        self.flags[s as usize].store(true, Ordering::Release);
    }

    /// Returns row `t` if (and only if) it has been published. The returned
    /// slice is final — it will never change again.
    #[inline]
    pub(crate) fn published_row(&self, t: u32) -> Option<&[u32]> {
        if self.flags[t as usize].load(Ordering::Acquire) {
            let start = t as usize * self.n;
            // SAFETY: the Acquire load observed the owner's Release store,
            // so every write to this row happens-before this read, and the
            // protocol forbids further writes.
            Some(unsafe {
                std::slice::from_raw_parts(self.cells[start].get() as *const u32, self.n)
            })
        } else {
            None
        }
    }

    /// Number of published rows (diagnostics / tests).
    pub(crate) fn published_count(&self) -> usize {
        self.flags
            .iter()
            .filter(|f| f.load(Ordering::Relaxed))
            .count()
    }

    /// Consumes the state, yielding the final matrix. Intended to be called
    /// after all rows are published (single ownership again).
    pub(crate) fn into_matrix(self) -> DistanceMatrix {
        let n = self.n;
        // SAFETY: inverse of the cast in `new`; same layout, sole owner.
        let plain: Box<[u32]> = unsafe { Box::from_raw(Box::into_raw(self.cells) as *mut [u32]) };
        DistanceMatrix::from_raw(n, plain)
    }

    /// Consumes the state, yielding the matrix **and** the publication
    /// flags — [`SharedDistState::snapshot`] without the O(n²) clone, for
    /// stop paths that own the state and will not touch it again.
    pub(crate) fn into_parts(self) -> (DistanceMatrix, Vec<bool>) {
        let completed: Vec<bool> = self
            .flags
            .iter()
            .map(|f| f.load(Ordering::Acquire))
            .collect();
        (self.into_matrix(), completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_start_unpublished_and_infinite() {
        let state = SharedDistState::new(3);
        assert_eq!(state.n(), 3);
        assert_eq!(state.published_count(), 0);
        for t in 0..3 {
            assert!(state.published_row(t).is_none());
        }
        let m = state.into_matrix();
        assert!(m.as_slice().iter().all(|&d| d == INF));
    }

    #[test]
    fn publish_makes_row_visible_with_written_values() {
        let state = SharedDistState::new(2);
        {
            // SAFETY: single-threaded test, sole access to row 0.
            let row = unsafe { state.row_mut(0) };
            row[0] = 0;
            row[1] = 9;
        }
        state.publish(0);
        assert_eq!(state.published_row(0), Some(&[0u32, 9][..]));
        assert!(state.published_row(1).is_none());
        assert_eq!(state.published_count(), 1);
        let m = state.into_matrix();
        assert_eq!(m.get(0, 1), 9);
        assert_eq!(m.get(1, 0), INF);
    }

    #[test]
    fn from_parts_prepublishes_and_snapshot_round_trips() {
        let mut dist = DistanceMatrix::new_infinite(4);
        dist.copy_row_from(1, &[3, 0, 1, 2]);
        // Plant garbage in an incomplete row: from_parts must scrub it.
        dist.copy_row_from(2, &[9, 9, 9, 9]);
        let completed = vec![false, true, false, false];
        let state = SharedDistState::from_parts(dist, &completed);
        assert_eq!(state.published_count(), 1);
        assert_eq!(state.published_row(1), Some(&[3u32, 0, 1, 2][..]));
        assert!(state.published_row(2).is_none());
        let (snap, flags) = state.snapshot();
        assert_eq!(flags, completed);
        assert_eq!(snap.row(1), &[3, 0, 1, 2]);
        assert!(snap.row(0).iter().all(|&d| d == INF));
        let m = state.into_matrix();
        assert!(
            m.row(2).iter().all(|&d| d == INF),
            "garbage must not survive"
        );
    }

    #[test]
    fn cross_thread_publication_is_ordered() {
        // The Release/Acquire pair must make the fully written row visible.
        use std::sync::Arc;
        let state = Arc::new(SharedDistState::new(2_000));
        let n = state.n();
        let writer = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                // SAFETY: this thread is the sole owner of row 7.
                let row = unsafe { state.row_mut(7) };
                for (i, cell) in row.iter_mut().enumerate() {
                    *cell = i as u32;
                }
                state.publish(7);
            })
        };
        // Spin until the row appears, then verify every element.
        loop {
            if let Some(row) = state.published_row(7) {
                for (i, &v) in row.iter().enumerate() {
                    assert_eq!(v, i as u32, "row published before fully written");
                }
                break;
            }
            std::hint::spin_loop();
        }
        writer.join().unwrap();
        assert_eq!(state.published_count(), 1);
        let _ = (0..n).map(|_| ()).count();
    }
}
