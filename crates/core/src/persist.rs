//! Saving and loading distance matrices.
//!
//! An APSP run over a real dataset can take hours (the paper quotes
//! "several hours" for Flickr sequentially) — downstream analysis should
//! not have to recompute it. Two formats:
//!
//! * **binary** — `PAPD` magic, format version, `n` as u64, then `n²`
//!   little-endian `u32`s. Compact and exact; ~4·n² bytes.
//! * **TSV** — human-readable rows, `INF` spelled as `inf`; intended for
//!   spreadsheets and ad-hoc scripts on small matrices.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use parapsp_graph::INF;

use crate::dist::DistanceMatrix;

const MAGIC: &[u8; 4] = b"PAPD";
const VERSION: u8 = 1;

/// Errors from matrix persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not a matrix file, or is a newer/corrupt version.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(err) => write!(f, "I/O error: {err}"),
            PersistError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(err: std::io::Error) -> Self {
        PersistError::Io(err)
    }
}

/// Writes the binary format to any writer.
pub fn write_binary<W: Write>(dist: &DistanceMatrix, writer: W) -> Result<(), PersistError> {
    let mut writer = BufWriter::new(writer);
    writer.write_all(MAGIC)?;
    writer.write_all(&[VERSION])?;
    writer.write_all(&(dist.n() as u64).to_le_bytes())?;
    for &cell in dist.as_slice() {
        writer.write_all(&cell.to_le_bytes())?;
    }
    writer.flush()?;
    Ok(())
}

/// Reads the binary format from any reader.
pub fn read_binary<R: Read>(reader: R) -> Result<DistanceMatrix, PersistError> {
    let mut reader = BufReader::new(reader);
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Format(
            "missing PAPD magic — not a distance matrix file".into(),
        ));
    }
    let mut version = [0u8; 1];
    reader.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(PersistError::Format(format!(
            "unsupported format version {}",
            version[0]
        )));
    }
    let mut n_bytes = [0u8; 8];
    reader.read_exact(&mut n_bytes)?;
    let n = u64::from_le_bytes(n_bytes) as usize;
    let cells = n
        .checked_mul(n)
        .ok_or_else(|| PersistError::Format(format!("matrix size {n} overflows")))?;
    let mut data = vec![0u32; cells];
    let mut buf = [0u8; 4];
    for cell in data.iter_mut() {
        reader.read_exact(&mut buf)?;
        *cell = u32::from_le_bytes(buf);
    }
    // Trailing garbage indicates a corrupt/concatenated file.
    if reader.read(&mut buf)? != 0 {
        return Err(PersistError::Format("trailing bytes after matrix".into()));
    }
    Ok(DistanceMatrix::from_raw(n, data.into_boxed_slice()))
}

/// Writes a matrix to `path` in the binary format.
pub fn save_binary(dist: &DistanceMatrix, path: impl AsRef<Path>) -> Result<(), PersistError> {
    write_binary(dist, std::fs::File::create(path)?)
}

/// Loads a matrix from a binary file.
pub fn load_binary(path: impl AsRef<Path>) -> Result<DistanceMatrix, PersistError> {
    read_binary(std::fs::File::open(path)?)
}

/// Writes a tab-separated text dump (`inf` for unreachable pairs).
pub fn write_tsv<W: Write>(dist: &DistanceMatrix, writer: W) -> Result<(), PersistError> {
    let mut writer = BufWriter::new(writer);
    for (_, row) in dist.rows() {
        let mut first = true;
        for &cell in row {
            if !first {
                writer.write_all(b"\t")?;
            }
            first = false;
            if cell == INF {
                writer.write_all(b"inf")?;
            } else {
                write!(writer, "{cell}")?;
            }
        }
        writer.write_all(b"\n")?;
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParApsp;
    use parapsp_graph::generate::{barabasi_albert, WeightSpec};

    fn sample_matrix() -> DistanceMatrix {
        let g = barabasi_albert(60, 2, WeightSpec::Uniform { lo: 1, hi: 9 }, 5).unwrap();
        ParApsp::par_apsp(2).run(&g).dist
    }

    #[test]
    fn binary_round_trip_in_memory() {
        let dist = sample_matrix();
        let mut buf = Vec::new();
        write_binary(&dist, &mut buf).unwrap();
        assert_eq!(buf.len(), 4 + 1 + 8 + 60 * 60 * 4);
        let loaded = read_binary(buf.as_slice()).unwrap();
        assert_eq!(dist.first_difference(&loaded), None);
    }

    #[test]
    fn binary_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("parapsp-persist-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("matrix.bin");
        let dist = sample_matrix();
        save_binary(&dist, &path).unwrap();
        let loaded = load_binary(&path).unwrap();
        assert_eq!(dist.first_difference(&loaded), None);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(matches!(
            read_binary(&b"NOPE"[..]),
            Err(PersistError::Io(_)) | Err(PersistError::Format(_))
        ));
        let mut buf = Vec::new();
        write_binary(&DistanceMatrix::new_infinite(3), &mut buf).unwrap();
        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(read_binary(bad.as_slice()), Err(PersistError::Format(_))));
        // Wrong version.
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(read_binary(bad.as_slice()), Err(PersistError::Format(_))));
        // Truncated payload.
        let truncated = &buf[..buf.len() - 2];
        assert!(matches!(read_binary(truncated), Err(PersistError::Io(_))));
        // Trailing bytes.
        let mut extended = buf.clone();
        extended.push(0);
        assert!(matches!(
            read_binary(extended.as_slice()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn tsv_output_is_readable() {
        let mut m = DistanceMatrix::new_infinite(2);
        m.copy_row_from(0, &[0, 7]);
        m.copy_row_from(1, &[INF, 0]);
        let mut buf = Vec::new();
        write_tsv(&m, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "0\t7\ninf\t0\n");
    }

    #[test]
    fn empty_matrix_round_trips() {
        let dist = DistanceMatrix::new_infinite(0);
        let mut buf = Vec::new();
        write_binary(&dist, &mut buf).unwrap();
        let loaded = read_binary(buf.as_slice()).unwrap();
        assert_eq!(loaded.n(), 0);
    }
}
