//! Saving and loading distance matrices, plus partial-run checkpoints.
//!
//! An APSP run over a real dataset can take hours (the paper quotes
//! "several hours" for Flickr sequentially) — downstream analysis should
//! not have to recompute it, and a crashed run should not have to start
//! over. Three on-disk shapes:
//!
//! * **binary, version 1** — `PAPD` magic, format version, `n` as u64,
//!   then `n²` little-endian `u32`s. Compact and exact; ~4·n² bytes.
//! * **checkpoint, version 2** — same magic, version 2, `n`, the number
//!   of completed rows, a completed-row bitmap, then only the completed
//!   rows in ascending source order. A finished run's checkpoint is a
//!   complete matrix; a killed run's checkpoint resumes via
//!   [`crate::engine::Runner::run_resumed`].
//! * **run ledger, version 3** — same magic, version 3, `n`, a run id and
//!   driver epoch, then one *appended* framed record per completed row
//!   (source id, row length, payload, FNV-1a checksum). Unlike the
//!   checkpoint — which is rewritten whole on every flush — the ledger
//!   grows by O(row) per completed row, and recovery
//!   ([`RowLedger::open`]) truncates a torn tail and replays the longest
//!   valid prefix, so a crash mid-append loses at most the record being
//!   written.
//! * **TSV** — human-readable rows, `INF` spelled as `inf`; intended for
//!   spreadsheets and ad-hoc scripts on small matrices.
//!
//! Version skew is one-directional by design: [`read_checkpoint`] accepts
//! a version-1 full matrix (treated as "every row complete") and replays a
//! version-3 ledger (so `--resume` takes either artifact), while
//! [`read_binary`] rejects version-2/3 files so pre-checkpoint readers
//! fail loudly instead of misinterpreting a bitmap as distances.
//!
//! All readers treat the header as untrusted: payloads are read in
//! bounded chunks, so a tiny file whose header claims a multi-gigabyte
//! matrix fails with [`PersistError::Format`] instead of attempting the
//! allocation.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use parapsp_graph::INF;

use crate::dist::DistanceMatrix;

const MAGIC: &[u8; 4] = b"PAPD";
const VERSION: u8 = 1;
const CHECKPOINT_VERSION: u8 = 2;
const LEDGER_VERSION: u8 = 3;

/// Bytes before the first ledger record: magic, version, `n`, run id,
/// epoch.
const LEDGER_HEADER_LEN: u64 = 4 + 1 + 8 + 8 + 4;
/// Byte offset of the epoch field inside the ledger header.
const LEDGER_EPOCH_OFFSET: u64 = 4 + 1 + 8 + 8;

/// FNV-1a over a source id and its row payload (little-endian words).
///
/// The same checksum seals rows on the distributed wire and in the run
/// ledger, so a row gathered over the network and a row replayed from
/// disk are guarded by one algorithm.
pub fn row_checksum(source: u32, row: &[u32]) -> u32 {
    const OFFSET: u32 = 0x811C_9DC5;
    const PRIME: u32 = 0x0100_0193;
    let mut hash = OFFSET;
    let mut eat = |word: u32| {
        for byte in word.to_le_bytes() {
            hash ^= u32::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    eat(source);
    for &word in row {
        eat(word);
    }
    hash
}

/// Cells per chunked read: 64 Ki cells = 256 KiB. Memory for a payload
/// grows with the bytes that actually arrive, never with the header's
/// claimed size alone.
const READ_CHUNK_CELLS: usize = 1 << 16;

/// Errors from matrix persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not a matrix file, or is a newer/corrupt version.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(err) => write!(f, "I/O error: {err}"),
            PersistError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(err: std::io::Error) -> Self {
        PersistError::Io(err)
    }
}

/// Reads `cells` little-endian `u32`s in bounded chunks. `cells` comes
/// from an untrusted header, so nothing is allocated up front: the vector
/// grows only as data arrives, and a premature EOF is a [`PersistError::Format`]
/// naming how much of the promised payload was present.
fn read_cells<R: Read>(reader: &mut R, cells: usize) -> Result<Vec<u32>, PersistError> {
    let mut data = Vec::new();
    let mut bytes = vec![0u8; READ_CHUNK_CELLS.min(cells.max(1)) * 4];
    let mut remaining = cells;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK_CELLS);
        let chunk = &mut bytes[..take * 4];
        reader.read_exact(chunk).map_err(|err| {
            if err.kind() == std::io::ErrorKind::UnexpectedEof {
                PersistError::Format(format!(
                    "truncated payload: header promises {cells} cells, file ends within cell {}",
                    cells - remaining
                ))
            } else {
                PersistError::Io(err)
            }
        })?;
        data.extend(
            chunk
                .chunks_exact(4)
                .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        );
        remaining -= take;
    }
    Ok(data)
}

/// Rejects trailing garbage after a fully parsed payload (a corrupt or
/// concatenated file).
fn expect_eof<R: Read>(reader: &mut R) -> Result<(), PersistError> {
    let mut probe = [0u8; 1];
    if reader.read(&mut probe)? != 0 {
        return Err(PersistError::Format("trailing bytes after matrix".into()));
    }
    Ok(())
}

/// Parses the shared `PAPD` header, returning `(version, n)`.
fn read_header<R: Read>(reader: &mut R) -> Result<(u8, usize), PersistError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Format(
            "missing PAPD magic — not a distance matrix file".into(),
        ));
    }
    let mut version = [0u8; 1];
    reader.read_exact(&mut version)?;
    let mut n_bytes = [0u8; 8];
    reader.read_exact(&mut n_bytes)?;
    let n = u64::from_le_bytes(n_bytes);
    let n = usize::try_from(n)
        .ok()
        .filter(|n| n.checked_mul(*n).is_some())
        .ok_or_else(|| PersistError::Format(format!("matrix size {n} overflows")))?;
    Ok((version[0], n))
}

/// Serializes one row as little-endian bytes and writes it in a single
/// call (one syscall-sized write per row instead of one per cell).
fn write_row<W: Write>(writer: &mut W, row: &[u32], buf: &mut Vec<u8>) -> std::io::Result<()> {
    buf.clear();
    for &cell in row {
        buf.extend_from_slice(&cell.to_le_bytes());
    }
    writer.write_all(buf)
}

/// Writes the binary format to any writer.
pub fn write_binary<W: Write>(dist: &DistanceMatrix, writer: W) -> Result<(), PersistError> {
    let mut writer = BufWriter::new(writer);
    writer.write_all(MAGIC)?;
    writer.write_all(&[VERSION])?;
    writer.write_all(&(dist.n() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(dist.n() * 4);
    for (_, row) in dist.rows() {
        write_row(&mut writer, row, &mut buf)?;
    }
    writer.flush()?;
    Ok(())
}

/// Reads the binary format from any reader. Rejects checkpoint (version 2)
/// files: a partial matrix must be loaded with [`read_checkpoint`] so
/// missing rows cannot masquerade as real distances.
pub fn read_binary<R: Read>(reader: R) -> Result<DistanceMatrix, PersistError> {
    let mut reader = BufReader::new(reader);
    let (version, n) = read_header(&mut reader)?;
    if version != VERSION {
        return Err(PersistError::Format(format!(
            "unsupported format version {version} (checkpoints are version {CHECKPOINT_VERSION}; \
             load them with read_checkpoint)"
        )));
    }
    let data = read_cells(&mut reader, n * n)?;
    expect_eof(&mut reader)?;
    Ok(DistanceMatrix::from_raw(n, data.into_boxed_slice()))
}

/// Writes a matrix to `path` in the binary format.
pub fn save_binary(dist: &DistanceMatrix, path: impl AsRef<Path>) -> Result<(), PersistError> {
    write_binary(dist, std::fs::File::create(path)?)
}

/// Loads a matrix from a binary file.
pub fn load_binary(path: impl AsRef<Path>) -> Result<DistanceMatrix, PersistError> {
    read_binary(std::fs::File::open(path)?)
}

/// A partially computed distance matrix: the matrix itself plus a flag
/// per source row saying whether that row is final. Incomplete rows are
/// all-[`INF`], exactly the state a fresh kernel expects, so a resumed
/// run computes only the missing sources and lands on the bit-identical
/// matrix a fault-free run would have produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    dist: DistanceMatrix,
    completed: Vec<bool>,
}

impl Checkpoint {
    /// Wraps a matrix and its completed-row flags.
    ///
    /// Rows marked incomplete are scrubbed back to all-[`INF`]: the
    /// resume path owns them from scratch, so no half-written values may
    /// leak through.
    ///
    /// # Panics
    ///
    /// Panics when `completed.len() != dist.n()`.
    pub fn new(mut dist: DistanceMatrix, completed: Vec<bool>) -> Self {
        assert_eq!(
            completed.len(),
            dist.n(),
            "one completed flag per source row"
        );
        for (s, &done) in completed.iter().enumerate() {
            if !done {
                dist.row_mut(s as u32).fill(INF);
            }
        }
        Checkpoint { dist, completed }
    }

    /// A checkpoint in which every row is final (a finished run).
    pub fn complete(dist: DistanceMatrix) -> Self {
        let completed = vec![true; dist.n()];
        Checkpoint { dist, completed }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.dist.n()
    }

    /// Per-source completion flags.
    pub fn completed(&self) -> &[bool] {
        &self.completed
    }

    /// How many rows are final.
    pub fn completed_count(&self) -> usize {
        self.completed.iter().filter(|&&done| done).count()
    }

    /// Whether every row is final (the checkpoint is a full matrix).
    pub fn is_complete(&self) -> bool {
        self.completed.iter().all(|&done| done)
    }

    /// The matrix (incomplete rows are all-[`INF`]).
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.dist
    }

    /// Splits the checkpoint into matrix and flags.
    pub fn into_parts(self) -> (DistanceMatrix, Vec<bool>) {
        (self.dist, self.completed)
    }
}

/// Bitmap bytes needed for `n` rows.
fn bitmap_len(n: usize) -> usize {
    n.div_ceil(8)
}

/// Writes the version-2 checkpoint format: header, completed count,
/// completed-row bitmap (LSB-first within each byte, padding bits zero),
/// then only the completed rows in ascending source order.
pub fn write_checkpoint<W: Write>(cp: &Checkpoint, writer: W) -> Result<(), PersistError> {
    let n = cp.n();
    let mut writer = BufWriter::new(writer);
    writer.write_all(MAGIC)?;
    writer.write_all(&[CHECKPOINT_VERSION])?;
    writer.write_all(&(n as u64).to_le_bytes())?;
    writer.write_all(&(cp.completed_count() as u64).to_le_bytes())?;
    let mut bitmap = vec![0u8; bitmap_len(n)];
    for (s, &done) in cp.completed.iter().enumerate() {
        if done {
            bitmap[s / 8] |= 1 << (s % 8);
        }
    }
    writer.write_all(&bitmap)?;
    let mut buf = Vec::with_capacity(n * 4);
    for (s, &done) in cp.completed.iter().enumerate() {
        if done {
            write_row(&mut writer, cp.dist.row(s as u32), &mut buf)?;
        }
    }
    writer.flush()?;
    Ok(())
}

/// Reads a checkpoint. Accepts both format versions: a version-1 full
/// matrix loads as an all-rows-complete checkpoint (old outputs remain
/// valid resume inputs), and version 2 is the native checkpoint format
/// with its bitmap validated against the completed count and its padding
/// bits required to be zero.
pub fn read_checkpoint<R: Read>(reader: R) -> Result<Checkpoint, PersistError> {
    let mut reader = BufReader::new(reader);
    let (version, n) = read_header(&mut reader)?;
    match version {
        VERSION => {
            let data = read_cells(&mut reader, n * n)?;
            expect_eof(&mut reader)?;
            Ok(Checkpoint::complete(DistanceMatrix::from_raw(
                n,
                data.into_boxed_slice(),
            )))
        }
        CHECKPOINT_VERSION => {
            let mut count_bytes = [0u8; 8];
            reader.read_exact(&mut count_bytes)?;
            let claimed = u64::from_le_bytes(count_bytes);
            if claimed > n as u64 {
                return Err(PersistError::Format(format!(
                    "checkpoint claims {claimed} completed rows of only {n}"
                )));
            }
            let mut bitmap = vec![0u8; bitmap_len(n)];
            reader.read_exact(&mut bitmap)?;
            let completed: Vec<bool> = (0..n)
                .map(|s| bitmap[s / 8] & (1 << (s % 8)) != 0)
                .collect();
            let set = completed.iter().filter(|&&done| done).count();
            if set as u64 != claimed {
                return Err(PersistError::Format(format!(
                    "checkpoint bitmap has {set} rows set but the header claims {claimed}"
                )));
            }
            for s in n..bitmap.len() * 8 {
                if bitmap[s / 8] & (1 << (s % 8)) != 0 {
                    return Err(PersistError::Format(
                        "checkpoint bitmap has padding bits set".into(),
                    ));
                }
            }
            let cells = read_cells(&mut reader, set * n)?;
            expect_eof(&mut reader)?;
            let mut dist = DistanceMatrix::new_infinite(n);
            let mut rows = cells.chunks_exact(n.max(1));
            for (s, &done) in completed.iter().enumerate() {
                if done {
                    dist.copy_row_from(s as u32, rows.next().expect("one chunk per set bit"));
                }
            }
            Ok(Checkpoint { dist, completed })
        }
        LEDGER_VERSION => {
            let (checkpoint, _, _, _) = replay_ledger_body(&mut reader, n)?;
            Ok(checkpoint)
        }
        other => Err(PersistError::Format(format!(
            "unsupported format version {other}"
        ))),
    }
}

/// Atomically writes a checkpoint to `path`: the bytes land in a `.tmp`
/// sibling first, are fsynced, and only then renamed into place, so a
/// crash at any moment leaves either the previous checkpoint or the new
/// one — never a torn file. On Unix the parent directory is fsynced too —
/// and fsync failures are propagated, not swallowed — so the rename
/// itself survives a power cut; elsewhere directories can't reliably be
/// opened for syncing and the directory entry is left to the OS.
pub fn save_checkpoint(cp: &Checkpoint, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let path = path.as_ref();
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    let file = std::fs::File::create(&tmp)?;
    // write_checkpoint buffers internally and flushes before returning,
    // so by the time it returns every byte has reached the file object.
    write_checkpoint(cp, &file)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    Ok(())
}

/// Fsyncs the directory holding `path`, making a just-renamed entry
/// durable. A bare filename syncs `.`, the working directory.
#[cfg(unix)]
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        _ => Path::new("."),
    };
    std::fs::File::open(parent)?.sync_all()
}

/// Non-Unix platforms often refuse to open directories; the rename is
/// still atomic, only its durability across power loss is best-effort.
#[cfg(not(unix))]
fn sync_parent_dir(_path: &Path) -> std::io::Result<()> {
    Ok(())
}

/// Loads a checkpoint from a file (any format version, including a
/// version-3 run ledger, whose longest valid record prefix is replayed).
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<Checkpoint, PersistError> {
    read_checkpoint(std::fs::File::open(path)?)
}

// ---------------------------------------------------------------------------
// Run ledger (version 3): crash-safe O(row) incremental durability
// ---------------------------------------------------------------------------

/// When ledger appends reach the platter.
///
/// The checkpoint format fsyncs on every flush because it rewrites the
/// whole file; the ledger appends tiny records, so the caller chooses the
/// durability/throughput point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Fsync after every appended record: a crash loses nothing that
    /// [`RowLedger::append`] returned `Ok` for.
    Always,
    /// Fsync on [`RowLedger::commit`] (the `Runner` commits once per
    /// checkpoint chunk) and on [`RowLedger::finish`]. The default: a
    /// crash loses at most one uncommitted chunk.
    #[default]
    Commit,
    /// Never fsync explicitly; the OS flushes the page cache on its own
    /// schedule. Fastest, weakest — recovery still never yields a
    /// corrupted row, only fewer of them.
    Never,
}

impl FsyncPolicy {
    /// Every selectable policy, in display order.
    pub const ALL: [FsyncPolicy; 3] =
        [FsyncPolicy::Always, FsyncPolicy::Commit, FsyncPolicy::Never];

    /// The stable CLI name of this policy.
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Commit => "commit",
            FsyncPolicy::Never => "never",
        }
    }
}

/// Reads exactly `buf.len()` bytes, or returns `None` on a premature EOF
/// (a torn ledger tail, not an error). Genuine I/O failures propagate.
fn read_exact_or_torn<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<Option<()>, PersistError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Ok(None),
            Ok(got) => filled += got,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) => return Err(PersistError::Io(err)),
        }
    }
    Ok(Some(()))
}

/// Replays ledger records after the `(version, n)` header: reads the run
/// id and epoch, then accepts framed records until the first torn or
/// invalid one. Returns the replayed checkpoint, the run id, the epoch,
/// and the byte length of the valid prefix (header included) — everything
/// past that length is a torn tail the writer may truncate.
fn replay_ledger_body<R: Read>(
    reader: &mut R,
    n: usize,
) -> Result<(Checkpoint, u64, u32, u64), PersistError> {
    let mut id_bytes = [0u8; 8];
    reader.read_exact(&mut id_bytes)?;
    let run_id = u64::from_le_bytes(id_bytes);
    let mut epoch_bytes = [0u8; 4];
    reader.read_exact(&mut epoch_bytes)?;
    let epoch = u32::from_le_bytes(epoch_bytes);

    let mut dist = DistanceMatrix::new_infinite(n);
    let mut completed = vec![false; n];
    let mut valid = LEDGER_HEADER_LEN;
    let mut payload = Vec::new();
    loop {
        let mut record_header = [0u8; 8];
        if read_exact_or_torn(reader, &mut record_header)?.is_none() {
            break;
        }
        let source = u32::from_le_bytes(record_header[..4].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(record_header[4..].try_into().expect("4 bytes"));
        // A record whose coordinates disagree with the header is
        // indistinguishable from a torn/corrupt tail: stop replaying.
        if source as usize >= n || len as usize != n {
            break;
        }
        // Bounded payload read: memory grows with arriving data, and a
        // short read is a torn tail, not a format error.
        payload.clear();
        let mut chunk = [0u8; 4];
        let mut torn = false;
        for _ in 0..n {
            if read_exact_or_torn(reader, &mut chunk)?.is_none() {
                torn = true;
                break;
            }
            payload.push(u32::from_le_bytes(chunk));
        }
        if torn {
            break;
        }
        let mut sum_bytes = [0u8; 4];
        if read_exact_or_torn(reader, &mut sum_bytes)?.is_none() {
            break;
        }
        if u32::from_le_bytes(sum_bytes) != row_checksum(source, &payload) {
            break;
        }
        dist.copy_row_from(source, &payload);
        completed[source as usize] = true;
        valid += 8 + 4 * n as u64 + 4;
    }
    Ok((Checkpoint { dist, completed }, run_id, epoch, valid))
}

/// A crash-safe append-only run ledger: one framed record per completed
/// row, recovered by replaying the longest valid prefix.
///
/// Where [`save_checkpoint`] rewrites O(n²) bytes per flush, the ledger
/// appends O(n) bytes per completed row — the per-source decomposition
/// makes every completed row independently final, so appending it once is
/// all the durability a restart needs. The header carries a `run_id`
/// (minted at [`RowLedger::create`]) and an `epoch` (bumped on every
/// [`RowLedger::open`] of an existing file), which the distributed driver
/// hands to its workers so a restarted driver can reject handshakes from
/// a different run or a stale incarnation.
#[derive(Debug)]
pub struct RowLedger {
    writer: BufWriter<std::fs::File>,
    path: PathBuf,
    n: usize,
    policy: FsyncPolicy,
    run_id: u64,
    epoch: u32,
    records: u64,
    dirty: bool,
    buf: Vec<u8>,
}

/// Mints a run id that is unique for practical purposes without a
/// dependency on an RNG crate: wall-clock nanoseconds and the process id,
/// mixed through splitmix64. Never returns 0 — that value is reserved for
/// "no previous run" in the distributed handshake. Used by
/// [`RowLedger::create`], and by the distributed driver for ledger-less
/// runs that still need a run identity to hand their workers.
pub fn mint_run_id() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut z = nanos ^ (u64::from(std::process::id()) << 32);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)).max(1) // 0 is reserved for "no previous run" in handshakes
}

impl RowLedger {
    /// Creates a fresh ledger at `path` (truncating any existing file)
    /// for an `n`-vertex run, minting a new run id at epoch 0. The header
    /// is written and — unless the policy is [`FsyncPolicy::Never`] —
    /// fsynced along with its directory entry before this returns.
    pub fn create(
        path: impl Into<PathBuf>,
        n: usize,
        policy: FsyncPolicy,
    ) -> Result<RowLedger, PersistError> {
        let path = path.into();
        let file = std::fs::File::create(&path)?;
        let mut ledger = RowLedger {
            writer: BufWriter::new(file),
            path,
            n,
            policy,
            run_id: mint_run_id(),
            epoch: 0,
            records: 0,
            dirty: false,
            buf: Vec::new(),
        };
        ledger.writer.write_all(MAGIC)?;
        ledger.writer.write_all(&[LEDGER_VERSION])?;
        ledger.writer.write_all(&(n as u64).to_le_bytes())?;
        ledger.writer.write_all(&ledger.run_id.to_le_bytes())?;
        ledger.writer.write_all(&ledger.epoch.to_le_bytes())?;
        ledger.writer.flush()?;
        if ledger.policy != FsyncPolicy::Never {
            ledger.writer.get_ref().sync_all()?;
            sync_parent_dir(&ledger.path)?;
        }
        Ok(ledger)
    }

    /// Opens `path` for appending, recovering whatever a previous
    /// incarnation managed to write: the longest valid record prefix is
    /// replayed into the returned [`Checkpoint`], the torn tail (if any)
    /// is truncated away, and the header's epoch is bumped — so workers
    /// still holding state from the previous driver incarnation can be
    /// told apart. A missing or empty file becomes a fresh
    /// [`RowLedger::create`].
    ///
    /// Fails with [`PersistError::Format`] when the file exists but is
    /// not an `n`-vertex ledger (wrong magic, version, or size) — an
    /// existing artifact is never silently clobbered.
    pub fn open(
        path: impl Into<PathBuf>,
        n: usize,
        policy: FsyncPolicy,
    ) -> Result<(RowLedger, Checkpoint), PersistError> {
        let path = path.into();
        let mut file = match std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
        {
            Ok(file) => file,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                let ledger = RowLedger::create(path, n, policy)?;
                let empty = Checkpoint::new(DistanceMatrix::new_infinite(n), vec![false; n]);
                return Ok((ledger, empty));
            }
            Err(err) => return Err(PersistError::Io(err)),
        };
        if file.metadata()?.len() == 0 {
            drop(file);
            let ledger = RowLedger::create(path, n, policy)?;
            let empty = Checkpoint::new(DistanceMatrix::new_infinite(n), vec![false; n]);
            return Ok((ledger, empty));
        }
        let (checkpoint, run_id, epoch, valid) = {
            let mut reader = BufReader::new(&mut file);
            let (version, file_n) = read_header(&mut reader)?;
            if version != LEDGER_VERSION {
                return Err(PersistError::Format(format!(
                    "not a run ledger: format version {version} \
                     (ledgers are version {LEDGER_VERSION})"
                )));
            }
            if file_n != n {
                return Err(PersistError::Format(format!(
                    "ledger is for {file_n} vertices but this run has {n}"
                )));
            }
            replay_ledger_body(&mut reader, n)?
        };
        use std::io::Seek as _;
        let epoch = epoch.wrapping_add(1);
        file.seek(std::io::SeekFrom::Start(LEDGER_EPOCH_OFFSET))?;
        file.write_all(&epoch.to_le_bytes())?;
        // Truncate the torn tail so the next append extends the valid
        // prefix instead of burying garbage mid-file.
        file.set_len(valid)?;
        file.seek(std::io::SeekFrom::Start(valid))?;
        if policy != FsyncPolicy::Never {
            file.sync_all()?;
        }
        let records = checkpoint.completed_count() as u64;
        let ledger = RowLedger {
            writer: BufWriter::new(file),
            path,
            n,
            policy,
            run_id,
            epoch,
            records,
            dirty: false,
            buf: Vec::new(),
        };
        Ok((ledger, checkpoint))
    }

    /// Appends one completed row. With [`FsyncPolicy::Always`] the record
    /// is durable when this returns; otherwise it becomes durable at the
    /// next [`RowLedger::commit`] (or when the OS flushes).
    ///
    /// # Panics
    ///
    /// Panics when `row.len()` differs from the ledger's `n` — rows are
    /// final and full-length by construction, so a short row is a caller
    /// bug, not a runtime condition.
    pub fn append(&mut self, source: u32, row: &[u32]) -> Result<(), PersistError> {
        assert_eq!(row.len(), self.n, "ledger rows are full n-length rows");
        self.buf.clear();
        self.buf.extend_from_slice(&source.to_le_bytes());
        self.buf
            .extend_from_slice(&(row.len() as u32).to_le_bytes());
        for &cell in row {
            self.buf.extend_from_slice(&cell.to_le_bytes());
        }
        self.buf
            .extend_from_slice(&row_checksum(source, row).to_le_bytes());
        self.writer.write_all(&self.buf)?;
        self.records += 1;
        self.dirty = true;
        if self.policy == FsyncPolicy::Always {
            self.writer.flush()?;
            self.writer.get_ref().sync_data()?;
            self.dirty = false;
        }
        Ok(())
    }

    /// Pushes buffered appends to the OS and — except under
    /// [`FsyncPolicy::Never`] — fsyncs them.
    pub fn commit(&mut self) -> Result<(), PersistError> {
        if !self.dirty {
            return Ok(());
        }
        self.writer.flush()?;
        if self.policy != FsyncPolicy::Never {
            self.writer.get_ref().sync_data()?;
        }
        self.dirty = false;
        Ok(())
    }

    /// Commits outstanding appends and closes the ledger.
    pub fn finish(mut self) -> Result<(), PersistError> {
        self.commit()
    }

    /// The ledger's destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The run id minted when the ledger was created.
    pub fn run_id(&self) -> u64 {
        self.run_id
    }

    /// The driver incarnation count: 0 for a fresh ledger, bumped by
    /// every recovery-open of an existing file.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Records appended so far, replayed ones included.
    pub fn records(&self) -> u64 {
        self.records
    }
}

/// Writes a tab-separated text dump (`inf` for unreachable pairs), one
/// buffered write per row.
pub fn write_tsv<W: Write>(dist: &DistanceMatrix, writer: W) -> Result<(), PersistError> {
    use std::fmt::Write as _;
    let mut writer = BufWriter::new(writer);
    let mut line = String::new();
    for (_, row) in dist.rows() {
        line.clear();
        for (i, &cell) in row.iter().enumerate() {
            if i > 0 {
                line.push('\t');
            }
            if cell == INF {
                line.push_str("inf");
            } else {
                write!(line, "{cell}").expect("writing to a String cannot fail");
            }
        }
        line.push('\n');
        writer.write_all(line.as_bytes())?;
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ApspEngine, RunConfig, Runner};
    use parapsp_graph::generate::{barabasi_albert, WeightSpec};

    fn sample_matrix() -> DistanceMatrix {
        let g = barabasi_albert(60, 2, WeightSpec::Uniform { lo: 1, hi: 9 }, 5).unwrap();
        Runner::new(RunConfig::par_apsp(2))
            .run(ApspEngine::new(), &g)
            .dist
    }

    fn partial_checkpoint() -> Checkpoint {
        let dist = sample_matrix();
        let completed: Vec<bool> = (0..dist.n()).map(|s| s % 3 != 1).collect();
        Checkpoint::new(dist, completed)
    }

    #[test]
    fn binary_round_trip_in_memory() {
        let dist = sample_matrix();
        let mut buf = Vec::new();
        write_binary(&dist, &mut buf).unwrap();
        assert_eq!(buf.len(), 4 + 1 + 8 + 60 * 60 * 4);
        let loaded = read_binary(buf.as_slice()).unwrap();
        assert_eq!(dist.first_difference(&loaded), None);
    }

    #[test]
    fn binary_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("parapsp-persist-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("matrix.bin");
        let dist = sample_matrix();
        save_binary(&dist, &path).unwrap();
        let loaded = load_binary(&path).unwrap();
        assert_eq!(dist.first_difference(&loaded), None);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(matches!(
            read_binary(&b"NOPE"[..]),
            Err(PersistError::Io(_)) | Err(PersistError::Format(_))
        ));
        let mut buf = Vec::new();
        write_binary(&DistanceMatrix::new_infinite(3), &mut buf).unwrap();
        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_binary(bad.as_slice()),
            Err(PersistError::Format(_))
        ));
        // Wrong version.
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(
            read_binary(bad.as_slice()),
            Err(PersistError::Format(_))
        ));
        // Truncated payload — caught as a format error before any
        // allocation proportional to the claimed size.
        let truncated = &buf[..buf.len() - 2];
        assert!(matches!(
            read_binary(truncated),
            Err(PersistError::Format(_))
        ));
        // Trailing bytes.
        let mut extended = buf.clone();
        extended.push(0);
        assert!(matches!(
            read_binary(extended.as_slice()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn forged_giant_header_fails_without_allocating() {
        // 4 GiB-matrix header followed by a handful of real bytes: the
        // chunked reader must bail on the missing payload, not allocate
        // cells for the claimed n².
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        buf.extend_from_slice(&(1u64 << 16).to_le_bytes());
        buf.extend_from_slice(&[7u8; 64]);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "got {err}");
        assert!(err.to_string().contains("truncated"), "got {err}");
    }

    #[test]
    fn checkpoint_round_trip_partial_and_complete() {
        for cp in [partial_checkpoint(), Checkpoint::complete(sample_matrix())] {
            let mut buf = Vec::new();
            write_checkpoint(&cp, &mut buf).unwrap();
            let loaded = read_checkpoint(buf.as_slice()).unwrap();
            assert_eq!(loaded, cp);
        }
    }

    #[test]
    fn checkpoint_round_trip_on_disk_is_atomic() {
        let dir = std::env::temp_dir().join("parapsp-persist-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("partial.ckpt");
        let cp = partial_checkpoint();
        save_checkpoint(&cp, &path).unwrap();
        // The staging file is renamed away.
        assert!(!dir.join("partial.ckpt.tmp").exists());
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded, cp);
        std::fs::remove_file(path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn bare_filename_syncs_the_working_directory() {
        // No parent component in the path: the directory fsync must fall
        // back to `.` instead of failing or silently skipping durability.
        super::sync_parent_dir(Path::new("bare.ckpt")).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unsyncable_parent_directory_is_an_error_not_a_shrug() {
        // The checkpoint lands in a directory that vanishes between the
        // rename and the fsync — impossible to arrange reliably — so
        // instead exercise the helper directly with a parent that cannot
        // be opened.
        let err = super::sync_parent_dir(Path::new("/definitely/not/a/dir/x.ckpt")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn checkpoint_stores_only_completed_rows() {
        let cp = partial_checkpoint();
        let mut buf = Vec::new();
        write_checkpoint(&cp, &mut buf).unwrap();
        let n = cp.n();
        let expect = 4 + 1 + 8 + 8 + n.div_ceil(8) + cp.completed_count() * n * 4;
        assert_eq!(buf.len(), expect);
    }

    #[test]
    fn incomplete_rows_are_scrubbed_to_inf() {
        let dist = sample_matrix();
        let mut completed = vec![true; dist.n()];
        completed[7] = false;
        let cp = Checkpoint::new(dist, completed);
        assert!(cp.matrix().row(7).iter().all(|&d| d == INF));
        assert_eq!(cp.completed_count(), cp.n() - 1);
        assert!(!cp.is_complete());
    }

    #[test]
    fn version_skew_is_one_directional() {
        // v1 full matrix loads as an all-complete checkpoint...
        let dist = sample_matrix();
        let mut v1 = Vec::new();
        write_binary(&dist, &mut v1).unwrap();
        let upgraded = read_checkpoint(v1.as_slice()).unwrap();
        assert!(upgraded.is_complete());
        assert_eq!(upgraded.matrix().first_difference(&dist), None);
        // ...but a v2 checkpoint is rejected by the plain matrix reader,
        // with a pointer at the right entry point.
        let mut v2 = Vec::new();
        write_checkpoint(&Checkpoint::complete(dist), &mut v2).unwrap();
        let err = read_binary(v2.as_slice()).unwrap_err();
        assert!(err.to_string().contains("read_checkpoint"), "got {err}");
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        let cp = partial_checkpoint();
        let mut buf = Vec::new();
        write_checkpoint(&cp, &mut buf).unwrap();
        let bitmap_start = 4 + 1 + 8 + 8;

        // Truncated mid-payload.
        let truncated = &buf[..buf.len() - 3];
        assert!(matches!(
            read_checkpoint(truncated),
            Err(PersistError::Format(_))
        ));
        // Bitmap/count mismatch: clear a set bit without fixing the count.
        let mut bad = buf.clone();
        let byte = (0..cp.n())
            .find(|&s| cp.completed()[s])
            .map(|s| bitmap_start + s / 8)
            .unwrap();
        bad[byte] ^= 1 << ((0..cp.n()).find(|&s| cp.completed()[s]).unwrap() % 8);
        assert!(matches!(
            read_checkpoint(bad.as_slice()),
            Err(PersistError::Format(_))
        ));
        // Padding bits set beyond row n-1.
        let mut bad = buf.clone();
        let last_bitmap_byte = bitmap_start + cp.n().div_ceil(8) - 1;
        bad[last_bitmap_byte] |= 1 << 7; // n = 60, bits 60..63 are padding
        assert!(matches!(
            read_checkpoint(bad.as_slice()),
            Err(PersistError::Format(_))
        ));
        // Claimed count larger than n.
        let mut bad = buf.clone();
        bad[13..21].copy_from_slice(&(cp.n() as u64 + 1).to_le_bytes());
        assert!(matches!(
            read_checkpoint(bad.as_slice()),
            Err(PersistError::Format(_))
        ));
        // Trailing bytes.
        let mut bad = buf.clone();
        bad.push(0);
        assert!(matches!(
            read_checkpoint(bad.as_slice()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn tsv_output_is_readable() {
        let mut m = DistanceMatrix::new_infinite(2);
        m.copy_row_from(0, &[0, 7]);
        m.copy_row_from(1, &[INF, 0]);
        let mut buf = Vec::new();
        write_tsv(&m, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "0\t7\ninf\t0\n");
    }

    #[test]
    fn empty_matrix_round_trips() {
        let dist = DistanceMatrix::new_infinite(0);
        let mut buf = Vec::new();
        write_binary(&dist, &mut buf).unwrap();
        let loaded = read_binary(buf.as_slice()).unwrap();
        assert_eq!(loaded.n(), 0);
        let cp = Checkpoint::complete(DistanceMatrix::new_infinite(0));
        let mut buf = Vec::new();
        write_checkpoint(&cp, &mut buf).unwrap();
        assert!(read_checkpoint(buf.as_slice()).unwrap().is_complete());
    }

    // --- run ledger ---

    fn ledger_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("parapsp-ledger-tests-{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn ledger_appends_and_replays_as_checkpoint() {
        let dir = ledger_dir("replay");
        let path = dir.join("run.ledger");
        let dist = sample_matrix();
        let n = dist.n();
        let mut ledger = RowLedger::create(&path, n, FsyncPolicy::Commit).unwrap();
        assert_eq!(ledger.epoch(), 0);
        for s in (0..n as u32).filter(|s| s % 3 != 1) {
            ledger.append(s, dist.row(s)).unwrap();
        }
        let expected_records = (0..n).filter(|s| s % 3 != 1).count() as u64;
        assert_eq!(ledger.records(), expected_records);
        ledger.finish().unwrap();

        // The generic checkpoint loader replays the ledger directly.
        let cp = load_checkpoint(&path).unwrap();
        assert_eq!(cp, partial_checkpoint());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ledger_open_recovers_truncates_torn_tail_and_bumps_epoch() {
        let dir = ledger_dir("torn");
        let path = dir.join("run.ledger");
        let dist = sample_matrix();
        let n = dist.n();
        let mut ledger = RowLedger::create(&path, n, FsyncPolicy::Never).unwrap();
        let run_id = ledger.run_id();
        for s in 0..4u32 {
            ledger.append(s, dist.row(s)).unwrap();
        }
        ledger.finish().unwrap();

        // Simulate a crash mid-append: tear the last record.
        let full = std::fs::metadata(&path).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 5).unwrap();
        drop(file);

        let (ledger, recovered) = RowLedger::open(&path, n, FsyncPolicy::Commit).unwrap();
        assert_eq!(ledger.run_id(), run_id, "recovery keeps the run id");
        assert_eq!(ledger.epoch(), 1, "recovery bumps the epoch");
        assert_eq!(recovered.completed_count(), 3, "torn record dropped");
        assert_eq!(ledger.records(), 3);
        for s in 0..3u32 {
            assert_eq!(recovered.matrix().row(s), dist.row(s));
        }
        assert!(recovered.matrix().row(3).iter().all(|&d| d == INF));
        // The torn tail is physically gone.
        let record_len = (8 + 4 * n + 4) as u64;
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            LEDGER_HEADER_LEN + 3 * record_len
        );

        // Appends after recovery extend the valid prefix.
        let mut ledger = ledger;
        ledger.append(3, dist.row(3)).unwrap();
        ledger.append(4, dist.row(4)).unwrap();
        ledger.finish().unwrap();
        let cp = load_checkpoint(&path).unwrap();
        assert_eq!(cp.completed_count(), 5);
        for s in 0..5u32 {
            assert_eq!(cp.matrix().row(s), dist.row(s));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ledger_open_of_missing_or_empty_file_starts_fresh() {
        let dir = ledger_dir("fresh");
        let missing = dir.join("missing.ledger");
        std::fs::remove_file(&missing).ok();
        let (ledger, cp) = RowLedger::open(&missing, 5, FsyncPolicy::Never).unwrap();
        assert_eq!(ledger.epoch(), 0);
        assert_eq!(cp.completed_count(), 0);
        drop(ledger);

        let empty = dir.join("empty.ledger");
        std::fs::write(&empty, b"").unwrap();
        let (ledger, cp) = RowLedger::open(&empty, 5, FsyncPolicy::Never).unwrap();
        assert_eq!(ledger.epoch(), 0);
        assert_eq!(cp.completed_count(), 0);
        std::fs::remove_file(missing).ok();
        std::fs::remove_file(empty).ok();
    }

    #[test]
    fn ledger_duplicate_rows_last_write_wins() {
        let dir = ledger_dir("dup");
        let path = dir.join("run.ledger");
        let mut ledger = RowLedger::create(&path, 3, FsyncPolicy::Never).unwrap();
        ledger.append(1, &[9, 0, 9]).unwrap();
        ledger.append(1, &[4, 0, 4]).unwrap();
        ledger.finish().unwrap();
        let cp = load_checkpoint(&path).unwrap();
        assert_eq!(cp.completed_count(), 1);
        assert_eq!(cp.matrix().row(1), &[4, 0, 4]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ledger_replay_stops_at_corrupt_record_not_just_torn_tail() {
        let dir = ledger_dir("corrupt");
        let path = dir.join("run.ledger");
        let mut ledger = RowLedger::create(&path, 3, FsyncPolicy::Never).unwrap();
        ledger.append(0, &[0, 1, 2]).unwrap();
        ledger.append(1, &[1, 0, 3]).unwrap();
        ledger.append(2, &[2, 3, 0]).unwrap();
        ledger.finish().unwrap();

        // Flip a payload byte in the middle record: its checksum fails,
        // so replay keeps only the first record — a corrupted row is
        // never surfaced, and the final record (beyond the corruption)
        // is not trusted either.
        let mut bytes = std::fs::read(&path).unwrap();
        let record_len = 8 + 4 * 3 + 4;
        let second_payload = LEDGER_HEADER_LEN as usize + record_len + 8;
        bytes[second_payload] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (ledger, cp) = RowLedger::open(&path, 3, FsyncPolicy::Never).unwrap();
        assert_eq!(cp.completed_count(), 1);
        assert_eq!(cp.matrix().row(0), &[0, 1, 2]);
        assert_eq!(ledger.records(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ledger_open_rejects_wrong_shape_and_wrong_format() {
        let dir = ledger_dir("reject");
        let path = dir.join("run.ledger");
        let mut ledger = RowLedger::create(&path, 4, FsyncPolicy::Never).unwrap();
        ledger.append(0, &[0, 1, 2, 3]).unwrap();
        ledger.finish().unwrap();
        // Vertex-count mismatch.
        let err = RowLedger::open(&path, 5, FsyncPolicy::Never).unwrap_err();
        assert!(err.to_string().contains("4 vertices"), "got {err}");
        // A v2 checkpoint is not a ledger: refuse to clobber it.
        let ckpt = dir.join("not-a-ledger.ckpt");
        save_checkpoint(&partial_checkpoint(), &ckpt).unwrap();
        let err = RowLedger::open(&ckpt, 60, FsyncPolicy::Never).unwrap_err();
        assert!(err.to_string().contains("not a run ledger"), "got {err}");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn ledger_append_rejects_out_of_range_sources_on_replay() {
        // A record whose source is >= n (e.g. from a bit flip in the
        // source field) terminates replay rather than panicking.
        let dir = ledger_dir("range");
        let path = dir.join("run.ledger");
        let mut ledger = RowLedger::create(&path, 3, FsyncPolicy::Never).unwrap();
        ledger.append(0, &[0, 1, 2]).unwrap();
        ledger.append(1, &[1, 0, 3]).unwrap();
        ledger.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let second_source = LEDGER_HEADER_LEN as usize + (8 + 4 * 3 + 4);
        bytes[second_source..second_source + 4].copy_from_slice(&7u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let cp = load_checkpoint(&path).unwrap();
        assert_eq!(cp.completed_count(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn run_ids_are_distinct_and_nonzero() {
        let a = mint_run_id();
        let b = mint_run_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b, "nanosecond clock + splitmix should not collide");
    }
}
