//! Saving and loading distance matrices, plus partial-run checkpoints.
//!
//! An APSP run over a real dataset can take hours (the paper quotes
//! "several hours" for Flickr sequentially) — downstream analysis should
//! not have to recompute it, and a crashed run should not have to start
//! over. Three on-disk shapes:
//!
//! * **binary, version 1** — `PAPD` magic, format version, `n` as u64,
//!   then `n²` little-endian `u32`s. Compact and exact; ~4·n² bytes.
//! * **checkpoint, version 2** — same magic, version 2, `n`, the number
//!   of completed rows, a completed-row bitmap, then only the completed
//!   rows in ascending source order. A finished run's checkpoint is a
//!   complete matrix; a killed run's checkpoint resumes via
//!   [`crate::ParApsp::run_resumed`].
//! * **TSV** — human-readable rows, `INF` spelled as `inf`; intended for
//!   spreadsheets and ad-hoc scripts on small matrices.
//!
//! Version skew is one-directional by design: [`read_checkpoint`] accepts
//! a version-1 full matrix (treated as "every row complete"), while
//! [`read_binary`] rejects version-2 files so pre-checkpoint readers fail
//! loudly instead of misinterpreting a bitmap as distances.
//!
//! All readers treat the header as untrusted: payloads are read in
//! bounded chunks, so a tiny file whose header claims a multi-gigabyte
//! matrix fails with [`PersistError::Format`] instead of attempting the
//! allocation.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use parapsp_graph::INF;

use crate::dist::DistanceMatrix;

const MAGIC: &[u8; 4] = b"PAPD";
const VERSION: u8 = 1;
const CHECKPOINT_VERSION: u8 = 2;

/// Cells per chunked read: 64 Ki cells = 256 KiB. Memory for a payload
/// grows with the bytes that actually arrive, never with the header's
/// claimed size alone.
const READ_CHUNK_CELLS: usize = 1 << 16;

/// Errors from matrix persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not a matrix file, or is a newer/corrupt version.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(err) => write!(f, "I/O error: {err}"),
            PersistError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(err: std::io::Error) -> Self {
        PersistError::Io(err)
    }
}

/// Reads `cells` little-endian `u32`s in bounded chunks. `cells` comes
/// from an untrusted header, so nothing is allocated up front: the vector
/// grows only as data arrives, and a premature EOF is a [`PersistError::Format`]
/// naming how much of the promised payload was present.
fn read_cells<R: Read>(reader: &mut R, cells: usize) -> Result<Vec<u32>, PersistError> {
    let mut data = Vec::new();
    let mut bytes = vec![0u8; READ_CHUNK_CELLS.min(cells.max(1)) * 4];
    let mut remaining = cells;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK_CELLS);
        let chunk = &mut bytes[..take * 4];
        reader.read_exact(chunk).map_err(|err| {
            if err.kind() == std::io::ErrorKind::UnexpectedEof {
                PersistError::Format(format!(
                    "truncated payload: header promises {cells} cells, file ends within cell {}",
                    cells - remaining
                ))
            } else {
                PersistError::Io(err)
            }
        })?;
        data.extend(
            chunk
                .chunks_exact(4)
                .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        );
        remaining -= take;
    }
    Ok(data)
}

/// Rejects trailing garbage after a fully parsed payload (a corrupt or
/// concatenated file).
fn expect_eof<R: Read>(reader: &mut R) -> Result<(), PersistError> {
    let mut probe = [0u8; 1];
    if reader.read(&mut probe)? != 0 {
        return Err(PersistError::Format("trailing bytes after matrix".into()));
    }
    Ok(())
}

/// Parses the shared `PAPD` header, returning `(version, n)`.
fn read_header<R: Read>(reader: &mut R) -> Result<(u8, usize), PersistError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Format(
            "missing PAPD magic — not a distance matrix file".into(),
        ));
    }
    let mut version = [0u8; 1];
    reader.read_exact(&mut version)?;
    let mut n_bytes = [0u8; 8];
    reader.read_exact(&mut n_bytes)?;
    let n = u64::from_le_bytes(n_bytes);
    let n = usize::try_from(n)
        .ok()
        .filter(|n| n.checked_mul(*n).is_some())
        .ok_or_else(|| PersistError::Format(format!("matrix size {n} overflows")))?;
    Ok((version[0], n))
}

/// Serializes one row as little-endian bytes and writes it in a single
/// call (one syscall-sized write per row instead of one per cell).
fn write_row<W: Write>(writer: &mut W, row: &[u32], buf: &mut Vec<u8>) -> std::io::Result<()> {
    buf.clear();
    for &cell in row {
        buf.extend_from_slice(&cell.to_le_bytes());
    }
    writer.write_all(buf)
}

/// Writes the binary format to any writer.
pub fn write_binary<W: Write>(dist: &DistanceMatrix, writer: W) -> Result<(), PersistError> {
    let mut writer = BufWriter::new(writer);
    writer.write_all(MAGIC)?;
    writer.write_all(&[VERSION])?;
    writer.write_all(&(dist.n() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(dist.n() * 4);
    for (_, row) in dist.rows() {
        write_row(&mut writer, row, &mut buf)?;
    }
    writer.flush()?;
    Ok(())
}

/// Reads the binary format from any reader. Rejects checkpoint (version 2)
/// files: a partial matrix must be loaded with [`read_checkpoint`] so
/// missing rows cannot masquerade as real distances.
pub fn read_binary<R: Read>(reader: R) -> Result<DistanceMatrix, PersistError> {
    let mut reader = BufReader::new(reader);
    let (version, n) = read_header(&mut reader)?;
    if version != VERSION {
        return Err(PersistError::Format(format!(
            "unsupported format version {version} (checkpoints are version {CHECKPOINT_VERSION}; \
             load them with read_checkpoint)"
        )));
    }
    let data = read_cells(&mut reader, n * n)?;
    expect_eof(&mut reader)?;
    Ok(DistanceMatrix::from_raw(n, data.into_boxed_slice()))
}

/// Writes a matrix to `path` in the binary format.
pub fn save_binary(dist: &DistanceMatrix, path: impl AsRef<Path>) -> Result<(), PersistError> {
    write_binary(dist, std::fs::File::create(path)?)
}

/// Loads a matrix from a binary file.
pub fn load_binary(path: impl AsRef<Path>) -> Result<DistanceMatrix, PersistError> {
    read_binary(std::fs::File::open(path)?)
}

/// A partially computed distance matrix: the matrix itself plus a flag
/// per source row saying whether that row is final. Incomplete rows are
/// all-[`INF`], exactly the state a fresh kernel expects, so a resumed
/// run computes only the missing sources and lands on the bit-identical
/// matrix a fault-free run would have produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    dist: DistanceMatrix,
    completed: Vec<bool>,
}

impl Checkpoint {
    /// Wraps a matrix and its completed-row flags.
    ///
    /// Rows marked incomplete are scrubbed back to all-[`INF`]: the
    /// resume path owns them from scratch, so no half-written values may
    /// leak through.
    ///
    /// # Panics
    ///
    /// Panics when `completed.len() != dist.n()`.
    pub fn new(mut dist: DistanceMatrix, completed: Vec<bool>) -> Self {
        assert_eq!(
            completed.len(),
            dist.n(),
            "one completed flag per source row"
        );
        for (s, &done) in completed.iter().enumerate() {
            if !done {
                dist.row_mut(s as u32).fill(INF);
            }
        }
        Checkpoint { dist, completed }
    }

    /// A checkpoint in which every row is final (a finished run).
    pub fn complete(dist: DistanceMatrix) -> Self {
        let completed = vec![true; dist.n()];
        Checkpoint { dist, completed }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.dist.n()
    }

    /// Per-source completion flags.
    pub fn completed(&self) -> &[bool] {
        &self.completed
    }

    /// How many rows are final.
    pub fn completed_count(&self) -> usize {
        self.completed.iter().filter(|&&done| done).count()
    }

    /// Whether every row is final (the checkpoint is a full matrix).
    pub fn is_complete(&self) -> bool {
        self.completed.iter().all(|&done| done)
    }

    /// The matrix (incomplete rows are all-[`INF`]).
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.dist
    }

    /// Splits the checkpoint into matrix and flags.
    pub fn into_parts(self) -> (DistanceMatrix, Vec<bool>) {
        (self.dist, self.completed)
    }
}

/// Bitmap bytes needed for `n` rows.
fn bitmap_len(n: usize) -> usize {
    n.div_ceil(8)
}

/// Writes the version-2 checkpoint format: header, completed count,
/// completed-row bitmap (LSB-first within each byte, padding bits zero),
/// then only the completed rows in ascending source order.
pub fn write_checkpoint<W: Write>(cp: &Checkpoint, writer: W) -> Result<(), PersistError> {
    let n = cp.n();
    let mut writer = BufWriter::new(writer);
    writer.write_all(MAGIC)?;
    writer.write_all(&[CHECKPOINT_VERSION])?;
    writer.write_all(&(n as u64).to_le_bytes())?;
    writer.write_all(&(cp.completed_count() as u64).to_le_bytes())?;
    let mut bitmap = vec![0u8; bitmap_len(n)];
    for (s, &done) in cp.completed.iter().enumerate() {
        if done {
            bitmap[s / 8] |= 1 << (s % 8);
        }
    }
    writer.write_all(&bitmap)?;
    let mut buf = Vec::with_capacity(n * 4);
    for (s, &done) in cp.completed.iter().enumerate() {
        if done {
            write_row(&mut writer, cp.dist.row(s as u32), &mut buf)?;
        }
    }
    writer.flush()?;
    Ok(())
}

/// Reads a checkpoint. Accepts both format versions: a version-1 full
/// matrix loads as an all-rows-complete checkpoint (old outputs remain
/// valid resume inputs), and version 2 is the native checkpoint format
/// with its bitmap validated against the completed count and its padding
/// bits required to be zero.
pub fn read_checkpoint<R: Read>(reader: R) -> Result<Checkpoint, PersistError> {
    let mut reader = BufReader::new(reader);
    let (version, n) = read_header(&mut reader)?;
    match version {
        VERSION => {
            let data = read_cells(&mut reader, n * n)?;
            expect_eof(&mut reader)?;
            Ok(Checkpoint::complete(DistanceMatrix::from_raw(
                n,
                data.into_boxed_slice(),
            )))
        }
        CHECKPOINT_VERSION => {
            let mut count_bytes = [0u8; 8];
            reader.read_exact(&mut count_bytes)?;
            let claimed = u64::from_le_bytes(count_bytes);
            if claimed > n as u64 {
                return Err(PersistError::Format(format!(
                    "checkpoint claims {claimed} completed rows of only {n}"
                )));
            }
            let mut bitmap = vec![0u8; bitmap_len(n)];
            reader.read_exact(&mut bitmap)?;
            let completed: Vec<bool> = (0..n)
                .map(|s| bitmap[s / 8] & (1 << (s % 8)) != 0)
                .collect();
            let set = completed.iter().filter(|&&done| done).count();
            if set as u64 != claimed {
                return Err(PersistError::Format(format!(
                    "checkpoint bitmap has {set} rows set but the header claims {claimed}"
                )));
            }
            for s in n..bitmap.len() * 8 {
                if bitmap[s / 8] & (1 << (s % 8)) != 0 {
                    return Err(PersistError::Format(
                        "checkpoint bitmap has padding bits set".into(),
                    ));
                }
            }
            let cells = read_cells(&mut reader, set * n)?;
            expect_eof(&mut reader)?;
            let mut dist = DistanceMatrix::new_infinite(n);
            let mut rows = cells.chunks_exact(n.max(1));
            for (s, &done) in completed.iter().enumerate() {
                if done {
                    dist.copy_row_from(s as u32, rows.next().expect("one chunk per set bit"));
                }
            }
            Ok(Checkpoint { dist, completed })
        }
        other => Err(PersistError::Format(format!(
            "unsupported format version {other}"
        ))),
    }
}

/// Atomically writes a checkpoint to `path`: the bytes land in a `.tmp`
/// sibling first, are fsynced, and only then renamed into place, so a
/// crash at any moment leaves either the previous checkpoint or the new
/// one — never a torn file. On Unix the parent directory is fsynced too —
/// and fsync failures are propagated, not swallowed — so the rename
/// itself survives a power cut; elsewhere directories can't reliably be
/// opened for syncing and the directory entry is left to the OS.
pub fn save_checkpoint(cp: &Checkpoint, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let path = path.as_ref();
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    let file = std::fs::File::create(&tmp)?;
    // write_checkpoint buffers internally and flushes before returning,
    // so by the time it returns every byte has reached the file object.
    write_checkpoint(cp, &file)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    Ok(())
}

/// Fsyncs the directory holding `path`, making a just-renamed entry
/// durable. A bare filename syncs `.`, the working directory.
#[cfg(unix)]
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        _ => Path::new("."),
    };
    std::fs::File::open(parent)?.sync_all()
}

/// Non-Unix platforms often refuse to open directories; the rename is
/// still atomic, only its durability across power loss is best-effort.
#[cfg(not(unix))]
fn sync_parent_dir(_path: &Path) -> std::io::Result<()> {
    Ok(())
}

/// Loads a checkpoint from a file (either format version).
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<Checkpoint, PersistError> {
    read_checkpoint(std::fs::File::open(path)?)
}

/// Writes a tab-separated text dump (`inf` for unreachable pairs), one
/// buffered write per row.
pub fn write_tsv<W: Write>(dist: &DistanceMatrix, writer: W) -> Result<(), PersistError> {
    use std::fmt::Write as _;
    let mut writer = BufWriter::new(writer);
    let mut line = String::new();
    for (_, row) in dist.rows() {
        line.clear();
        for (i, &cell) in row.iter().enumerate() {
            if i > 0 {
                line.push('\t');
            }
            if cell == INF {
                line.push_str("inf");
            } else {
                write!(line, "{cell}").expect("writing to a String cannot fail");
            }
        }
        line.push('\n');
        writer.write_all(line.as_bytes())?;
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParApsp;
    use parapsp_graph::generate::{barabasi_albert, WeightSpec};

    fn sample_matrix() -> DistanceMatrix {
        let g = barabasi_albert(60, 2, WeightSpec::Uniform { lo: 1, hi: 9 }, 5).unwrap();
        ParApsp::par_apsp(2).run(&g).dist
    }

    fn partial_checkpoint() -> Checkpoint {
        let dist = sample_matrix();
        let completed: Vec<bool> = (0..dist.n()).map(|s| s % 3 != 1).collect();
        Checkpoint::new(dist, completed)
    }

    #[test]
    fn binary_round_trip_in_memory() {
        let dist = sample_matrix();
        let mut buf = Vec::new();
        write_binary(&dist, &mut buf).unwrap();
        assert_eq!(buf.len(), 4 + 1 + 8 + 60 * 60 * 4);
        let loaded = read_binary(buf.as_slice()).unwrap();
        assert_eq!(dist.first_difference(&loaded), None);
    }

    #[test]
    fn binary_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("parapsp-persist-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("matrix.bin");
        let dist = sample_matrix();
        save_binary(&dist, &path).unwrap();
        let loaded = load_binary(&path).unwrap();
        assert_eq!(dist.first_difference(&loaded), None);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(matches!(
            read_binary(&b"NOPE"[..]),
            Err(PersistError::Io(_)) | Err(PersistError::Format(_))
        ));
        let mut buf = Vec::new();
        write_binary(&DistanceMatrix::new_infinite(3), &mut buf).unwrap();
        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_binary(bad.as_slice()),
            Err(PersistError::Format(_))
        ));
        // Wrong version.
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(
            read_binary(bad.as_slice()),
            Err(PersistError::Format(_))
        ));
        // Truncated payload — caught as a format error before any
        // allocation proportional to the claimed size.
        let truncated = &buf[..buf.len() - 2];
        assert!(matches!(
            read_binary(truncated),
            Err(PersistError::Format(_))
        ));
        // Trailing bytes.
        let mut extended = buf.clone();
        extended.push(0);
        assert!(matches!(
            read_binary(extended.as_slice()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn forged_giant_header_fails_without_allocating() {
        // 4 GiB-matrix header followed by a handful of real bytes: the
        // chunked reader must bail on the missing payload, not allocate
        // cells for the claimed n².
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        buf.extend_from_slice(&(1u64 << 16).to_le_bytes());
        buf.extend_from_slice(&[7u8; 64]);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "got {err}");
        assert!(err.to_string().contains("truncated"), "got {err}");
    }

    #[test]
    fn checkpoint_round_trip_partial_and_complete() {
        for cp in [partial_checkpoint(), Checkpoint::complete(sample_matrix())] {
            let mut buf = Vec::new();
            write_checkpoint(&cp, &mut buf).unwrap();
            let loaded = read_checkpoint(buf.as_slice()).unwrap();
            assert_eq!(loaded, cp);
        }
    }

    #[test]
    fn checkpoint_round_trip_on_disk_is_atomic() {
        let dir = std::env::temp_dir().join("parapsp-persist-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("partial.ckpt");
        let cp = partial_checkpoint();
        save_checkpoint(&cp, &path).unwrap();
        // The staging file is renamed away.
        assert!(!dir.join("partial.ckpt.tmp").exists());
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded, cp);
        std::fs::remove_file(path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn bare_filename_syncs_the_working_directory() {
        // No parent component in the path: the directory fsync must fall
        // back to `.` instead of failing or silently skipping durability.
        super::sync_parent_dir(Path::new("bare.ckpt")).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unsyncable_parent_directory_is_an_error_not_a_shrug() {
        // The checkpoint lands in a directory that vanishes between the
        // rename and the fsync — impossible to arrange reliably — so
        // instead exercise the helper directly with a parent that cannot
        // be opened.
        let err = super::sync_parent_dir(Path::new("/definitely/not/a/dir/x.ckpt")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn checkpoint_stores_only_completed_rows() {
        let cp = partial_checkpoint();
        let mut buf = Vec::new();
        write_checkpoint(&cp, &mut buf).unwrap();
        let n = cp.n();
        let expect = 4 + 1 + 8 + 8 + n.div_ceil(8) + cp.completed_count() * n * 4;
        assert_eq!(buf.len(), expect);
    }

    #[test]
    fn incomplete_rows_are_scrubbed_to_inf() {
        let dist = sample_matrix();
        let mut completed = vec![true; dist.n()];
        completed[7] = false;
        let cp = Checkpoint::new(dist, completed);
        assert!(cp.matrix().row(7).iter().all(|&d| d == INF));
        assert_eq!(cp.completed_count(), cp.n() - 1);
        assert!(!cp.is_complete());
    }

    #[test]
    fn version_skew_is_one_directional() {
        // v1 full matrix loads as an all-complete checkpoint...
        let dist = sample_matrix();
        let mut v1 = Vec::new();
        write_binary(&dist, &mut v1).unwrap();
        let upgraded = read_checkpoint(v1.as_slice()).unwrap();
        assert!(upgraded.is_complete());
        assert_eq!(upgraded.matrix().first_difference(&dist), None);
        // ...but a v2 checkpoint is rejected by the plain matrix reader,
        // with a pointer at the right entry point.
        let mut v2 = Vec::new();
        write_checkpoint(&Checkpoint::complete(dist), &mut v2).unwrap();
        let err = read_binary(v2.as_slice()).unwrap_err();
        assert!(err.to_string().contains("read_checkpoint"), "got {err}");
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        let cp = partial_checkpoint();
        let mut buf = Vec::new();
        write_checkpoint(&cp, &mut buf).unwrap();
        let bitmap_start = 4 + 1 + 8 + 8;

        // Truncated mid-payload.
        let truncated = &buf[..buf.len() - 3];
        assert!(matches!(
            read_checkpoint(truncated),
            Err(PersistError::Format(_))
        ));
        // Bitmap/count mismatch: clear a set bit without fixing the count.
        let mut bad = buf.clone();
        let byte = (0..cp.n())
            .find(|&s| cp.completed()[s])
            .map(|s| bitmap_start + s / 8)
            .unwrap();
        bad[byte] ^= 1 << ((0..cp.n()).find(|&s| cp.completed()[s]).unwrap() % 8);
        assert!(matches!(
            read_checkpoint(bad.as_slice()),
            Err(PersistError::Format(_))
        ));
        // Padding bits set beyond row n-1.
        let mut bad = buf.clone();
        let last_bitmap_byte = bitmap_start + cp.n().div_ceil(8) - 1;
        bad[last_bitmap_byte] |= 1 << 7; // n = 60, bits 60..63 are padding
        assert!(matches!(
            read_checkpoint(bad.as_slice()),
            Err(PersistError::Format(_))
        ));
        // Claimed count larger than n.
        let mut bad = buf.clone();
        bad[13..21].copy_from_slice(&(cp.n() as u64 + 1).to_le_bytes());
        assert!(matches!(
            read_checkpoint(bad.as_slice()),
            Err(PersistError::Format(_))
        ));
        // Trailing bytes.
        let mut bad = buf.clone();
        bad.push(0);
        assert!(matches!(
            read_checkpoint(bad.as_slice()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn tsv_output_is_readable() {
        let mut m = DistanceMatrix::new_infinite(2);
        m.copy_row_from(0, &[0, 7]);
        m.copy_row_from(1, &[INF, 0]);
        let mut buf = Vec::new();
        write_tsv(&m, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "0\t7\ninf\t0\n");
    }

    #[test]
    fn empty_matrix_round_trips() {
        let dist = DistanceMatrix::new_infinite(0);
        let mut buf = Vec::new();
        write_binary(&dist, &mut buf).unwrap();
        let loaded = read_binary(buf.as_slice()).unwrap();
        assert_eq!(loaded.n(), 0);
        let cp = Checkpoint::complete(DistanceMatrix::new_infinite(0));
        let mut buf = Vec::new();
        write_checkpoint(&cp, &mut buf).unwrap();
        assert!(read_checkpoint(buf.as_slice()).unwrap().is_complete());
    }
}
