//! Tiered distance-matrix storage: the [`Store`] behind every engine.
//!
//! The paper's engines share one `n × n` row matrix through the
//! Release/Acquire publication protocol of the `shared` module. That dense
//! layout is the fastest backend — and the memory wall: exact APSP dies
//! around the point where `4 n²` bytes stop fitting in RAM. This module
//! makes the storage a run-time choice while keeping the publication
//! protocol (and therefore the engines, the Runner, persistence, and the
//! analysis readers) identical across backends:
//!
//! * [`StoreKind::Dense`] — today's layout, the default and the
//!   bit-identity reference. Published rows are lent as plain `&[u32]`
//!   borrows at zero cost.
//! * [`StoreKind::Delta`] — published rows are delta-encoded (zig-zag
//!   varint) against estimates triangulated from a small set of dense
//!   *reference rows*: the first `k` published rows. Under the hub-first
//!   orderings the engines already use, those are exactly the landmark
//!   hubs, so the estimates are tight and most deltas are one byte. Reads
//!   decode through a bounded hot-row cache.
//! * [`StoreKind::Mmap`] — rows live in fixed-size file shards under a
//!   scratch directory, written with `pwrite` and read back with `pread`
//!   through a byte-budgeted LRU of hot decoded rows, so exact APSP
//!   completes on graphs whose dense matrix exceeds RAM. (The CLI spelling
//!   is `mmap` for the classic out-of-core idiom, but the implementation
//!   deliberately uses positioned file I/O rather than `mmap(2)`: a
//!   `MAP_SHARED` mapping of the whole matrix would count against a
//!   virtual-memory rlimit and defeat bounded-memory runs — see
//!   DESIGN.md §14.)
//!
//! # Row leases
//!
//! Every backend hands the kernel a borrowed `&[u32]` view of a published
//! row through [`Store::lease_row`], which returns a [`RowLease`] guard:
//!
//! * Dense lends the row directly (zero cost, no guard state).
//! * Delta reference rows lend from the append-only reference set (the
//!   lease holds the set's `Arc`, so a concurrent growth of the set
//!   cannot free the generation being read).
//! * Everything else pins an entry in the hot-row LRU: pinned entries are
//!   **never evicted**, pinned bytes are non-reclaimable in the budget
//!   accounting, and the lease releases the pin on drop. A budget too
//!   small to hold the pinned working set fails loudly with a
//!   self-describing error instead of thrashing, and
//!   [`StoreSpec::validate_for`] rejects such budgets at construction.
//!
//! [`Store::prefetch_row`] is the matching look-ahead: a hardware
//! prefetch on dense, and a *decode-ahead* on delta/mmap — a hint to a
//! lazily spawned worker thread that decodes the row into the cache while
//! the caller is still relaxing the current row, so the next
//! `lease_row` hits warm. This is how the paper's row-reuse optimization
//! fires identically on all three backends (DESIGN.md §14).
//!
//! # Publication memory ordering
//!
//! Every backend keeps the dense protocol's guarantee: the bytes of row
//! `s` — cells, encoded payload, or shard file write — are fully written
//! *before* `flag[s]` is stored with `Release`, and every reader checks
//! the flag with `Acquire` first. A reader that observes the flag
//! therefore observes a complete, final row, regardless of backend.
//! Leases only ever read rows past that handshake, so a lease always
//! views complete, final bytes.
//!
//! All backends are bit-identical on the final matrix: the engines compute
//! rows in ordinary `&mut [u32]` scratch either way, and the backends only
//! decide where the published bytes live.

use std::cell::UnsafeCell;
use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::marker::PhantomData;
use std::ops::Deref;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

use parapsp_graph::INF;
use parapsp_parfor::spec;

use crate::dist::DistanceMatrix;
use crate::shared::SharedDistState;

// ---------------------------------------------------------------------------
// StoreKind / StoreSpec — the CLI-facing choice
// ---------------------------------------------------------------------------

/// Which storage backend holds published distance rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// One dense in-memory `n × n` matrix (the default and the
    /// bit-identity reference; lends rows at zero cost).
    #[default]
    Dense,
    /// Rows delta-encoded against reference-row estimates, decoded through
    /// a bounded hot-row cache.
    Delta,
    /// Rows in fixed-size file shards with a byte-budgeted LRU of hot
    /// decoded rows (out-of-core).
    Mmap,
}

impl StoreKind {
    /// The stable lowercase CLI name.
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Dense => "dense",
            StoreKind::Delta => "delta",
            StoreKind::Mmap => "mmap",
        }
    }
}

/// Default number of dense reference rows for the delta backend.
const DEFAULT_DELTA_REFS: usize = 16;
/// Hard cap on reference rows (the encoding's count byte reserves 0xFF).
const MAX_DELTA_REFS: usize = 254;
/// Default hot-row cache budget for the delta backend.
const DEFAULT_DELTA_CACHE: u64 = 32 << 20;
/// Default hot-row cache budget for the mmap backend.
const DEFAULT_MMAP_CACHE: u64 = 64 << 20;
/// Target size of one mmap shard file.
const SHARD_BYTES: u64 = 64 << 20;
/// Slot marker for a delta row that *is* a reference row (stored dense in
/// the reference set; the slot holds only this byte).
const REF_MARKER: u8 = 0xFF;
/// Minimum decoded rows a hot-row cache budget must hold: one row pinned
/// by a live lease plus one incoming decode. Budgets below this would
/// make the pin-aware eviction thrash or fail, so construction rejects
/// them ([`StoreSpec::validate_for`]).
const MIN_CACHE_ROWS: u64 = 2;
/// Bounded queue depth of decode-ahead hints; hints past a full queue are
/// dropped (a dropped hint is just a future cache miss, never an error).
const DECODE_AHEAD_QUEUE: usize = 64;
/// Stack size of the decode-ahead worker thread — deliberately tiny so
/// the extra thread stays invisible under `ulimit -v` smoke runs.
const DECODE_AHEAD_STACK: usize = 128 << 10;

/// A parsed `--store` specification: backend plus its tuning parameter.
///
/// CLI spellings: `dense`, `delta`, `delta:<refs>`, `mmap`,
/// `mmap:<budget>` where `<budget>` accepts `k`/`m`/`g` suffixes (the
/// hot-row cache budget in bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSpec {
    kind: StoreKind,
    refs: usize,
    cache_bytes: u64,
}

impl Default for StoreSpec {
    fn default() -> Self {
        StoreSpec::dense()
    }
}

impl StoreSpec {
    /// Every CLI spelling, for self-describing rejection messages.
    pub const POSSIBLE: &'static [&'static str] = &["dense", "delta[:<refs>]", "mmap[:<budget>]"];

    /// The dense in-memory backend (the default).
    pub fn dense() -> StoreSpec {
        StoreSpec {
            kind: StoreKind::Dense,
            refs: 0,
            cache_bytes: 0,
        }
    }

    /// The delta backend with `refs` dense reference rows (clamped to a
    /// minimum of 1 and an encoding-imposed maximum of 254).
    pub fn delta(refs: usize) -> StoreSpec {
        StoreSpec {
            kind: StoreKind::Delta,
            refs: refs.clamp(1, MAX_DELTA_REFS),
            cache_bytes: DEFAULT_DELTA_CACHE,
        }
    }

    /// The out-of-core shard backend with a hot-row cache of
    /// `cache_bytes` (validated against `n` at build time).
    pub fn mmap(cache_bytes: u64) -> StoreSpec {
        StoreSpec {
            kind: StoreKind::Mmap,
            refs: 0,
            cache_bytes: cache_bytes.max(1),
        }
    }

    /// The chosen backend.
    pub fn kind(&self) -> StoreKind {
        self.kind
    }

    /// Stable label round-tripping through [`StoreSpec::parse`]:
    /// `dense`, `delta:<refs>`, `mmap:<bytes>`.
    pub fn label(&self) -> String {
        match self.kind {
            StoreKind::Dense => "dense".to_owned(),
            StoreKind::Delta => format!("delta:{}", self.refs),
            StoreKind::Mmap => format!("mmap:{}", self.cache_bytes),
        }
    }

    /// Checks that the hot-row cache budget can hold the lease working
    /// set at matrix size `n`: at least [`MIN_CACHE_ROWS`] decoded rows
    /// (one pinned by a live [`RowLease`] plus one incoming decode).
    /// Rejecting this up front turns what would otherwise be mid-run
    /// thrash or a mid-run panic into a self-describing build error that
    /// names the minimum budget.
    pub fn validate_for(&self, n: usize) -> Result<(), String> {
        if self.kind == StoreKind::Dense {
            return Ok(());
        }
        let row_bytes = 4 * n.max(1) as u64;
        let min = MIN_CACHE_ROWS * row_bytes;
        if self.cache_bytes < min {
            return Err(format!(
                "store: `{}` hot-row cache budget of {} bytes cannot hold one decoded \
                 {row_bytes}-byte row plus the pinned lease working set at n={n}; \
                 the minimum is {min} bytes (try `--store mmap:{min}`)",
                self.label(),
                self.cache_bytes,
            ));
        }
        Ok(())
    }

    /// Parses a CLI spelling; shares the spec helper (and error style)
    /// with `--schedule` / `--solver` parsing.
    pub fn parse(raw: &str) -> Result<StoreSpec, String> {
        let (name, param) = spec::split_spec(raw);
        match name {
            "dense" if param.is_some() => Err(spec::reject_param("store", "dense")),
            "dense" => Ok(StoreSpec::dense()),
            "delta" => match param {
                None => Ok(StoreSpec::delta(DEFAULT_DELTA_REFS)),
                Some(p) => {
                    let refs =
                        spec::parse_positive_param::<usize>("store", "delta", Some(p), None)?;
                    Ok(StoreSpec::delta(refs))
                }
            },
            "mmap" => match param {
                None => Ok(StoreSpec::mmap(DEFAULT_MMAP_CACHE)),
                Some(p) => Ok(StoreSpec::mmap(parse_budget(p)?)),
            },
            _ => Err(spec::reject_unknown("store", raw, Self::POSSIBLE)),
        }
    }
}

impl std::str::FromStr for StoreSpec {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        StoreSpec::parse(raw)
    }
}

/// Parses a byte budget with an optional `k`/`m`/`g` suffix (powers of
/// 1024, case-insensitive). Must be positive.
fn parse_budget(raw: &str) -> Result<u64, String> {
    let (digits, shift) = match raw.as_bytes().last() {
        Some(b'k') | Some(b'K') => (&raw[..raw.len() - 1], 10),
        Some(b'm') | Some(b'M') => (&raw[..raw.len() - 1], 20),
        Some(b'g') | Some(b'G') => (&raw[..raw.len() - 1], 30),
        _ => (raw, 0),
    };
    let value: u64 = digits
        .parse()
        .map_err(|_| format!("store: mmap budget `{raw}` is not a byte count (try 256m, 1g)"))?;
    if value == 0 {
        return Err("store: mmap budget must be positive".to_owned());
    }
    value
        .checked_shl(shift)
        .filter(|&v| v >> shift == value)
        .ok_or_else(|| format!("store: mmap budget `{raw}` overflows"))
}

// ---------------------------------------------------------------------------
// RowLease — a borrowed view of one published row, on any backend
// ---------------------------------------------------------------------------

/// How a [`RowLease`] was satisfied — the kernel's reuse counters key off
/// this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseOrigin {
    /// Lent directly from backend-resident bytes at zero cost: a dense
    /// row, or a delta reference row.
    Lent,
    /// Served from an already-decoded entry in the hot-row cache.
    CacheHit,
    /// Decoded on demand (the lease paid the full decode / pread).
    CacheMiss,
    /// Served from an entry the decode-ahead worker populated — a cache
    /// hit that exists *because* of a [`Store::prefetch_row`] hint.
    DecodeAhead,
}

/// A borrowed `&[u32]` view of one published row (via `Deref`).
///
/// On the dense backend this is a plain borrow. On delta/mmap it holds a
/// pin on the row's hot-cache entry: pinned entries are never evicted and
/// their bytes are non-reclaimable in the budget accounting, so the view
/// stays valid for the lease's whole lifetime even while other threads
/// churn the cache. Dropping the lease releases the pin. Keep leases
/// short-lived (one relaxation pass); a large pinned working set shrinks
/// the cache's evictable region and can fail the budget loudly.
pub struct RowLease<'a> {
    ptr: *const u32,
    len: usize,
    origin: LeaseOrigin,
    backing: LeaseBacking<'a>,
}

enum LeaseBacking<'a> {
    /// Backend-resident bytes borrowed for `'a` (dense rows).
    Borrowed(PhantomData<&'a [u32]>),
    /// A delta reference row: the `Arc` keeps the reference-set
    /// generation alive even if the set grows concurrently.
    Refs(#[allow(dead_code)] Arc<Vec<RefRow>>),
    /// A pinned hot-cache entry; dropping unpins it.
    Pinned {
        cache: &'a Mutex<RowCache>,
        row: u32,
    },
}

impl RowLease<'_> {
    /// How this lease was satisfied.
    #[inline]
    pub fn origin(&self) -> LeaseOrigin {
        self.origin
    }
}

impl std::fmt::Debug for RowLease<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowLease")
            .field("len", &self.len)
            .field("origin", &self.origin)
            .finish_non_exhaustive()
    }
}

impl Deref for RowLease<'_> {
    type Target = [u32];

    #[inline]
    fn deref(&self) -> &[u32] {
        // SAFETY: `ptr`/`len` name a fully published row whose bytes are
        // immutable after publication; `backing` keeps the allocation
        // alive (borrow lifetime, Arc on the reference set, or a cache
        // pin that blocks eviction) for as long as `self` exists.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for RowLease<'_> {
    fn drop(&mut self) {
        if let LeaseBacking::Pinned { cache, row } = &self.backing {
            // A poisoned lock means a budget panic is already unwinding;
            // skipping the unpin then is fine (the store is going away)
            // and avoids a double panic.
            if let Ok(mut cache) = cache.lock() {
                cache.unpin(*row);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Store — the backend-dispatching facade
// ---------------------------------------------------------------------------

/// The distance-matrix storage of one run: row allocation, publication,
/// and read access behind a single type, with the backend chosen by a
/// [`StoreSpec`].
///
/// Writers compute a row into ordinary `&mut [u32]` scratch — in place
/// when the backend lends mutable rows ([`Store::try_row_mut`]), staged in
/// a caller buffer otherwise — and publish it exactly once. Readers use
/// [`Store::lease_row`] for the kernel's row-reuse hot path (every
/// backend), [`Store::with_row`] / [`Store::read_row_into`] for
/// point/bulk reads. Dispatch is a concrete enum match, not a vtable, so
/// the dense hot path stays identical to the pre-store code.
pub struct Store {
    inner: Inner,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("kind", &self.kind())
            .field("n", &self.n())
            .finish_non_exhaustive()
    }
}

enum Inner {
    Dense(SharedDistState),
    Delta(DeltaStore),
    Mmap(MmapStore),
}

impl Store {
    /// Allocates an empty store for an `n`-vertex matrix, panicking with
    /// the [`StoreSpec::validate_for`] message when the hot-row cache
    /// budget cannot hold the lease working set. Callers that want a
    /// clean error use [`Store::try_new`].
    pub fn new(n: usize, spec: &StoreSpec) -> Store {
        Store::try_new(n, spec).unwrap_or_else(|err| panic!("{err}"))
    }

    /// Allocates an empty store, rejecting budgets below the minimum the
    /// lease layer needs (see [`StoreSpec::validate_for`]).
    pub fn try_new(n: usize, spec: &StoreSpec) -> Result<Store, String> {
        spec.validate_for(n)?;
        let inner = match spec.kind {
            StoreKind::Dense => Inner::Dense(SharedDistState::new(n)),
            StoreKind::Delta => Inner::Delta(DeltaStore::new(n, spec.refs, spec.cache_bytes)),
            StoreKind::Mmap => Inner::Mmap(MmapStore::new(n, spec.cache_bytes)),
        };
        Ok(Store { inner })
    }

    /// Builds the store from a partially computed matrix (resume): rows
    /// flagged in `completed` are pre-published, the rest start
    /// unpublished and infinite.
    pub fn from_parts(dist: DistanceMatrix, completed: &[bool], spec: &StoreSpec) -> Store {
        match spec.kind {
            StoreKind::Dense => Store {
                inner: Inner::Dense(SharedDistState::from_parts(dist, completed)),
            },
            _ => {
                let store = Store::new(dist.n(), spec);
                for (s, &done) in completed.iter().enumerate() {
                    if done {
                        store.publish_from(s as u32, dist.row(s as u32));
                    }
                }
                store
            }
        }
    }

    /// The backend in use.
    pub fn kind(&self) -> StoreKind {
        match &self.inner {
            Inner::Dense(_) => StoreKind::Dense,
            Inner::Delta(_) => StoreKind::Delta,
            Inner::Mmap(_) => StoreKind::Mmap,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        match &self.inner {
            Inner::Dense(state) => state.n(),
            Inner::Delta(store) => store.inner.n,
            Inner::Mmap(store) => store.inner.n,
        }
    }

    /// Exclusive in-place access to unpublished row `s`, on backends that
    /// support it (dense). `None` means the caller must stage the row in
    /// its own scratch and hand it over via [`Store::publish_from`].
    ///
    /// # Safety
    ///
    /// The caller must be the unique owner of row `s` (no other live
    /// `try_row_mut(s)` anywhere, `s` not yet published) — the same
    /// contract as `SharedDistState::row_mut`.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn try_row_mut(&self, s: u32) -> Option<&mut [u32]> {
        match &self.inner {
            // SAFETY: forwarded caller contract.
            Inner::Dense(state) => Some(unsafe { state.row_mut(s) }),
            _ => None,
        }
    }

    /// Publishes row `s` written in place through [`Store::try_row_mut`].
    /// Only meaningful on lending backends.
    #[inline]
    pub fn publish(&self, s: u32) {
        match &self.inner {
            Inner::Dense(state) => state.publish(s),
            _ => unreachable!("publish() without try_row_mut(); use publish_from"),
        }
    }

    /// Publishes row `s` from caller-owned scratch: the backend copies /
    /// encodes / writes the bytes, then stores the publication flag with
    /// `Release`. The caller must own row `s` (never published before).
    pub fn publish_from(&self, s: u32, row: &[u32]) {
        debug_assert_eq!(row.len(), self.n(), "row length mismatch");
        match &self.inner {
            Inner::Dense(state) => {
                // SAFETY: the caller owns unpublished row `s`; the borrow
                // ends before publish.
                unsafe { state.row_mut(s).copy_from_slice(row) };
                state.publish(s);
            }
            Inner::Delta(store) => store.inner.publish_from(s, row),
            Inner::Mmap(store) => store.inner.publish_from(s, row),
        }
    }

    /// Lends published row `t` as a [`RowLease`] on *every* backend:
    /// a zero-cost borrow on dense and delta reference rows, a pinned
    /// hot-cache entry (decoding on miss) on delta/mmap. `None` when `t`
    /// is unpublished. This is the kernel's row-reuse read path.
    #[inline]
    pub fn lease_row(&self, t: u32) -> Option<RowLease<'_>> {
        match &self.inner {
            Inner::Dense(state) => state.published_row(t).map(|row| RowLease {
                ptr: row.as_ptr(),
                len: row.len(),
                origin: LeaseOrigin::Lent,
                backing: LeaseBacking::Borrowed(PhantomData),
            }),
            Inner::Delta(store) => store.inner.lease_row(t),
            Inner::Mmap(store) => store.inner.lease_row(t),
        }
    }

    /// Lends published row `t` as a plain borrow — dense only (`None`
    /// elsewhere even when published). The bulk readers use this
    /// zero-copy path; the kernel goes through [`Store::lease_row`].
    #[inline]
    pub fn published_row(&self, t: u32) -> Option<&[u32]> {
        match &self.inner {
            Inner::Dense(state) => state.published_row(t),
            _ => None,
        }
    }

    /// Look-ahead hint for row `t`: a hardware prefetch of the row's
    /// first cache lines on dense, and a *decode-ahead* on delta/mmap —
    /// the row is decoded into the hot cache by a worker thread while the
    /// caller keeps relaxing the current row, so the next
    /// [`Store::lease_row`] hits warm. Cheap and safe to call
    /// speculatively: unpublished, already-cached, and zero-cost-lendable
    /// rows are filtered out without taking the cache lock, and hints
    /// past the worker's bounded queue are dropped.
    #[inline]
    pub fn prefetch_row(&self, t: u32) {
        match &self.inner {
            Inner::Dense(state) => state.prefetch_row(t),
            Inner::Delta(store) => store.prefetch(t),
            Inner::Mmap(store) => store.prefetch(t),
        }
    }

    /// Whether row `s` has been published (`Acquire`).
    #[inline]
    pub fn is_published(&self, s: u32) -> bool {
        match &self.inner {
            Inner::Dense(state) => state.published_row(s).is_some(),
            Inner::Delta(store) => store.inner.flags[s as usize].load(Ordering::Acquire),
            Inner::Mmap(store) => store.inner.flags[s as usize].load(Ordering::Acquire),
        }
    }

    /// Number of published rows.
    pub fn published_count(&self) -> usize {
        match &self.inner {
            Inner::Dense(state) => state.published_count(),
            Inner::Delta(store) => count_flags(&store.inner.flags),
            Inner::Mmap(store) => count_flags(&store.inner.flags),
        }
    }

    /// Runs `f` over published row `s` (leasing through the hot-row
    /// cache on non-lending backends); `None` when `s` is unpublished.
    pub fn with_row<R>(&self, s: u32, f: impl FnOnce(&[u32]) -> R) -> Option<R> {
        match &self.inner {
            Inner::Dense(state) => state.published_row(s).map(f),
            Inner::Delta(store) => store.inner.lease_row(s).map(|lease| f(&lease)),
            Inner::Mmap(store) => store.inner.lease_row(s).map(|lease| f(&lease)),
        }
    }

    /// Copies published row `s` into `out`, bypassing the hot-row cache
    /// (the bulk-read path: snapshots, ledger streaming, analysis
    /// sweeps). Returns `false` — leaving `out` untouched — when `s` is
    /// unpublished.
    pub fn read_row_into(&self, s: u32, out: &mut [u32]) -> bool {
        debug_assert_eq!(out.len(), self.n());
        match &self.inner {
            Inner::Dense(state) => match state.published_row(s) {
                Some(row) => {
                    out.copy_from_slice(row);
                    true
                }
                None => false,
            },
            Inner::Delta(store) => store.inner.read_row_into(s, out),
            Inner::Mmap(store) => store.inner.read_row_into(s, out),
        }
    }

    /// Clones the published rows into a fresh matrix plus completion
    /// flags (the periodic-checkpoint payload). O(n²).
    pub fn snapshot(&self) -> (DistanceMatrix, Vec<bool>) {
        match &self.inner {
            Inner::Dense(state) => state.snapshot(),
            _ => {
                let n = self.n();
                let mut dist = DistanceMatrix::new_infinite(n);
                let mut completed = vec![false; n];
                for s in 0..n as u32 {
                    if self.read_row_into(s, dist.row_mut(s)) {
                        completed[s as usize] = true;
                    }
                }
                (dist, completed)
            }
        }
    }

    /// Consumes the store, yielding the final dense matrix (zero-copy for
    /// the dense backend; a decode pass otherwise). Unpublished rows come
    /// out infinite.
    pub fn into_matrix(self) -> DistanceMatrix {
        match self.inner {
            Inner::Dense(state) => state.into_matrix(),
            _ => self.snapshot().0,
        }
    }

    /// Consumes the store, yielding the matrix plus completion flags —
    /// the zero-copy teardown behind `Engine::into_snapshot` (no O(n²)
    /// clone on the dense backend).
    pub fn into_parts(self) -> (DistanceMatrix, Vec<bool>) {
        match self.inner {
            Inner::Dense(state) => state.into_parts(),
            _ => self.snapshot(),
        }
    }

    /// Bytes of published-row payload this store holds: resident matrix
    /// bytes (dense), encoded bytes (delta), or shard-file bytes (mmap —
    /// on disk, not resident). The `store_scaling` bench derives
    /// bytes/row from this.
    pub fn stored_bytes(&self) -> u64 {
        match &self.inner {
            Inner::Dense(state) => 4 * (state.n() as u64) * (state.n() as u64),
            Inner::Delta(store) => store.inner.bytes.load(Ordering::Relaxed),
            Inner::Mmap(store) => store.inner.bytes.load(Ordering::Relaxed),
        }
    }

    /// High-water mark of hot-cache bytes pinned by live leases (0 on
    /// dense, whose leases are plain borrows). Engines fold this into the
    /// run counters at teardown.
    pub fn pinned_bytes_peak(&self) -> u64 {
        match &self.inner {
            Inner::Dense(_) => 0,
            Inner::Delta(store) => store.inner.cache_pinned_peak(),
            Inner::Mmap(store) => store.inner.cache_pinned_peak(),
        }
    }

    /// Rows the decode-ahead worker has decoded into the hot cache so
    /// far (0 on dense). The observable effect of
    /// [`Store::prefetch_row`] on non-dense backends.
    pub fn decode_ahead_rows(&self) -> u64 {
        match &self.inner {
            Inner::Dense(_) => 0,
            Inner::Delta(store) => store.inner.decode_ahead_rows.load(Ordering::Relaxed),
            Inner::Mmap(store) => store.inner.decode_ahead_rows.load(Ordering::Relaxed),
        }
    }
}

fn count_flags(flags: &[AtomicBool]) -> usize {
    flags.iter().filter(|f| f.load(Ordering::Relaxed)).count()
}

// ---------------------------------------------------------------------------
// RowSource — the uniform read seam for analysis consumers
// ---------------------------------------------------------------------------

/// Read access to a distance matrix, row by row — implemented by both
/// [`DistanceMatrix`] and [`Store`], so analysis passes (eccentricities,
/// centrality, components) run unchanged against either.
pub trait RowSource {
    /// Number of vertices (the matrix is `n × n`).
    fn n(&self) -> usize;

    /// Visits every row in source order, `(source, row)` at a time.
    /// Unpublished rows of a partial [`Store`] are visited as all-[`INF`]
    /// (matching the dense matrix of an incomplete run).
    fn for_each_row(&self, visit: &mut dyn FnMut(u32, &[u32]));
}

impl RowSource for DistanceMatrix {
    fn n(&self) -> usize {
        DistanceMatrix::n(self)
    }

    fn for_each_row(&self, visit: &mut dyn FnMut(u32, &[u32])) {
        for s in 0..DistanceMatrix::n(self) as u32 {
            visit(s, self.row(s));
        }
    }
}

impl RowSource for Store {
    fn n(&self) -> usize {
        Store::n(self)
    }

    fn for_each_row(&self, visit: &mut dyn FnMut(u32, &[u32])) {
        match &self.inner {
            // Dense lends rows directly — no copy.
            Inner::Dense(state) => {
                let mut infinite: Option<Vec<u32>> = None;
                for s in 0..state.n() as u32 {
                    match state.published_row(s) {
                        Some(row) => visit(s, row),
                        None => {
                            let row = infinite.get_or_insert_with(|| vec![INF; state.n()]);
                            visit(s, row);
                        }
                    }
                }
            }
            _ => {
                let n = Store::n(self);
                let mut buf = vec![INF; n];
                for s in 0..n as u32 {
                    if !self.read_row_into(s, &mut buf) {
                        buf.fill(INF);
                    }
                    visit(s, &buf);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Hot-row LRU cache (shared by the delta and mmap backends)
// ---------------------------------------------------------------------------

/// One decoded row resident in the cache.
struct CacheEntry {
    data: Box<[u32]>,
    /// Live [`RowLease`]s pointing into `data`. While nonzero the entry
    /// is never evicted and its buffer is never replaced, which is what
    /// keeps the lease's raw pointer valid (`Box` heap data is stable
    /// even when the map rehashes).
    pins: u32,
    /// Set when the decode-ahead worker inserted this entry; consumed by
    /// the first pin so the kernel can attribute the hit.
    prefetched: bool,
    /// Recency stamp ([`RowCache::tick`] at the last pin/insert). The
    /// eviction queue stores the stamp each entry was queued with;
    /// `last_used > queued stamp` means the queue position is stale.
    last_used: u64,
}

/// A byte-budgeted LRU of decoded rows with pin-counted entries.
///
/// Pinned entries (rows under a live [`RowLease`]) are never evicted;
/// their bytes are non-reclaimable, so a budget that cannot hold the
/// pinned working set plus one incoming row fails loudly and
/// self-describingly rather than thrashing. [`StoreSpec::validate_for`]
/// keeps well-formed runs away from that failure.
struct RowCache {
    /// Backend name for error messages.
    label: &'static str,
    budget: u64,
    bytes: u64,
    pinned_bytes: u64,
    pinned_bytes_peak: u64,
    map: HashMap<u32, CacheEntry>,
    /// Lazy LRU queue: `(row, recency stamp at enqueue)`. Touching a row
    /// only bumps `CacheEntry::last_used` (O(1)); the eviction sweep
    /// re-queues entries whose stamp is stale instead of the touch path
    /// re-ordering the queue — an exact scan-and-remove per touch cost
    /// O(resident rows) per cache *hit* and dominated the delta
    /// backend's lease path. Invariant: one queue slot per resident row.
    order: VecDeque<(u32, u64)>,
    /// Monotonic recency clock for `CacheEntry::last_used`.
    tick: u64,
    /// Lock-free mirror of `map`'s keys, shared with the backend so the
    /// prefetch fast path can skip already-cached rows without taking
    /// this cache's lock.
    present: Arc<Vec<AtomicBool>>,
}

impl RowCache {
    fn new(label: &'static str, budget: u64, present: Arc<Vec<AtomicBool>>) -> RowCache {
        RowCache {
            label,
            budget,
            bytes: 0,
            pinned_bytes: 0,
            pinned_bytes_peak: 0,
            map: HashMap::new(),
            order: VecDeque::new(),
            tick: 0,
            present,
        }
    }

    /// Pins row `s` if cached, returning its data pointer/len and whether
    /// this consumed a decode-ahead `prefetched` mark. Also bumps `s` to
    /// most-recently-used (O(1): just the recency stamp; the queue is
    /// reconciled lazily at eviction time).
    fn pin(&mut self, s: u32) -> Option<(*const u32, usize, bool)> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.map.get_mut(&s)?;
        entry.pins += 1;
        entry.last_used = tick;
        if entry.pins == 1 {
            self.pinned_bytes += 4 * entry.data.len() as u64;
            self.pinned_bytes_peak = self.pinned_bytes_peak.max(self.pinned_bytes);
        }
        let prefetched = std::mem::take(&mut entry.prefetched);
        let out = (entry.data.as_ptr(), entry.data.len(), prefetched);
        Some(out)
    }

    /// Releases one pin on row `s`.
    fn unpin(&mut self, s: u32) {
        if let Some(entry) = self.map.get_mut(&s) {
            debug_assert!(entry.pins > 0, "unpin of unpinned row {s}");
            entry.pins = entry.pins.saturating_sub(1);
            if entry.pins == 0 {
                self.pinned_bytes -= 4 * entry.data.len() as u64;
            }
        }
    }

    /// Inserts a decoded row, evicting least-recently-used *unpinned*
    /// entries (other than the new one) until the budget holds. If the
    /// pinned working set leaves no room even after evicting everything
    /// evictable, panics with a message naming the minimum budget —
    /// never evicts a pinned row, never thrashes.
    fn insert(&mut self, s: u32, row: Box<[u32]>, prefetched: bool) {
        if !self.insert_inner(s, row, prefetched, true) {
            unreachable!("required insert reported failure instead of panicking");
        }
    }

    /// [`RowCache::insert`] that gives up (returns `false`) instead of
    /// panicking when the pinned working set leaves no room — the
    /// decode-ahead worker uses this, since a dropped prefetch is just a
    /// future cache miss.
    fn try_insert(&mut self, s: u32, row: Box<[u32]>, prefetched: bool) -> bool {
        self.insert_inner(s, row, prefetched, false)
    }

    fn insert_inner(&mut self, s: u32, row: Box<[u32]>, prefetched: bool, required: bool) -> bool {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.map.get_mut(&s) {
            // Never replace a resident entry: its buffer may be lent out
            // through a live lease. Refresh recency and keep the old row
            // (published rows are immutable, the bytes are identical).
            entry.last_used = tick;
            return true;
        }
        let incoming = 4 * row.len() as u64;
        self.bytes += incoming;
        if let Some(flag) = self.present.get(s as usize) {
            flag.store(true, Ordering::Relaxed);
        }
        self.tick += 1;
        self.map.insert(
            s,
            CacheEntry {
                data: row,
                pins: 0,
                prefetched,
                last_used: self.tick,
            },
        );
        self.order.push_back((s, self.tick));
        // Evict LRU-first, skipping pinned entries and the new row, and
        // lazily re-queueing entries whose stamp went stale (touched
        // since they were queued). Terminates: `last_used` is frozen
        // while we hold `&mut self`, so a re-queued stale entry pops
        // next time with `last_used == stamp` and is then evicted or
        // counted in `skipped`, which only grows and bounds the loop.
        let mut skipped = 0;
        while self.bytes > self.budget && skipped < self.order.len() {
            let (victim, stamp) = self.order.pop_front().expect("order non-empty");
            let Some(entry) = self.map.get(&victim) else {
                continue; // stale slot for an already-evicted row
            };
            if entry.last_used > stamp {
                self.order.push_back((victim, entry.last_used));
                continue;
            }
            if victim == s || entry.pins > 0 {
                self.order.push_back((victim, stamp));
                skipped += 1;
                continue;
            }
            if let Some(old) = self.map.remove(&victim) {
                self.bytes -= 4 * old.data.len() as u64;
                if let Some(flag) = self.present.get(victim as usize) {
                    flag.store(false, Ordering::Relaxed);
                }
            }
        }
        if self.bytes > self.budget && self.pinned_bytes + incoming > self.budget {
            // Only pinned entries (plus the new row) remain and they
            // exceed the budget: succeeding would mean thrashing every
            // future read, and evicting would dangle a live lease.
            let live: usize = self.map.values().filter(|e| e.pins > 0).count();
            let min = self.pinned_bytes + incoming;
            if required {
                panic!(
                    "{} hot-row cache budget of {} bytes cannot hold the pinned lease \
                     working set: {} bytes pinned by {live} live row lease(s) plus a \
                     {incoming}-byte decoded row; raise the budget to at least {min} \
                     bytes (`--store {}:{min}`)",
                    self.label, self.budget, self.pinned_bytes, self.label,
                );
            }
            // Roll the speculative insert back.
            if let Some(entry) = self.map.remove(&s) {
                debug_assert_eq!(entry.pins, 0, "fresh insert cannot be pinned");
                self.bytes -= 4 * entry.data.len() as u64;
                if let Some(flag) = self.present.get(s as usize) {
                    flag.store(false, Ordering::Relaxed);
                }
            }
            if let Some(pos) = self.order.iter().position(|&(k, _)| k == s) {
                self.order.remove(pos);
            }
            return false;
        }
        true
    }
}

// ---------------------------------------------------------------------------
// Decode-ahead worker (shared by the delta and mmap backends)
// ---------------------------------------------------------------------------

/// A lazily spawned worker thread that turns [`Store::prefetch_row`]
/// hints into hot-cache entries: the decode / pread runs on this thread
/// while the kernel thread keeps relaxing the current row — the
/// non-dense analogue of the dense backend's hardware prefetch.
///
/// Hints go through a small bounded queue; `try_send` drops hints past a
/// full queue (a dropped hint is a future cache miss, never an error).
/// Dropping the handle closes the queue and joins the worker.
struct DecodeAhead {
    tx: Option<SyncSender<u32>>,
    worker: Option<JoinHandle<()>>,
}

impl DecodeAhead {
    fn spawn(label: &'static str, decode: impl Fn(u32) + Send + 'static) -> DecodeAhead {
        let (tx, rx) = sync_channel::<u32>(DECODE_AHEAD_QUEUE);
        let worker = std::thread::Builder::new()
            .name(format!("parapsp-decode-{label}"))
            .stack_size(DECODE_AHEAD_STACK)
            .spawn(move || {
                while let Ok(s) = rx.recv() {
                    decode(s);
                }
            })
            .ok();
        // If the spawn failed (thread limit), drop the sender so every
        // hint becomes a cheap no-op.
        DecodeAhead {
            tx: worker.is_some().then_some(tx),
            worker,
        }
    }

    #[inline]
    fn hint(&self, s: u32) {
        if let Some(tx) = &self.tx {
            let _ = tx.try_send(s);
        }
    }
}

impl Drop for DecodeAhead {
    fn drop(&mut self) {
        self.tx = None;
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

// ---------------------------------------------------------------------------
// DeltaStore
// ---------------------------------------------------------------------------

/// One dense reference row of the delta backend.
#[derive(Clone)]
struct RefRow {
    id: u32,
    data: Box<[u32]>,
}

/// One row's encoded payload: written exactly once by the row's owner
/// before publication, immutable afterwards.
type EncodedSlot = UnsafeCell<Option<Box<[u8]>>>;

/// Rows delta-encoded against reference-row estimates.
///
/// Encoding of a non-reference row `s` (little-endian):
///
/// ```text
/// count: u8                       — reference rows used (< 0xFF)
/// count × (id: u32, d_s_ref: u32) — the ref ids and d(s, ref), verbatim
/// n × varint(zigzag(d(s,v) − est(v)))
/// ```
///
/// where `est(v) = min over refs r of d(s,r) ⊕ refrow_r[v]` (saturating;
/// `INF` participates as a plain `u32::MAX`). Recording `d(s, ref)` in
/// the header makes every row self-contained: decode needs only the
/// (append-only, never evicted) reference-row set, in any order. The
/// first `max_refs` published rows become the reference set — under the
/// hub-first source orderings the engines use, those are the highest-
/// degree hubs, the same vertices landmark triangulation would pick.
///
/// The decode-ahead worker holds an `Arc` of [`DeltaInner`];
/// `decode_ahead` is declared first so it drops (and joins the worker)
/// before this handle's `Arc` goes away.
struct DeltaStore {
    decode_ahead: OnceLock<DecodeAhead>,
    inner: Arc<DeltaInner>,
}

struct DeltaInner {
    n: usize,
    max_refs: usize,
    /// Append-only reference set; publishers briefly lock to clone the
    /// `Arc` (and to append while below `max_refs`), then encode outside
    /// the lock. Growth swaps in a *new* `Arc`, so readers (and leases)
    /// holding the old generation stay valid.
    refs: Mutex<Arc<Vec<RefRow>>>,
    /// Per-row encoded payload. Single writer per slot, readers only
    /// after the `Acquire` flag handshake.
    slots: Box<[EncodedSlot]>,
    flags: Box<[AtomicBool]>,
    cache: Mutex<RowCache>,
    /// Lock-free mirror of the cache's resident set (see
    /// [`RowCache::present`]).
    cached: Arc<Vec<AtomicBool>>,
    bytes: AtomicU64,
    decode_ahead_rows: AtomicU64,
}

// SAFETY: each slot is written exactly once, by the unique owner of its
// row, strictly before the `Release` store of its flag; readers load the
// flag with `Acquire` first. Reference rows are guarded by the mutex and
// immutable once inserted (behind `Arc`).
unsafe impl Sync for DeltaInner {}

impl DeltaStore {
    fn new(n: usize, max_refs: usize, cache_bytes: u64) -> DeltaStore {
        let cached: Arc<Vec<AtomicBool>> =
            Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
        DeltaStore {
            decode_ahead: OnceLock::new(),
            inner: Arc::new(DeltaInner {
                n,
                max_refs: max_refs.clamp(1, MAX_DELTA_REFS),
                refs: Mutex::new(Arc::new(Vec::new())),
                slots: (0..n).map(|_| UnsafeCell::new(None)).collect(),
                flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
                cache: Mutex::new(RowCache::new("delta", cache_bytes, Arc::clone(&cached))),
                cached,
                bytes: AtomicU64::new(0),
                decode_ahead_rows: AtomicU64::new(0),
            }),
        }
    }

    /// Decode-ahead hint: enqueue `t` for the worker unless the row is
    /// unpublished, already cached, or a reference row (those lease
    /// zero-copy — there is nothing to decode).
    fn prefetch(&self, t: u32) {
        let inner = &self.inner;
        if !inner.flags[t as usize].load(Ordering::Acquire) {
            return;
        }
        if inner.cached[t as usize].load(Ordering::Relaxed) {
            return;
        }
        if inner.payload(t)[0] == REF_MARKER {
            return;
        }
        let worker = self.decode_ahead.get_or_init(|| {
            let inner = Arc::clone(&self.inner);
            DecodeAhead::spawn("delta", move |s| inner.decode_ahead(s))
        });
        worker.hint(t);
    }
}

impl DeltaInner {
    fn publish_from(&self, s: u32, row: &[u32]) {
        debug_assert!(
            !self.flags[s as usize].load(Ordering::Relaxed),
            "row {s} published twice"
        );
        // Join the reference set while it is still growing; either way,
        // come away with the set to encode against.
        let (refs, is_ref) = {
            let mut guard = self.refs.lock().expect("refs mutex");
            if guard.len() < self.max_refs {
                let mut grown: Vec<RefRow> = (**guard).clone();
                grown.push(RefRow {
                    id: s,
                    data: row.into(),
                });
                *guard = Arc::new(grown);
                (Arc::clone(&guard), true)
            } else {
                (Arc::clone(&guard), false)
            }
        };
        let enc: Box<[u8]> = if is_ref {
            Box::new([REF_MARKER])
        } else {
            encode_delta_row(row, &refs)
        };
        self.bytes.fetch_add(enc.len() as u64, Ordering::Relaxed);
        // SAFETY: unique owner of slot `s`, before publication.
        unsafe { *self.slots[s as usize].get() = Some(enc) };
        self.flags[s as usize].store(true, Ordering::Release);
    }

    /// The encoded payload of a published row. Caller must have observed
    /// the `Acquire` flag.
    fn payload(&self, s: u32) -> &[u8] {
        // SAFETY: the Acquire load in the caller synchronized with the
        // owner's Release store; the slot is never written again.
        unsafe { (*self.slots[s as usize].get()).as_deref() }.expect("published row has a payload")
    }

    /// Decodes published row `s` into `out`. Caller must have observed
    /// the `Acquire` flag.
    fn decode_into(&self, s: u32, out: &mut [u32]) {
        // The refs guard is released at the end of this statement — it
        // is never held while the cache lock is taken (no lock cycle).
        let refs = Arc::clone(&self.refs.lock().expect("refs mutex"));
        decode_delta_row(self.payload(s), s, &refs, out);
    }

    fn read_row_into(&self, s: u32, out: &mut [u32]) -> bool {
        if !self.flags[s as usize].load(Ordering::Acquire) {
            return false;
        }
        self.decode_into(s, out);
        true
    }

    fn lease_row(&self, s: u32) -> Option<RowLease<'_>> {
        if !self.flags[s as usize].load(Ordering::Acquire) {
            return None;
        }
        // Reference rows lend zero-copy out of the append-only set; the
        // lease's Arc keeps this generation alive across growth.
        if self.payload(s)[0] == REF_MARKER {
            let refs = Arc::clone(&self.refs.lock().expect("refs mutex"));
            let row = refs
                .iter()
                .find(|r| r.id == s)
                .expect("marker row present in the reference set");
            let (ptr, len) = (row.data.as_ptr(), row.data.len());
            return Some(RowLease {
                ptr,
                len,
                origin: LeaseOrigin::Lent,
                backing: LeaseBacking::Refs(refs),
            });
        }
        pin_or_decode(&self.cache, s, |out| self.decode_into(s, out), self.n)
    }

    /// Worker-side decode of one hinted row into the cache.
    fn decode_ahead(&self, s: u32) {
        if self.cached[s as usize].load(Ordering::Relaxed) {
            return;
        }
        // Decode outside the cache lock — this overlap with the kernel
        // thread's relaxation is the whole point of the worker.
        let mut row = vec![INF; self.n].into_boxed_slice();
        self.decode_into(s, &mut row);
        let inserted = match self.cache.lock() {
            Ok(mut cache) => cache.try_insert(s, row, true),
            Err(_) => return,
        };
        if inserted {
            self.decode_ahead_rows.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn cache_pinned_peak(&self) -> u64 {
        self.cache
            .lock()
            .map(|cache| cache.pinned_bytes_peak)
            .unwrap_or(0)
    }
}

/// The pinned-lease slow path shared by delta and mmap: pin a cached
/// entry, or materialize the row with `load`, insert, and pin. The
/// just-inserted/pinned entry cannot be evicted or replaced while the
/// lease lives, so the returned raw pointer stays valid (`Box` heap data
/// does not move when the map rehashes).
fn pin_or_decode<'a>(
    cache: &'a Mutex<RowCache>,
    s: u32,
    load: impl FnOnce(&mut [u32]),
    n: usize,
) -> Option<RowLease<'a>> {
    let mut guard = cache.lock().expect("cache mutex");
    if let Some((ptr, len, prefetched)) = guard.pin(s) {
        let origin = if prefetched {
            LeaseOrigin::DecodeAhead
        } else {
            LeaseOrigin::CacheHit
        };
        return Some(RowLease {
            ptr,
            len,
            origin,
            backing: LeaseBacking::Pinned { cache, row: s },
        });
    }
    drop(guard);
    // Miss: materialize outside the lock so concurrent leases of other
    // rows (and the decode-ahead worker) keep moving. If someone else
    // inserted `s` meanwhile, `insert` keeps their entry and ours is
    // discarded — `pin` then serves whichever buffer is resident.
    let mut row = vec![INF; n].into_boxed_slice();
    load(&mut row);
    let mut guard = cache.lock().expect("cache mutex");
    guard.insert(s, row, false);
    let (ptr, len, prefetched) = guard.pin(s).expect("row just inserted");
    let origin = if prefetched {
        LeaseOrigin::DecodeAhead
    } else {
        LeaseOrigin::CacheMiss
    };
    Some(RowLease {
        ptr,
        len,
        origin,
        backing: LeaseBacking::Pinned { cache, row: s },
    })
}

/// Zig-zag encoding: small magnitudes (either sign) become small codes.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

fn write_varint(buf: &mut Vec<u8>, mut z: u64) {
    loop {
        let byte = (z & 0x7F) as u8;
        z >>= 7;
        if z == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut z = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        z |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return z;
        }
        shift += 7;
    }
}

/// How many reference rows one encoded row *names*. Encode and decode
/// both cost O(n × named refs) per row — naming the whole `delta:K` set
/// made the row round trip scale with K (the dominant cost of the delta
/// backend at K = 16). A handful of well-chosen refs captures nearly all
/// of the triangulation win, and the header names refs explicitly, so
/// decode needs no change and old payloads stay readable.
const MAX_REFS_PER_ROW: usize = 4;
/// Cells sampled per candidate ref when scoring which refs to name.
const REF_SCORE_SAMPLES: usize = 64;

/// Picks the refs this row encodes against: the `MAX_REFS_PER_ROW`
/// candidates with the smallest summed |delta| over a strided sample of
/// cells (each scored independently — cheap, and close enough to the
/// combined-min objective in practice).
fn choose_refs<'a>(row: &[u32], refs: &'a [RefRow]) -> Vec<&'a RefRow> {
    if refs.len() <= MAX_REFS_PER_ROW {
        return refs.iter().collect();
    }
    let step = (row.len() / REF_SCORE_SAMPLES).max(1);
    let mut scored: Vec<(u64, usize)> = refs
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let d = row[r.id as usize];
            let mut score = 0u64;
            let mut v = 0;
            while v < row.len() {
                let est = d.saturating_add(r.data[v]);
                score += (row[v] as i64 - est as i64).unsigned_abs();
                v += step;
            }
            (score, i)
        })
        .collect();
    scored.sort_unstable();
    scored.truncate(MAX_REFS_PER_ROW);
    // Header order is immaterial to decode; keep the score order.
    scored.iter().map(|&(_, i)| &refs[i]).collect()
}

fn encode_delta_row(row: &[u32], refs: &[RefRow]) -> Box<[u8]> {
    debug_assert!(refs.len() < REF_MARKER as usize);
    let chosen = choose_refs(row, refs);
    let mut buf = Vec::with_capacity(1 + chosen.len() * 8 + row.len());
    buf.push(chosen.len() as u8);
    let mut d_ref: Vec<u32> = Vec::with_capacity(chosen.len());
    for r in &chosen {
        let d = row[r.id as usize];
        buf.extend_from_slice(&r.id.to_le_bytes());
        buf.extend_from_slice(&d.to_le_bytes());
        d_ref.push(d);
    }
    for (v, &d) in row.iter().enumerate() {
        // Triangulated estimate of d(s, v): the best two-hop route
        // `s → ref → v`, saturating, with INF as plain u32::MAX.
        let mut est = INF;
        for (r, &dr) in chosen.iter().zip(&d_ref) {
            est = est.min(dr.saturating_add(r.data[v]));
        }
        write_varint(&mut buf, zigzag(d as i64 - est as i64));
    }
    buf.into_boxed_slice()
}

fn decode_delta_row(enc: &[u8], s: u32, refs: &[RefRow], out: &mut [u32]) {
    if enc[0] == REF_MARKER {
        let r = refs
            .iter()
            .find(|r| r.id == s)
            .expect("marker row present in the reference set");
        out.copy_from_slice(&r.data);
        return;
    }
    let count = enc[0] as usize;
    let mut pos = 1usize;
    // The refs named in the header, with d(s, ref) verbatim — the set
    // only grows, so every named ref is still present.
    let mut used: Vec<(u32, &[u32])> = Vec::with_capacity(count);
    for _ in 0..count {
        let id = u32::from_le_bytes(enc[pos..pos + 4].try_into().expect("header"));
        let d = u32::from_le_bytes(enc[pos + 4..pos + 8].try_into().expect("header"));
        pos += 8;
        let r = refs
            .iter()
            .find(|r| r.id == id)
            .expect("encode-time reference still present");
        used.push((d, &r.data));
    }
    for (v, slot) in out.iter_mut().enumerate() {
        let mut est = INF;
        for &(d, data) in &used {
            est = est.min(d.saturating_add(data[v]));
        }
        let delta = unzigzag(read_varint(enc, &mut pos));
        *slot = (est as i64 + delta) as u32;
    }
    debug_assert_eq!(pos, enc.len(), "trailing bytes in encoded row");
}

// ---------------------------------------------------------------------------
// MmapStore
// ---------------------------------------------------------------------------

/// Process-wide counter for unique scratch-directory names.
static STORE_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Rows in fixed-size file shards under a scratch directory.
///
/// Shard `k` holds rows `k·rows_per_shard ..`, each at byte offset
/// `(s mod rows_per_shard) · 4n`, written little-endian with one `pwrite`
/// and read back with one `pread`. Row writes land at disjoint offsets,
/// so concurrent publishers need no lock; shard files are created lazily
/// through a `OnceLock`. The directory is removed when the last handle
/// drops (best effort) — `decode_ahead` is declared first so the worker
/// joins before this handle's `Arc` goes away, keeping the removal
/// prompt and deterministic.
struct MmapStore {
    decode_ahead: OnceLock<DecodeAhead>,
    inner: Arc<MmapInner>,
}

struct MmapInner {
    n: usize,
    dir: PathBuf,
    rows_per_shard: usize,
    shards: Box<[OnceLock<File>]>,
    flags: Box<[AtomicBool]>,
    cache: Mutex<RowCache>,
    /// Lock-free mirror of the cache's resident set (see
    /// [`RowCache::present`]).
    cached: Arc<Vec<AtomicBool>>,
    bytes: AtomicU64,
    decode_ahead_rows: AtomicU64,
}

impl MmapStore {
    fn new(n: usize, cache_bytes: u64) -> MmapStore {
        let row_bytes = (4 * n.max(1)) as u64;
        let rows_per_shard = (SHARD_BYTES / row_bytes).max(1) as usize;
        let shard_count = n.div_ceil(rows_per_shard).max(1);
        let dir = std::env::temp_dir().join(format!(
            "parapsp-store-{}-{}",
            std::process::id(),
            STORE_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|err| panic!("creating store shard dir {}: {err}", dir.display()));
        let cached: Arc<Vec<AtomicBool>> =
            Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
        MmapStore {
            decode_ahead: OnceLock::new(),
            inner: Arc::new(MmapInner {
                n,
                dir,
                rows_per_shard,
                shards: (0..shard_count).map(|_| OnceLock::new()).collect(),
                flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
                cache: Mutex::new(RowCache::new("mmap", cache_bytes, Arc::clone(&cached))),
                cached,
                bytes: AtomicU64::new(0),
                decode_ahead_rows: AtomicU64::new(0),
            }),
        }
    }

    /// Decode-ahead hint: enqueue `t` for the worker unless the row is
    /// unpublished or already cached.
    fn prefetch(&self, t: u32) {
        let inner = &self.inner;
        if !inner.flags[t as usize].load(Ordering::Acquire) {
            return;
        }
        if inner.cached[t as usize].load(Ordering::Relaxed) {
            return;
        }
        let worker = self.decode_ahead.get_or_init(|| {
            let inner = Arc::clone(&self.inner);
            DecodeAhead::spawn("mmap", move |s| inner.decode_ahead(s))
        });
        worker.hint(t);
    }
}

impl MmapInner {
    fn shard(&self, index: usize) -> &File {
        self.shards[index].get_or_init(|| {
            let path = self.dir.join(format!("shard-{index}.rows"));
            OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)
                .unwrap_or_else(|err| panic!("opening store shard {}: {err}", path.display()))
        })
    }

    #[inline]
    fn location(&self, s: u32) -> (usize, u64) {
        let shard = s as usize / self.rows_per_shard;
        let offset = (s as usize % self.rows_per_shard) as u64 * 4 * self.n as u64;
        (shard, offset)
    }

    fn publish_from(&self, s: u32, row: &[u32]) {
        debug_assert!(
            !self.flags[s as usize].load(Ordering::Relaxed),
            "row {s} published twice"
        );
        let mut buf = vec![0u8; 4 * self.n];
        for (chunk, &d) in buf.chunks_exact_mut(4).zip(row) {
            chunk.copy_from_slice(&d.to_le_bytes());
        }
        let (shard, offset) = self.location(s);
        self.shard(shard)
            .write_all_at(&buf, offset)
            .unwrap_or_else(|err| panic!("writing store shard row {s}: {err}"));
        self.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.flags[s as usize].store(true, Ordering::Release);
    }

    /// Reads published row `s` from its shard. Caller must have observed
    /// the `Acquire` flag.
    fn read_into(&self, s: u32, out: &mut [u32]) {
        let mut buf = vec![0u8; 4 * self.n];
        let (shard, offset) = self.location(s);
        self.shard(shard)
            .read_exact_at(&mut buf, offset)
            .unwrap_or_else(|err| panic!("reading store shard row {s}: {err}"));
        for (chunk, slot) in buf.chunks_exact(4).zip(out.iter_mut()) {
            *slot = u32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
        }
    }

    fn read_row_into(&self, s: u32, out: &mut [u32]) -> bool {
        if !self.flags[s as usize].load(Ordering::Acquire) {
            return false;
        }
        self.read_into(s, out);
        true
    }

    fn lease_row(&self, s: u32) -> Option<RowLease<'_>> {
        if !self.flags[s as usize].load(Ordering::Acquire) {
            return None;
        }
        pin_or_decode(&self.cache, s, |out| self.read_into(s, out), self.n)
    }

    /// Worker-side pread of one hinted row into the cache.
    fn decode_ahead(&self, s: u32) {
        if self.cached[s as usize].load(Ordering::Relaxed) {
            return;
        }
        let mut row = vec![INF; self.n].into_boxed_slice();
        self.read_into(s, &mut row);
        let inserted = match self.cache.lock() {
            Ok(mut cache) => cache.try_insert(s, row, true),
            Err(_) => return,
        };
        if inserted {
            self.decode_ahead_rows.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn cache_pinned_peak(&self) -> u64 {
        self.cache
            .lock()
            .map(|cache| cache.pinned_bytes_peak)
            .unwrap_or(0)
    }
}

impl Drop for MmapInner {
    fn drop(&mut self) {
        // Best effort: shard files are scratch, never a durability
        // artifact (that's what checkpoints and ledgers are for).
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    /// Deterministic pseudo-random distances (splitmix64) with ~1/8
    /// INF cells, so encode/decode sees both signs and saturation.
    fn fixture_rows(n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        (0..n)
            .map(|s| {
                (0..n)
                    .map(|v| {
                        if s == v {
                            0
                        } else if next() % 8 == 0 {
                            INF
                        } else {
                            (next() % 10_000) as u32
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn all_specs() -> Vec<StoreSpec> {
        vec![
            StoreSpec::dense(),
            StoreSpec::delta(4),
            StoreSpec::mmap(1 << 20),
        ]
    }

    #[test]
    fn parse_accepts_every_cli_spelling() {
        assert_eq!("dense".parse(), Ok(StoreSpec::dense()));
        assert_eq!("delta".parse(), Ok(StoreSpec::delta(DEFAULT_DELTA_REFS)));
        assert_eq!("delta:8".parse(), Ok(StoreSpec::delta(8)));
        assert_eq!("mmap".parse(), Ok(StoreSpec::mmap(DEFAULT_MMAP_CACHE)));
        assert_eq!("mmap:4096".parse(), Ok(StoreSpec::mmap(4096)));
        assert_eq!("mmap:256k".parse(), Ok(StoreSpec::mmap(256 << 10)));
        assert_eq!("mmap:16M".parse(), Ok(StoreSpec::mmap(16 << 20)));
        assert_eq!("mmap:2g".parse(), Ok(StoreSpec::mmap(2 << 30)));
    }

    #[test]
    fn parse_rejects_malformed_specs_with_possible_values() {
        for bad in [
            "",
            "dens",
            "dense:4",
            "delta:0",
            "delta:wide",
            "mmap:0",
            "mmap:huge",
        ] {
            let err = bad.parse::<StoreSpec>().unwrap_err();
            assert!(err.contains("store"), "{bad}: {err}");
        }
        let err = "tiered".parse::<StoreSpec>().unwrap_err();
        assert!(
            err.contains("possible values") && err.contains("mmap"),
            "{err}"
        );
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for spec in all_specs() {
            assert_eq!(spec.label().parse(), Ok(spec.clone()), "{}", spec.label());
        }
    }

    #[test]
    fn every_backend_round_trips_rows_bit_identically() {
        let n = 60;
        let rows = fixture_rows(n, 0xA5A5);
        for spec in all_specs() {
            let store = Store::new(n, &spec);
            assert_eq!(store.published_count(), 0);
            for (s, row) in rows.iter().enumerate() {
                assert!(!store.is_published(s as u32));
                store.publish_from(s as u32, row);
                assert!(store.is_published(s as u32));
            }
            assert_eq!(store.published_count(), n);
            // Point reads through the cache.
            let mut buf = vec![0u32; n];
            for (s, row) in rows.iter().enumerate() {
                let got = store.with_row(s as u32, |r| r.to_vec()).unwrap();
                assert_eq!(&got, row, "{} with_row({s})", spec.label());
                assert!(store.read_row_into(s as u32, &mut buf));
                assert_eq!(&buf, row, "{} read_row_into({s})", spec.label());
            }
            // Bulk teardown.
            let matrix = store.into_matrix();
            for (s, row) in rows.iter().enumerate() {
                assert_eq!(matrix.row(s as u32), &row[..], "{}", spec.label());
            }
        }
    }

    #[test]
    fn staged_kernel_writes_match_in_place_dense_writes() {
        // The dense backend accepts both the in-place protocol
        // (try_row_mut + publish) and the staged one (publish_from);
        // both must yield the same bytes.
        let n = 16;
        let rows = fixture_rows(n, 7);
        let in_place = Store::new(n, &StoreSpec::dense());
        let staged = Store::new(n, &StoreSpec::dense());
        for (s, row) in rows.iter().enumerate() {
            // SAFETY: single-threaded test, unique owner of each row.
            let slot = unsafe { in_place.try_row_mut(s as u32) }.expect("dense lends rows");
            slot.copy_from_slice(row);
            in_place.publish(s as u32);
            staged.publish_from(s as u32, row);
        }
        assert_eq!(
            in_place
                .into_matrix()
                .first_difference(&staged.into_matrix()),
            None
        );
    }

    #[test]
    fn every_backend_leases_published_rows() {
        let n = 8;
        let rows = fixture_rows(n, 11);
        for spec in all_specs() {
            let store = Store::new(n, &spec);
            assert!(
                store.lease_row(0).is_none(),
                "{}: unpublished row must not lease",
                spec.label()
            );
            store.publish_from(0, &rows[0]);
            store.publish_from(5, &rows[5]);
            let lease = store.lease_row(0).expect("published row leases");
            assert_eq!(&lease[..], &rows[0][..], "{}", spec.label());
            // Row 0 is lent zero-copy everywhere: the dense matrix
            // borrow, or the first-published delta reference row — while
            // mmap pins a cache entry.
            match spec.kind() {
                StoreKind::Dense | StoreKind::Delta => {
                    assert_eq!(lease.origin(), LeaseOrigin::Lent, "{}", spec.label())
                }
                StoreKind::Mmap => {
                    assert_eq!(lease.origin(), LeaseOrigin::CacheMiss, "{}", spec.label());
                    let again = store.lease_row(0).expect("still leases");
                    assert_eq!(again.origin(), LeaseOrigin::CacheHit, "{}", spec.label());
                }
            }
            // A lease held across another row's lease stays intact.
            let other = store.lease_row(5).expect("published row leases");
            assert_eq!(&other[..], &rows[5][..], "{}", spec.label());
            assert_eq!(&lease[..], &rows[0][..], "{}", spec.label());
            drop(other);
            drop(lease);
            // Mutable in-place access stays a dense-only capability.
            let dense = spec.kind() == StoreKind::Dense;
            assert_eq!(
                unsafe { store.try_row_mut(1) }.is_some(),
                dense,
                "{}",
                spec.label()
            );
            assert_eq!(store.published_row(0).is_some(), dense, "{}", spec.label());
        }
    }

    /// Satellite: `prefetch_row` must do something observable on every
    /// backend — a decode-ahead counter bump plus a warm next lease on
    /// delta/mmap (previously a silent no-op), a harmless hardware
    /// prefetch on dense.
    #[test]
    fn prefetch_row_decodes_ahead_on_non_dense_backends() {
        let n = 32;
        let rows = fixture_rows(n, 17);
        for spec in all_specs() {
            let store = Store::new(n, &spec);
            for (s, row) in rows.iter().enumerate() {
                store.publish_from(s as u32, row);
            }
            // Row 20 is a plain (non-reference) row on every backend.
            let t = 20u32;
            store.prefetch_row(t);
            if spec.kind() == StoreKind::Dense {
                assert_eq!(store.decode_ahead_rows(), 0, "dense has no worker");
                continue;
            }
            // The worker is asynchronous: wait for the observable bump.
            let deadline = Instant::now() + Duration::from_secs(10);
            while store.decode_ahead_rows() == 0 {
                assert!(
                    Instant::now() < deadline,
                    "{}: decode-ahead worker never populated the cache",
                    spec.label()
                );
                std::thread::yield_now();
            }
            let lease = store.lease_row(t).expect("published row leases");
            assert_eq!(
                lease.origin(),
                LeaseOrigin::DecodeAhead,
                "{}: the prefetched row must lease warm",
                spec.label()
            );
            assert_eq!(&lease[..], &rows[t as usize][..], "{}", spec.label());
            // Prefetching an unpublished row is a harmless no-op.
            drop(lease);
        }
    }

    #[test]
    fn pinned_rows_survive_eviction_sweeps() {
        let n = 64; // 256 bytes per row
        let rows = fixture_rows(n, 19);
        // Budget of 3 rows: every sweep below evicts hard.
        let store = Store::new(n, &StoreSpec::mmap(3 * 4 * n as u64));
        for (s, row) in rows.iter().enumerate() {
            store.publish_from(s as u32, row);
        }
        let lease = store.lease_row(7).expect("published row leases");
        assert_eq!(&lease[..], &rows[7][..]);
        // Sweep every other row through the tiny cache — without the pin
        // this would evict row 7 many times over.
        for pass in 0..3 {
            for (s, row) in rows.iter().enumerate() {
                let got = store.with_row(s as u32, |r| r.to_vec()).unwrap();
                assert_eq!(&got, row, "pass {pass} row {s}");
            }
        }
        assert_eq!(&lease[..], &rows[7][..], "pinned lease view churned");
        assert!(store.pinned_bytes_peak() >= 4 * n as u64);
        drop(lease);
        // Unpinned now: row 7 is evictable again and the cache still
        // respects its budget.
        for (s, row) in rows.iter().enumerate() {
            let got = store.with_row(s as u32, |r| r.to_vec()).unwrap();
            assert_eq!(&got, row);
        }
        let Inner::Mmap(outer) = &store.inner else {
            panic!("mmap spec built a non-mmap store")
        };
        let cache = outer.inner.cache.lock().unwrap();
        assert!(
            cache.bytes <= cache.budget,
            "cache over budget after unpin: {} > {}",
            cache.bytes,
            cache.budget
        );
    }

    #[test]
    fn too_small_budget_fails_construction_with_minimum() {
        let n = 1000; // 4000-byte rows; minimum budget 8000.
        let spec = StoreSpec::mmap(4096);
        let err = Store::try_new(n, &spec).unwrap_err();
        assert!(err.contains("8000"), "must name the minimum budget: {err}");
        assert!(err.contains("mmap:8000"), "must suggest the fix: {err}");
        assert!(err.contains("4096"), "must name the given budget: {err}");
        assert_eq!(spec.validate_for(n), Err(err));
        // At the minimum, construction succeeds.
        assert!(Store::try_new(n, &StoreSpec::mmap(8000)).is_ok());
        // Dense has no cache to validate.
        assert!(StoreSpec::dense().validate_for(usize::MAX >> 8).is_ok());
    }

    #[test]
    fn pinned_working_set_overflow_fails_loudly_not_by_thrash() {
        // Two rows of budget, two live leases pinning both: a third
        // lease cannot be served without evicting a pinned row, so it
        // must panic with the self-describing budget message.
        let n = 64;
        let rows = fixture_rows(n, 29);
        let store = Store::new(n, &StoreSpec::mmap(2 * 4 * n as u64));
        for (s, row) in rows.iter().enumerate().take(3) {
            store.publish_from(s as u32, row);
        }
        let a = store.lease_row(0).expect("lease row 0");
        let b = store.lease_row(1).expect("lease row 1");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.lease_row(2)
        }))
        .expect_err("third lease must overflow the pinned budget");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(
            msg.contains("pinned") && msg.contains("lease") && msg.contains("budget"),
            "panic must be self-describing: {msg}"
        );
        assert_eq!(&a[..], &rows[0][..], "held leases stay valid");
        assert_eq!(&b[..], &rows[1][..], "held leases stay valid");
        // Dropping the leases after the poison must not double-panic.
        drop(a);
        drop(b);
    }

    #[test]
    fn from_parts_prepublishes_only_completed_rows() {
        let n = 12;
        let rows = fixture_rows(n, 23);
        let mut dist = DistanceMatrix::new_infinite(n);
        let mut completed = vec![false; n];
        for s in (0..n).step_by(3) {
            dist.copy_row_from(s as u32, &rows[s]);
            completed[s] = true;
        }
        for spec in all_specs() {
            let store = Store::from_parts(dist.clone(), &completed, &spec);
            for s in 0..n {
                assert_eq!(
                    store.is_published(s as u32),
                    completed[s],
                    "{}",
                    spec.label()
                );
                if completed[s] {
                    let got = store.with_row(s as u32, |r| r.to_vec()).unwrap();
                    assert_eq!(&got, &rows[s], "{}", spec.label());
                }
            }
            let (snap, flags) = store.snapshot();
            assert_eq!(flags, completed, "{}", spec.label());
            assert_eq!(snap.first_difference(&dist), None, "{}", spec.label());
        }
    }

    #[test]
    fn delta_compresses_structured_rows_well_below_dense() {
        // Rows that differ from a common hub row by a handful of cells —
        // the structure the reference-row estimates are built to exploit.
        let n = 256;
        let mut base: Vec<u32> = (0..n).map(|v| 100 + (v as u32 % 50)).collect();
        base[0] = 0;
        let store = Store::new(n, &StoreSpec::delta(4));
        for s in 0..n {
            let mut row = base.clone();
            row[s] = 0;
            row[(s + 7) % n] += 3;
            store.publish_from(s as u32, &row);
        }
        let dense_bytes = 4 * (n as u64) * (n as u64);
        let stored = store.stored_bytes();
        // The varint floor is one byte per cell, so the best possible is
        // just under 4× smaller than dense; near-zero deltas must get
        // close to that floor.
        assert!(
            stored * 3 < dense_bytes,
            "delta encoding should be ≥3× smaller here: {stored} vs {dense_bytes}"
        );
        // And still decode exactly.
        for s in 0..n as u32 {
            store
                .with_row(s, |row| {
                    assert_eq!(row[s as usize], 0);
                    assert_eq!(row[(s as usize + 7) % n], base[(s as usize + 7) % n] + 3);
                })
                .unwrap();
        }
    }

    #[test]
    fn hot_row_cache_respects_its_byte_budget() {
        let n = 64; // 256 bytes per row
        let rows = fixture_rows(n, 31);
        // Budget of 3 rows.
        let store = Store::new(n, &StoreSpec::mmap(3 * 4 * n as u64));
        for (s, row) in rows.iter().enumerate() {
            store.publish_from(s as u32, row);
        }
        // Touch many distinct rows; the cache must stay within budget
        // while every read stays exact.
        for pass in 0..3 {
            for (s, row) in rows.iter().enumerate() {
                let got = store.with_row(s as u32, |r| r.to_vec()).unwrap();
                assert_eq!(&got, row, "pass {pass} row {s}");
            }
        }
        let Inner::Mmap(outer) = &store.inner else {
            panic!("mmap spec built a non-mmap store")
        };
        let cache = outer.inner.cache.lock().unwrap();
        assert!(
            cache.bytes <= cache.budget,
            "cache over budget: {} > {}",
            cache.bytes,
            cache.budget
        );
        assert!(cache.map.len() <= 3);
        // The lock-free mirror matches the resident set.
        for s in 0..n {
            assert_eq!(
                cache.present[s].load(Ordering::Relaxed),
                cache.map.contains_key(&(s as u32)),
                "present bitmap out of sync at row {s}"
            );
        }
    }

    #[test]
    fn cross_thread_publication_is_ordered_on_every_backend() {
        for spec in [StoreSpec::delta(2), StoreSpec::mmap(1 << 20)] {
            let n = 512;
            let store = std::sync::Arc::new(Store::new(n, &spec));
            let expect: Vec<u32> = (0..n as u32).map(|v| v * 3 + 1).collect();
            let writer = {
                let store = std::sync::Arc::clone(&store);
                let expect = expect.clone();
                std::thread::spawn(move || {
                    // Publish a reference row first so row 9 encodes
                    // against something.
                    store.publish_from(0, &vec![1u32; n]);
                    store.publish_from(9, &expect);
                })
            };
            loop {
                let done = store.with_row(9, |row| {
                    assert_eq!(row, &expect[..], "{}", spec.label());
                });
                if done.is_some() {
                    break;
                }
                std::hint::spin_loop();
            }
            writer.join().unwrap();
        }
    }

    #[test]
    fn row_source_visits_unpublished_rows_as_infinite() {
        let n = 6;
        let rows = fixture_rows(n, 41);
        for spec in all_specs() {
            let store = Store::new(n, &spec);
            store.publish_from(2, &rows[2]);
            let mut seen = Vec::new();
            RowSource::for_each_row(&store, &mut |s, row| {
                seen.push((s, row.to_vec()));
            });
            assert_eq!(seen.len(), n, "{}", spec.label());
            assert_eq!(seen[2].1, rows[2], "{}", spec.label());
            assert!(
                seen[3].1.iter().all(|&d| d == INF),
                "{}: unpublished row must read as INF",
                spec.label()
            );
        }
        // The DistanceMatrix impl visits its rows verbatim.
        let mut dist = DistanceMatrix::new_infinite(3);
        dist.copy_row_from(1, &[5, 0, 7]);
        let mut count = 0;
        RowSource::for_each_row(&dist, &mut |s, row| {
            if s == 1 {
                assert_eq!(row, &[5, 0, 7]);
            }
            count += 1;
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn mmap_store_cleans_up_its_shard_directory() {
        let dir = {
            let store = Store::new(32, &StoreSpec::mmap(1 << 20));
            store.publish_from(0, &[0u32; 32]);
            // Wake the decode-ahead worker so drop also exercises the
            // join-before-teardown path.
            store.prefetch_row(0);
            let Inner::Mmap(outer) = &store.inner else {
                panic!("mmap spec built a non-mmap store")
            };
            assert!(outer.inner.dir.exists());
            outer.inner.dir.clone()
        };
        assert!(!dir.exists(), "drop must remove {}", dir.display());
    }

    #[test]
    fn varint_zigzag_round_trips_extremes() {
        let mut buf = Vec::new();
        for v in [0i64, 1, -1, 127, -128, u32::MAX as i64, -(u32::MAX as i64)] {
            buf.clear();
            write_varint(&mut buf, zigzag(v));
            let mut pos = 0;
            assert_eq!(unzigzag(read_varint(&buf, &mut pos)), v);
            assert_eq!(pos, buf.len());
        }
    }
}
