//! Tiered distance-matrix storage: the [`Store`] behind every engine.
//!
//! The paper's engines share one `n × n` row matrix through the
//! Release/Acquire publication protocol of the `shared` module. That dense
//! layout is the fastest backend — and the memory wall: exact APSP dies
//! around the point where `4 n²` bytes stop fitting in RAM. This module
//! makes the storage a run-time choice while keeping the publication
//! protocol (and therefore the engines, the Runner, persistence, and the
//! analysis readers) identical across backends:
//!
//! * [`StoreKind::Dense`] — today's layout, the default and the
//!   bit-identity reference. The only backend that *lends* `&[u32]` rows
//!   ([`Store::lends_rows`]), which is what the kernel's row-reuse trick
//!   and prefetch hints need; everything else degrades gracefully by
//!   capability.
//! * [`StoreKind::Delta`] — published rows are delta-encoded (zig-zag
//!   varint) against estimates triangulated from a small set of dense
//!   *reference rows*: the first `k` published rows. Under the hub-first
//!   orderings the engines already use, those are exactly the landmark
//!   hubs, so the estimates are tight and most deltas are one byte. Reads
//!   decode through a bounded hot-row cache.
//! * [`StoreKind::Mmap`] — rows live in fixed-size file shards under a
//!   scratch directory, written with `pwrite` and read back with `pread`
//!   through a byte-budgeted LRU of hot decoded rows, so exact APSP
//!   completes on graphs whose dense matrix exceeds RAM. (The CLI spelling
//!   is `mmap` for the classic out-of-core idiom, but the implementation
//!   deliberately uses positioned file I/O rather than `mmap(2)`: a
//!   `MAP_SHARED` mapping of the whole matrix would count against a
//!   virtual-memory rlimit and defeat bounded-memory runs — see
//!   DESIGN.md §14.)
//!
//! # Publication memory ordering
//!
//! Every backend keeps the dense protocol's guarantee: the bytes of row
//! `s` — cells, encoded payload, or shard file write — are fully written
//! *before* `flag[s]` is stored with `Release`, and every reader checks
//! the flag with `Acquire` first. A reader that observes the flag
//! therefore observes a complete, final row, regardless of backend.
//!
//! All backends are bit-identical on the final matrix: the engines compute
//! rows in ordinary `&mut [u32]` scratch either way, and the backends only
//! decide where the published bytes live.

use std::cell::UnsafeCell;
use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use parapsp_graph::INF;
use parapsp_parfor::spec;

use crate::dist::DistanceMatrix;
use crate::shared::SharedDistState;

// ---------------------------------------------------------------------------
// StoreKind / StoreSpec — the CLI-facing choice
// ---------------------------------------------------------------------------

/// Which storage backend holds published distance rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// One dense in-memory `n × n` matrix (the default and the
    /// bit-identity reference; the only backend that lends rows).
    #[default]
    Dense,
    /// Rows delta-encoded against reference-row estimates, decoded through
    /// a bounded hot-row cache.
    Delta,
    /// Rows in fixed-size file shards with a byte-budgeted LRU of hot
    /// decoded rows (out-of-core).
    Mmap,
}

impl StoreKind {
    /// The stable lowercase CLI name.
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Dense => "dense",
            StoreKind::Delta => "delta",
            StoreKind::Mmap => "mmap",
        }
    }
}

/// Default number of dense reference rows for the delta backend.
const DEFAULT_DELTA_REFS: usize = 16;
/// Hard cap on reference rows (the encoding's count byte reserves 0xFF).
const MAX_DELTA_REFS: usize = 254;
/// Default hot-row cache budget for the delta backend.
const DEFAULT_DELTA_CACHE: u64 = 32 << 20;
/// Default hot-row cache budget for the mmap backend.
const DEFAULT_MMAP_CACHE: u64 = 64 << 20;
/// Target size of one mmap shard file.
const SHARD_BYTES: u64 = 64 << 20;
/// Slot marker for a delta row that *is* a reference row (stored dense in
/// the reference set; the slot holds only this byte).
const REF_MARKER: u8 = 0xFF;

/// A parsed `--store` specification: backend plus its tuning parameter.
///
/// CLI spellings: `dense`, `delta`, `delta:<refs>`, `mmap`,
/// `mmap:<budget>` where `<budget>` accepts `k`/`m`/`g` suffixes (the
/// hot-row cache budget in bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSpec {
    kind: StoreKind,
    refs: usize,
    cache_bytes: u64,
}

impl Default for StoreSpec {
    fn default() -> Self {
        StoreSpec::dense()
    }
}

impl StoreSpec {
    /// Every CLI spelling, for self-describing rejection messages.
    pub const POSSIBLE: &'static [&'static str] = &["dense", "delta[:<refs>]", "mmap[:<budget>]"];

    /// The dense in-memory backend (the default).
    pub fn dense() -> StoreSpec {
        StoreSpec {
            kind: StoreKind::Dense,
            refs: 0,
            cache_bytes: 0,
        }
    }

    /// The delta backend with `refs` dense reference rows (clamped to a
    /// minimum of 1 and an encoding-imposed maximum of 254).
    pub fn delta(refs: usize) -> StoreSpec {
        StoreSpec {
            kind: StoreKind::Delta,
            refs: refs.clamp(1, MAX_DELTA_REFS),
            cache_bytes: DEFAULT_DELTA_CACHE,
        }
    }

    /// The out-of-core shard backend with a hot-row cache of
    /// `cache_bytes` (clamped to at least one row at build time).
    pub fn mmap(cache_bytes: u64) -> StoreSpec {
        StoreSpec {
            kind: StoreKind::Mmap,
            refs: 0,
            cache_bytes: cache_bytes.max(1),
        }
    }

    /// The chosen backend.
    pub fn kind(&self) -> StoreKind {
        self.kind
    }

    /// Stable label round-tripping through [`StoreSpec::parse`]:
    /// `dense`, `delta:<refs>`, `mmap:<bytes>`.
    pub fn label(&self) -> String {
        match self.kind {
            StoreKind::Dense => "dense".to_owned(),
            StoreKind::Delta => format!("delta:{}", self.refs),
            StoreKind::Mmap => format!("mmap:{}", self.cache_bytes),
        }
    }

    /// Parses a CLI spelling; shares the spec helper (and error style)
    /// with `--schedule` / `--solver` parsing.
    pub fn parse(raw: &str) -> Result<StoreSpec, String> {
        let (name, param) = spec::split_spec(raw);
        match name {
            "dense" if param.is_some() => Err(spec::reject_param("store", "dense")),
            "dense" => Ok(StoreSpec::dense()),
            "delta" => match param {
                None => Ok(StoreSpec::delta(DEFAULT_DELTA_REFS)),
                Some(p) => {
                    let refs =
                        spec::parse_positive_param::<usize>("store", "delta", Some(p), None)?;
                    Ok(StoreSpec::delta(refs))
                }
            },
            "mmap" => match param {
                None => Ok(StoreSpec::mmap(DEFAULT_MMAP_CACHE)),
                Some(p) => Ok(StoreSpec::mmap(parse_budget(p)?)),
            },
            _ => Err(spec::reject_unknown("store", raw, Self::POSSIBLE)),
        }
    }
}

impl std::str::FromStr for StoreSpec {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        StoreSpec::parse(raw)
    }
}

/// Parses a byte budget with an optional `k`/`m`/`g` suffix (powers of
/// 1024, case-insensitive). Must be positive.
fn parse_budget(raw: &str) -> Result<u64, String> {
    let (digits, shift) = match raw.as_bytes().last() {
        Some(b'k') | Some(b'K') => (&raw[..raw.len() - 1], 10),
        Some(b'm') | Some(b'M') => (&raw[..raw.len() - 1], 20),
        Some(b'g') | Some(b'G') => (&raw[..raw.len() - 1], 30),
        _ => (raw, 0),
    };
    let value: u64 = digits
        .parse()
        .map_err(|_| format!("store: mmap budget `{raw}` is not a byte count (try 256m, 1g)"))?;
    if value == 0 {
        return Err("store: mmap budget must be positive".to_owned());
    }
    value
        .checked_shl(shift)
        .filter(|&v| v >> shift == value)
        .ok_or_else(|| format!("store: mmap budget `{raw}` overflows"))
}

// ---------------------------------------------------------------------------
// Store — the backend-dispatching facade
// ---------------------------------------------------------------------------

/// The distance-matrix storage of one run: row allocation, publication,
/// and read access behind a single type, with the backend chosen by a
/// [`StoreSpec`].
///
/// Writers compute a row into ordinary `&mut [u32]` scratch — in place
/// when the backend lends mutable rows ([`Store::try_row_mut`]), staged in
/// a caller buffer otherwise — and publish it exactly once. Readers use
/// [`Store::published_row`] on lending backends or [`Store::with_row`] /
/// [`Store::read_row_into`] everywhere. Dispatch is a concrete enum match,
/// not a vtable, so the dense hot path stays identical to the pre-store
/// code.
pub struct Store {
    inner: Inner,
}

enum Inner {
    Dense(SharedDistState),
    Delta(DeltaStore),
    Mmap(MmapStore),
}

impl Store {
    /// Allocates an empty store for an `n`-vertex matrix.
    pub fn new(n: usize, spec: &StoreSpec) -> Store {
        let inner = match spec.kind {
            StoreKind::Dense => Inner::Dense(SharedDistState::new(n)),
            StoreKind::Delta => Inner::Delta(DeltaStore::new(n, spec.refs, spec.cache_bytes)),
            StoreKind::Mmap => Inner::Mmap(MmapStore::new(n, spec.cache_bytes)),
        };
        Store { inner }
    }

    /// Builds the store from a partially computed matrix (resume): rows
    /// flagged in `completed` are pre-published, the rest start
    /// unpublished and infinite.
    pub fn from_parts(dist: DistanceMatrix, completed: &[bool], spec: &StoreSpec) -> Store {
        match spec.kind {
            StoreKind::Dense => Store {
                inner: Inner::Dense(SharedDistState::from_parts(dist, completed)),
            },
            _ => {
                let store = Store::new(dist.n(), spec);
                for (s, &done) in completed.iter().enumerate() {
                    if done {
                        store.publish_from(s as u32, dist.row(s as u32));
                    }
                }
                store
            }
        }
    }

    /// The backend in use.
    pub fn kind(&self) -> StoreKind {
        match &self.inner {
            Inner::Dense(_) => StoreKind::Dense,
            Inner::Delta(_) => StoreKind::Delta,
            Inner::Mmap(_) => StoreKind::Mmap,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        match &self.inner {
            Inner::Dense(state) => state.n(),
            Inner::Delta(store) => store.n,
            Inner::Mmap(store) => store.n,
        }
    }

    /// Capability: whether published rows can be lent as `&[u32]` at no
    /// cost ([`Store::published_row`]). Only the dense backend can; the
    /// kernel gates the row-reuse trick and prefetch hints on this.
    #[inline]
    pub fn lends_rows(&self) -> bool {
        matches!(&self.inner, Inner::Dense(_))
    }

    /// Exclusive in-place access to unpublished row `s`, on backends that
    /// support it (dense). `None` means the caller must stage the row in
    /// its own scratch and hand it over via [`Store::publish_from`].
    ///
    /// # Safety
    ///
    /// The caller must be the unique owner of row `s` (no other live
    /// `try_row_mut(s)` anywhere, `s` not yet published) — the same
    /// contract as `SharedDistState::row_mut`.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn try_row_mut(&self, s: u32) -> Option<&mut [u32]> {
        match &self.inner {
            // SAFETY: forwarded caller contract.
            Inner::Dense(state) => Some(unsafe { state.row_mut(s) }),
            _ => None,
        }
    }

    /// Publishes row `s` written in place through [`Store::try_row_mut`].
    /// Only meaningful on lending backends.
    #[inline]
    pub fn publish(&self, s: u32) {
        match &self.inner {
            Inner::Dense(state) => state.publish(s),
            _ => unreachable!("publish() without try_row_mut(); use publish_from"),
        }
    }

    /// Publishes row `s` from caller-owned scratch: the backend copies /
    /// encodes / writes the bytes, then stores the publication flag with
    /// `Release`. The caller must own row `s` (never published before).
    pub fn publish_from(&self, s: u32, row: &[u32]) {
        debug_assert_eq!(row.len(), self.n(), "row length mismatch");
        match &self.inner {
            Inner::Dense(state) => {
                // SAFETY: the caller owns unpublished row `s`; the borrow
                // ends before publish.
                unsafe { state.row_mut(s).copy_from_slice(row) };
                state.publish(s);
            }
            Inner::Delta(store) => store.publish_from(s, row),
            Inner::Mmap(store) => store.publish_from(s, row),
        }
    }

    /// Lends published row `t` (dense only — `None` on other backends
    /// even when the row is published; see [`Store::lends_rows`]).
    #[inline]
    pub fn published_row(&self, t: u32) -> Option<&[u32]> {
        match &self.inner {
            Inner::Dense(state) => state.published_row(t),
            _ => None,
        }
    }

    /// Software-prefetch hint for row `t`'s storage. A no-op on backends
    /// that cannot lend rows.
    #[inline]
    pub fn prefetch_row(&self, t: u32) {
        if let Inner::Dense(state) = &self.inner {
            state.prefetch_row(t);
        }
    }

    /// Whether row `s` has been published (`Acquire`).
    #[inline]
    pub fn is_published(&self, s: u32) -> bool {
        match &self.inner {
            Inner::Dense(state) => state.published_row(s).is_some(),
            Inner::Delta(store) => store.flags[s as usize].load(Ordering::Acquire),
            Inner::Mmap(store) => store.flags[s as usize].load(Ordering::Acquire),
        }
    }

    /// Number of published rows.
    pub fn published_count(&self) -> usize {
        match &self.inner {
            Inner::Dense(state) => state.published_count(),
            Inner::Delta(store) => count_flags(&store.flags),
            Inner::Mmap(store) => count_flags(&store.flags),
        }
    }

    /// Runs `f` over published row `s` (decoding through the hot-row
    /// cache on non-lending backends); `None` when `s` is unpublished.
    pub fn with_row<R>(&self, s: u32, f: impl FnOnce(&[u32]) -> R) -> Option<R> {
        match &self.inner {
            Inner::Dense(state) => state.published_row(s).map(f),
            Inner::Delta(store) => store.with_row(s, f),
            Inner::Mmap(store) => store.with_row(s, f),
        }
    }

    /// Copies published row `s` into `out`, bypassing the hot-row cache
    /// (the bulk-read path: snapshots, ledger streaming, analysis
    /// sweeps). Returns `false` — leaving `out` untouched — when `s` is
    /// unpublished.
    pub fn read_row_into(&self, s: u32, out: &mut [u32]) -> bool {
        debug_assert_eq!(out.len(), self.n());
        match &self.inner {
            Inner::Dense(state) => match state.published_row(s) {
                Some(row) => {
                    out.copy_from_slice(row);
                    true
                }
                None => false,
            },
            Inner::Delta(store) => store.read_row_into(s, out),
            Inner::Mmap(store) => store.read_row_into(s, out),
        }
    }

    /// Clones the published rows into a fresh matrix plus completion
    /// flags (the periodic-checkpoint payload). O(n²).
    pub fn snapshot(&self) -> (DistanceMatrix, Vec<bool>) {
        match &self.inner {
            Inner::Dense(state) => state.snapshot(),
            _ => {
                let n = self.n();
                let mut dist = DistanceMatrix::new_infinite(n);
                let mut completed = vec![false; n];
                for s in 0..n as u32 {
                    if self.read_row_into(s, dist.row_mut(s)) {
                        completed[s as usize] = true;
                    }
                }
                (dist, completed)
            }
        }
    }

    /// Consumes the store, yielding the final dense matrix (zero-copy for
    /// the dense backend; a decode pass otherwise). Unpublished rows come
    /// out infinite.
    pub fn into_matrix(self) -> DistanceMatrix {
        match self.inner {
            Inner::Dense(state) => state.into_matrix(),
            _ => self.snapshot().0,
        }
    }

    /// Consumes the store, yielding the matrix plus completion flags —
    /// the zero-copy teardown behind `Engine::into_snapshot` (no O(n²)
    /// clone on the dense backend).
    pub fn into_parts(self) -> (DistanceMatrix, Vec<bool>) {
        match self.inner {
            Inner::Dense(state) => state.into_parts(),
            _ => self.snapshot(),
        }
    }

    /// Bytes of published-row payload this store holds: resident matrix
    /// bytes (dense), encoded bytes (delta), or shard-file bytes (mmap —
    /// on disk, not resident). The `store_scaling` bench derives
    /// bytes/row from this.
    pub fn stored_bytes(&self) -> u64 {
        match &self.inner {
            Inner::Dense(state) => 4 * (state.n() as u64) * (state.n() as u64),
            Inner::Delta(store) => store.bytes.load(Ordering::Relaxed),
            Inner::Mmap(store) => store.bytes.load(Ordering::Relaxed),
        }
    }
}

fn count_flags(flags: &[AtomicBool]) -> usize {
    flags.iter().filter(|f| f.load(Ordering::Relaxed)).count()
}

// ---------------------------------------------------------------------------
// RowSource — the uniform read seam for analysis consumers
// ---------------------------------------------------------------------------

/// Read access to a distance matrix, row by row — implemented by both
/// [`DistanceMatrix`] and [`Store`], so analysis passes (eccentricities,
/// centrality, components) run unchanged against either.
pub trait RowSource {
    /// Number of vertices (the matrix is `n × n`).
    fn n(&self) -> usize;

    /// Visits every row in source order, `(source, row)` at a time.
    /// Unpublished rows of a partial [`Store`] are visited as all-[`INF`]
    /// (matching the dense matrix of an incomplete run).
    fn for_each_row(&self, visit: &mut dyn FnMut(u32, &[u32]));
}

impl RowSource for DistanceMatrix {
    fn n(&self) -> usize {
        DistanceMatrix::n(self)
    }

    fn for_each_row(&self, visit: &mut dyn FnMut(u32, &[u32])) {
        for s in 0..DistanceMatrix::n(self) as u32 {
            visit(s, self.row(s));
        }
    }
}

impl RowSource for Store {
    fn n(&self) -> usize {
        Store::n(self)
    }

    fn for_each_row(&self, visit: &mut dyn FnMut(u32, &[u32])) {
        match &self.inner {
            // Dense lends rows directly — no copy.
            Inner::Dense(state) => {
                let mut infinite: Option<Vec<u32>> = None;
                for s in 0..state.n() as u32 {
                    match state.published_row(s) {
                        Some(row) => visit(s, row),
                        None => {
                            let row = infinite.get_or_insert_with(|| vec![INF; state.n()]);
                            visit(s, row);
                        }
                    }
                }
            }
            _ => {
                let n = Store::n(self);
                let mut buf = vec![INF; n];
                for s in 0..n as u32 {
                    if !self.read_row_into(s, &mut buf) {
                        buf.fill(INF);
                    }
                    visit(s, &buf);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Hot-row LRU cache (shared by the delta and mmap backends)
// ---------------------------------------------------------------------------

/// A byte-budgeted LRU of decoded rows. The entry just inserted is never
/// evicted (a single row larger than the budget still gets served).
struct RowCache {
    budget: u64,
    bytes: u64,
    map: HashMap<u32, Box<[u32]>>,
    order: VecDeque<u32>,
}

impl RowCache {
    fn new(budget: u64) -> RowCache {
        RowCache {
            budget,
            bytes: 0,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Marks `s` most-recently-used and reports whether it is cached.
    fn touch(&mut self, s: u32) -> bool {
        if !self.map.contains_key(&s) {
            return false;
        }
        if let Some(pos) = self.order.iter().position(|&k| k == s) {
            self.order.remove(pos);
        }
        self.order.push_back(s);
        true
    }

    /// Inserts a decoded row, evicting least-recently-used entries (other
    /// than the new one) until the budget holds.
    fn insert(&mut self, s: u32, row: Box<[u32]>) {
        self.bytes += 4 * row.len() as u64;
        self.map.insert(s, row);
        self.order.push_back(s);
        while self.bytes > self.budget && self.order.len() > 1 {
            let victim = self.order.pop_front().expect("order non-empty");
            if let Some(old) = self.map.remove(&victim) {
                self.bytes -= 4 * old.len() as u64;
            }
        }
    }

    fn get(&self, s: u32) -> Option<&[u32]> {
        self.map.get(&s).map(|row| &row[..])
    }
}

// ---------------------------------------------------------------------------
// DeltaStore
// ---------------------------------------------------------------------------

/// One dense reference row of the delta backend.
#[derive(Clone)]
struct RefRow {
    id: u32,
    data: Box<[u32]>,
}

/// One row's encoded payload: written exactly once by the row's owner
/// before publication, immutable afterwards.
type EncodedSlot = UnsafeCell<Option<Box<[u8]>>>;

/// Rows delta-encoded against reference-row estimates.
///
/// Encoding of a non-reference row `s` (little-endian):
///
/// ```text
/// count: u8                       — reference rows used (< 0xFF)
/// count × (id: u32, d_s_ref: u32) — the ref ids and d(s, ref), verbatim
/// n × varint(zigzag(d(s,v) − est(v)))
/// ```
///
/// where `est(v) = min over refs r of d(s,r) ⊕ refrow_r[v]` (saturating;
/// `INF` participates as a plain `u32::MAX`). Recording `d(s, ref)` in
/// the header makes every row self-contained: decode needs only the
/// (append-only, never evicted) reference-row set, in any order. The
/// first `max_refs` published rows become the reference set — under the
/// hub-first source orderings the engines use, those are the highest-
/// degree hubs, the same vertices landmark triangulation would pick.
struct DeltaStore {
    n: usize,
    max_refs: usize,
    /// Append-only reference set; publishers briefly lock to clone the
    /// `Arc` (and to append while below `max_refs`), then encode outside
    /// the lock.
    refs: Mutex<Arc<Vec<RefRow>>>,
    /// Per-row encoded payload. Single writer per slot, readers only
    /// after the `Acquire` flag handshake.
    slots: Box<[EncodedSlot]>,
    flags: Box<[AtomicBool]>,
    cache: Mutex<RowCache>,
    bytes: AtomicU64,
}

// SAFETY: each slot is written exactly once, by the unique owner of its
// row, strictly before the `Release` store of its flag; readers load the
// flag with `Acquire` first. Reference rows are guarded by the mutex and
// immutable once inserted (behind `Arc`).
unsafe impl Sync for DeltaStore {}

impl DeltaStore {
    fn new(n: usize, max_refs: usize, cache_bytes: u64) -> DeltaStore {
        DeltaStore {
            n,
            max_refs: max_refs.clamp(1, MAX_DELTA_REFS),
            refs: Mutex::new(Arc::new(Vec::new())),
            slots: (0..n).map(|_| UnsafeCell::new(None)).collect(),
            flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
            cache: Mutex::new(RowCache::new(cache_bytes)),
            bytes: AtomicU64::new(0),
        }
    }

    fn publish_from(&self, s: u32, row: &[u32]) {
        debug_assert!(
            !self.flags[s as usize].load(Ordering::Relaxed),
            "row {s} published twice"
        );
        // Join the reference set while it is still growing; either way,
        // come away with the set to encode against.
        let (refs, is_ref) = {
            let mut guard = self.refs.lock().expect("refs mutex");
            if guard.len() < self.max_refs {
                let mut grown: Vec<RefRow> = (**guard).clone();
                grown.push(RefRow {
                    id: s,
                    data: row.into(),
                });
                *guard = Arc::new(grown);
                (Arc::clone(&guard), true)
            } else {
                (Arc::clone(&guard), false)
            }
        };
        let enc: Box<[u8]> = if is_ref {
            Box::new([REF_MARKER])
        } else {
            encode_delta_row(row, &refs)
        };
        self.bytes.fetch_add(enc.len() as u64, Ordering::Relaxed);
        // SAFETY: unique owner of slot `s`, before publication.
        unsafe { *self.slots[s as usize].get() = Some(enc) };
        self.flags[s as usize].store(true, Ordering::Release);
    }

    /// The encoded payload of a published row. Caller must have observed
    /// the `Acquire` flag.
    fn payload(&self, s: u32) -> &[u8] {
        // SAFETY: the Acquire load in the caller synchronized with the
        // owner's Release store; the slot is never written again.
        unsafe { (*self.slots[s as usize].get()).as_deref() }.expect("published row has a payload")
    }

    fn read_row_into(&self, s: u32, out: &mut [u32]) -> bool {
        if !self.flags[s as usize].load(Ordering::Acquire) {
            return false;
        }
        let refs = Arc::clone(&self.refs.lock().expect("refs mutex"));
        decode_delta_row(self.payload(s), s, &refs, out);
        true
    }

    fn with_row<R>(&self, s: u32, f: impl FnOnce(&[u32]) -> R) -> Option<R> {
        if !self.flags[s as usize].load(Ordering::Acquire) {
            return None;
        }
        let mut cache = self.cache.lock().expect("cache mutex");
        if !cache.touch(s) {
            let refs = Arc::clone(&self.refs.lock().expect("refs mutex"));
            let mut row = vec![INF; self.n].into_boxed_slice();
            decode_delta_row(self.payload(s), s, &refs, &mut row);
            cache.insert(s, row);
        }
        Some(f(cache.get(s).expect("just inserted")))
    }
}

/// Zig-zag encoding: small magnitudes (either sign) become small codes.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

fn write_varint(buf: &mut Vec<u8>, mut z: u64) {
    loop {
        let byte = (z & 0x7F) as u8;
        z >>= 7;
        if z == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut z = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        z |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return z;
        }
        shift += 7;
    }
}

fn encode_delta_row(row: &[u32], refs: &[RefRow]) -> Box<[u8]> {
    debug_assert!(refs.len() < REF_MARKER as usize);
    let mut buf = Vec::with_capacity(1 + refs.len() * 8 + row.len());
    buf.push(refs.len() as u8);
    let mut d_ref: Vec<u32> = Vec::with_capacity(refs.len());
    for r in refs {
        let d = row[r.id as usize];
        buf.extend_from_slice(&r.id.to_le_bytes());
        buf.extend_from_slice(&d.to_le_bytes());
        d_ref.push(d);
    }
    for (v, &d) in row.iter().enumerate() {
        let est = estimate(v, refs, &d_ref);
        write_varint(&mut buf, zigzag(d as i64 - est as i64));
    }
    buf.into_boxed_slice()
}

/// Triangulated estimate of `d(s, v)` from the reference rows: the best
/// two-hop route `s → ref → v`, saturating, with `INF` as plain
/// `u32::MAX`.
#[inline]
fn estimate(v: usize, refs: &[RefRow], d_ref: &[u32]) -> u32 {
    let mut est = INF;
    for (r, &d) in refs.iter().zip(d_ref) {
        est = est.min(d.saturating_add(r.data[v]));
    }
    est
}

fn decode_delta_row(enc: &[u8], s: u32, refs: &[RefRow], out: &mut [u32]) {
    if enc[0] == REF_MARKER {
        let r = refs
            .iter()
            .find(|r| r.id == s)
            .expect("marker row present in the reference set");
        out.copy_from_slice(&r.data);
        return;
    }
    let count = enc[0] as usize;
    let mut pos = 1usize;
    // The refs named in the header, with d(s, ref) verbatim — the set
    // only grows, so every named ref is still present.
    let mut used: Vec<(u32, &[u32])> = Vec::with_capacity(count);
    for _ in 0..count {
        let id = u32::from_le_bytes(enc[pos..pos + 4].try_into().expect("header"));
        let d = u32::from_le_bytes(enc[pos + 4..pos + 8].try_into().expect("header"));
        pos += 8;
        let r = refs
            .iter()
            .find(|r| r.id == id)
            .expect("encode-time reference still present");
        used.push((d, &r.data));
    }
    for (v, slot) in out.iter_mut().enumerate() {
        let mut est = INF;
        for &(d, data) in &used {
            est = est.min(d.saturating_add(data[v]));
        }
        let delta = unzigzag(read_varint(enc, &mut pos));
        *slot = (est as i64 + delta) as u32;
    }
    debug_assert_eq!(pos, enc.len(), "trailing bytes in encoded row");
}

// ---------------------------------------------------------------------------
// MmapStore
// ---------------------------------------------------------------------------

/// Process-wide counter for unique scratch-directory names.
static STORE_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Rows in fixed-size file shards under a scratch directory.
///
/// Shard `k` holds rows `k·rows_per_shard ..`, each at byte offset
/// `(s mod rows_per_shard) · 4n`, written little-endian with one `pwrite`
/// and read back with one `pread`. Row writes land at disjoint offsets,
/// so concurrent publishers need no lock; shard files are created lazily
/// through a `OnceLock`. The directory is removed on drop (best effort).
struct MmapStore {
    n: usize,
    dir: PathBuf,
    rows_per_shard: usize,
    shards: Box<[OnceLock<File>]>,
    flags: Box<[AtomicBool]>,
    cache: Mutex<RowCache>,
    bytes: AtomicU64,
}

impl MmapStore {
    fn new(n: usize, cache_bytes: u64) -> MmapStore {
        let row_bytes = (4 * n.max(1)) as u64;
        let rows_per_shard = (SHARD_BYTES / row_bytes).max(1) as usize;
        let shard_count = n.div_ceil(rows_per_shard).max(1);
        let dir = std::env::temp_dir().join(format!(
            "parapsp-store-{}-{}",
            std::process::id(),
            STORE_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|err| panic!("creating store shard dir {}: {err}", dir.display()));
        MmapStore {
            n,
            dir,
            rows_per_shard,
            shards: (0..shard_count).map(|_| OnceLock::new()).collect(),
            flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
            // At least one row must fit or the cache serves nothing.
            cache: Mutex::new(RowCache::new(cache_bytes.max(row_bytes))),
            bytes: AtomicU64::new(0),
        }
    }

    fn shard(&self, index: usize) -> &File {
        self.shards[index].get_or_init(|| {
            let path = self.dir.join(format!("shard-{index}.rows"));
            OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)
                .unwrap_or_else(|err| panic!("opening store shard {}: {err}", path.display()))
        })
    }

    #[inline]
    fn location(&self, s: u32) -> (usize, u64) {
        let shard = s as usize / self.rows_per_shard;
        let offset = (s as usize % self.rows_per_shard) as u64 * 4 * self.n as u64;
        (shard, offset)
    }

    fn publish_from(&self, s: u32, row: &[u32]) {
        debug_assert!(
            !self.flags[s as usize].load(Ordering::Relaxed),
            "row {s} published twice"
        );
        let mut buf = vec![0u8; 4 * self.n];
        for (chunk, &d) in buf.chunks_exact_mut(4).zip(row) {
            chunk.copy_from_slice(&d.to_le_bytes());
        }
        let (shard, offset) = self.location(s);
        self.shard(shard)
            .write_all_at(&buf, offset)
            .unwrap_or_else(|err| panic!("writing store shard row {s}: {err}"));
        self.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.flags[s as usize].store(true, Ordering::Release);
    }

    fn read_row_into(&self, s: u32, out: &mut [u32]) -> bool {
        if !self.flags[s as usize].load(Ordering::Acquire) {
            return false;
        }
        let mut buf = vec![0u8; 4 * self.n];
        let (shard, offset) = self.location(s);
        self.shard(shard)
            .read_exact_at(&mut buf, offset)
            .unwrap_or_else(|err| panic!("reading store shard row {s}: {err}"));
        for (chunk, slot) in buf.chunks_exact(4).zip(out.iter_mut()) {
            *slot = u32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
        }
        true
    }

    fn with_row<R>(&self, s: u32, f: impl FnOnce(&[u32]) -> R) -> Option<R> {
        if !self.flags[s as usize].load(Ordering::Acquire) {
            return None;
        }
        let mut cache = self.cache.lock().expect("cache mutex");
        if !cache.touch(s) {
            let mut row = vec![INF; self.n].into_boxed_slice();
            self.read_row_into(s, &mut row);
            cache.insert(s, row);
        }
        Some(f(cache.get(s).expect("just inserted")))
    }
}

impl Drop for MmapStore {
    fn drop(&mut self) {
        // Best effort: shard files are scratch, never a durability
        // artifact (that's what checkpoints and ledgers are for).
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random distances (splitmix64) with ~1/8
    /// INF cells, so encode/decode sees both signs and saturation.
    fn fixture_rows(n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        (0..n)
            .map(|s| {
                (0..n)
                    .map(|v| {
                        if s == v {
                            0
                        } else if next() % 8 == 0 {
                            INF
                        } else {
                            (next() % 10_000) as u32
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn all_specs() -> Vec<StoreSpec> {
        vec![
            StoreSpec::dense(),
            StoreSpec::delta(4),
            StoreSpec::mmap(1 << 20),
        ]
    }

    #[test]
    fn parse_accepts_every_cli_spelling() {
        assert_eq!("dense".parse(), Ok(StoreSpec::dense()));
        assert_eq!("delta".parse(), Ok(StoreSpec::delta(DEFAULT_DELTA_REFS)));
        assert_eq!("delta:8".parse(), Ok(StoreSpec::delta(8)));
        assert_eq!("mmap".parse(), Ok(StoreSpec::mmap(DEFAULT_MMAP_CACHE)));
        assert_eq!("mmap:4096".parse(), Ok(StoreSpec::mmap(4096)));
        assert_eq!("mmap:256k".parse(), Ok(StoreSpec::mmap(256 << 10)));
        assert_eq!("mmap:16M".parse(), Ok(StoreSpec::mmap(16 << 20)));
        assert_eq!("mmap:2g".parse(), Ok(StoreSpec::mmap(2 << 30)));
    }

    #[test]
    fn parse_rejects_malformed_specs_with_possible_values() {
        for bad in [
            "",
            "dens",
            "dense:4",
            "delta:0",
            "delta:wide",
            "mmap:0",
            "mmap:huge",
        ] {
            let err = bad.parse::<StoreSpec>().unwrap_err();
            assert!(err.contains("store"), "{bad}: {err}");
        }
        let err = "tiered".parse::<StoreSpec>().unwrap_err();
        assert!(
            err.contains("possible values") && err.contains("mmap"),
            "{err}"
        );
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for spec in all_specs() {
            assert_eq!(spec.label().parse(), Ok(spec.clone()), "{}", spec.label());
        }
    }

    #[test]
    fn every_backend_round_trips_rows_bit_identically() {
        let n = 60;
        let rows = fixture_rows(n, 0xA5A5);
        for spec in all_specs() {
            let store = Store::new(n, &spec);
            assert_eq!(store.published_count(), 0);
            for (s, row) in rows.iter().enumerate() {
                assert!(!store.is_published(s as u32));
                store.publish_from(s as u32, row);
                assert!(store.is_published(s as u32));
            }
            assert_eq!(store.published_count(), n);
            // Point reads through the cache.
            let mut buf = vec![0u32; n];
            for (s, row) in rows.iter().enumerate() {
                let got = store.with_row(s as u32, |r| r.to_vec()).unwrap();
                assert_eq!(&got, row, "{} with_row({s})", spec.label());
                assert!(store.read_row_into(s as u32, &mut buf));
                assert_eq!(&buf, row, "{} read_row_into({s})", spec.label());
            }
            // Bulk teardown.
            let matrix = store.into_matrix();
            for (s, row) in rows.iter().enumerate() {
                assert_eq!(matrix.row(s as u32), &row[..], "{}", spec.label());
            }
        }
    }

    #[test]
    fn staged_kernel_writes_match_in_place_dense_writes() {
        // The dense backend accepts both the in-place protocol
        // (try_row_mut + publish) and the staged one (publish_from);
        // both must yield the same bytes.
        let n = 16;
        let rows = fixture_rows(n, 7);
        let in_place = Store::new(n, &StoreSpec::dense());
        let staged = Store::new(n, &StoreSpec::dense());
        for (s, row) in rows.iter().enumerate() {
            // SAFETY: single-threaded test, unique owner of each row.
            let slot = unsafe { in_place.try_row_mut(s as u32) }.expect("dense lends rows");
            slot.copy_from_slice(row);
            in_place.publish(s as u32);
            staged.publish_from(s as u32, row);
        }
        assert_eq!(
            in_place
                .into_matrix()
                .first_difference(&staged.into_matrix()),
            None
        );
    }

    #[test]
    fn only_dense_lends_rows() {
        let n = 8;
        let rows = fixture_rows(n, 11);
        for spec in all_specs() {
            let store = Store::new(n, &spec);
            store.publish_from(0, &rows[0]);
            let lends = spec.kind() == StoreKind::Dense;
            assert_eq!(store.lends_rows(), lends, "{}", spec.label());
            assert_eq!(store.published_row(0).is_some(), lends, "{}", spec.label());
            assert_eq!(
                unsafe { store.try_row_mut(1) }.is_some(),
                lends,
                "{}",
                spec.label()
            );
            store.prefetch_row(0); // must be a harmless no-op everywhere
        }
    }

    #[test]
    fn from_parts_prepublishes_only_completed_rows() {
        let n = 12;
        let rows = fixture_rows(n, 23);
        let mut dist = DistanceMatrix::new_infinite(n);
        let mut completed = vec![false; n];
        for s in (0..n).step_by(3) {
            dist.copy_row_from(s as u32, &rows[s]);
            completed[s] = true;
        }
        for spec in all_specs() {
            let store = Store::from_parts(dist.clone(), &completed, &spec);
            for s in 0..n {
                assert_eq!(
                    store.is_published(s as u32),
                    completed[s],
                    "{}",
                    spec.label()
                );
                if completed[s] {
                    let got = store.with_row(s as u32, |r| r.to_vec()).unwrap();
                    assert_eq!(&got, &rows[s], "{}", spec.label());
                }
            }
            let (snap, flags) = store.snapshot();
            assert_eq!(flags, completed, "{}", spec.label());
            assert_eq!(snap.first_difference(&dist), None, "{}", spec.label());
        }
    }

    #[test]
    fn delta_compresses_structured_rows_well_below_dense() {
        // Rows that differ from a common hub row by a handful of cells —
        // the structure the reference-row estimates are built to exploit.
        let n = 256;
        let mut base: Vec<u32> = (0..n).map(|v| 100 + (v as u32 % 50)).collect();
        base[0] = 0;
        let store = Store::new(n, &StoreSpec::delta(4));
        for s in 0..n {
            let mut row = base.clone();
            row[s] = 0;
            row[(s + 7) % n] += 3;
            store.publish_from(s as u32, &row);
        }
        let dense_bytes = 4 * (n as u64) * (n as u64);
        let stored = store.stored_bytes();
        // The varint floor is one byte per cell, so the best possible is
        // just under 4× smaller than dense; near-zero deltas must get
        // close to that floor.
        assert!(
            stored * 3 < dense_bytes,
            "delta encoding should be ≥3× smaller here: {stored} vs {dense_bytes}"
        );
        // And still decode exactly.
        for s in 0..n as u32 {
            store
                .with_row(s, |row| {
                    assert_eq!(row[s as usize], 0);
                    assert_eq!(row[(s as usize + 7) % n], base[(s as usize + 7) % n] + 3);
                })
                .unwrap();
        }
    }

    #[test]
    fn hot_row_cache_respects_its_byte_budget() {
        let n = 64; // 256 bytes per row
        let rows = fixture_rows(n, 31);
        // Budget of 3 rows.
        let store = Store::new(n, &StoreSpec::mmap(3 * 4 * n as u64));
        for (s, row) in rows.iter().enumerate() {
            store.publish_from(s as u32, row);
        }
        // Touch many distinct rows; the cache must stay within budget
        // while every read stays exact.
        for pass in 0..3 {
            for (s, row) in rows.iter().enumerate() {
                let got = store.with_row(s as u32, |r| r.to_vec()).unwrap();
                assert_eq!(&got, row, "pass {pass} row {s}");
            }
        }
        let Inner::Mmap(inner) = &store.inner else {
            panic!("mmap spec built a non-mmap store")
        };
        let cache = inner.cache.lock().unwrap();
        assert!(
            cache.bytes <= cache.budget,
            "cache over budget: {} > {}",
            cache.bytes,
            cache.budget
        );
        assert!(cache.map.len() <= 3);
    }

    #[test]
    fn cross_thread_publication_is_ordered_on_every_backend() {
        for spec in [StoreSpec::delta(2), StoreSpec::mmap(1 << 20)] {
            let n = 512;
            let store = std::sync::Arc::new(Store::new(n, &spec));
            let expect: Vec<u32> = (0..n as u32).map(|v| v * 3 + 1).collect();
            let writer = {
                let store = std::sync::Arc::clone(&store);
                let expect = expect.clone();
                std::thread::spawn(move || {
                    // Publish a reference row first so row 9 encodes
                    // against something.
                    store.publish_from(0, &vec![1u32; n]);
                    store.publish_from(9, &expect);
                })
            };
            loop {
                let done = store.with_row(9, |row| {
                    assert_eq!(row, &expect[..], "{}", spec.label());
                });
                if done.is_some() {
                    break;
                }
                std::hint::spin_loop();
            }
            writer.join().unwrap();
        }
    }

    #[test]
    fn row_source_visits_unpublished_rows_as_infinite() {
        let n = 6;
        let rows = fixture_rows(n, 41);
        for spec in all_specs() {
            let store = Store::new(n, &spec);
            store.publish_from(2, &rows[2]);
            let mut seen = Vec::new();
            RowSource::for_each_row(&store, &mut |s, row| {
                seen.push((s, row.to_vec()));
            });
            assert_eq!(seen.len(), n, "{}", spec.label());
            assert_eq!(seen[2].1, rows[2], "{}", spec.label());
            assert!(
                seen[3].1.iter().all(|&d| d == INF),
                "{}: unpublished row must read as INF",
                spec.label()
            );
        }
        // The DistanceMatrix impl visits its rows verbatim.
        let mut dist = DistanceMatrix::new_infinite(3);
        dist.copy_row_from(1, &[5, 0, 7]);
        let mut count = 0;
        RowSource::for_each_row(&dist, &mut |s, row| {
            if s == 1 {
                assert_eq!(row, &[5, 0, 7]);
            }
            count += 1;
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn mmap_store_cleans_up_its_shard_directory() {
        let dir = {
            let store = Store::new(32, &StoreSpec::mmap(1 << 20));
            store.publish_from(0, &[0u32; 32]);
            let Inner::Mmap(inner) = &store.inner else {
                panic!("mmap spec built a non-mmap store")
            };
            assert!(inner.dir.exists());
            inner.dir.clone()
        };
        assert!(!dir.exists(), "drop must remove {}", dir.display());
    }

    #[test]
    fn varint_zigzag_round_trips_extremes() {
        let mut buf = Vec::new();
        for v in [0i64, 1, -1, 127, -128, u32::MAX as i64, -(u32::MAX as i64)] {
            buf.clear();
            write_varint(&mut buf, zigzag(v));
            let mut pos = 0;
            assert_eq!(unzigzag(read_varint(&buf, &mut pos)), v);
            assert_eq!(pos, buf.len());
        }
    }
}
