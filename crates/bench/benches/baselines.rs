//! Criterion bench of the classic baselines against the Peng-family
//! algorithms — regenerates the paper's background comparisons (§2):
//! Floyd–Warshall O(n³) vs per-source heap Dijkstra vs Peng's basic and
//! optimized algorithms (the "2 to 4 times faster" claim of §2.2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use parapsp_core::baselines;
use parapsp_core::seq::{seq_adaptive, seq_basic, seq_optimized};
use parapsp_datasets::{find, Scale};

fn bench_baselines(c: &mut Criterion) {
    let graph = find("WordNet")
        .unwrap()
        .generate(Scale::Vertices(700))
        .unwrap();

    let mut group = c.benchmark_group("baselines/wordnet-700");
    group.sample_size(10);
    group.bench_function("floyd-warshall", |b| {
        b.iter(|| black_box(baselines::floyd_warshall(black_box(&graph))))
    });
    group.bench_function("blocked-floyd-warshall-4t", |b| {
        let pool = parapsp_parfor::ThreadPool::new(4);
        b.iter(|| {
            black_box(parapsp_core::blocked_fw::blocked_floyd_warshall(
                black_box(&graph),
                64,
                &pool,
            ))
        })
    });
    group.bench_function("apsp-dijkstra-heap", |b| {
        b.iter(|| black_box(baselines::apsp_dijkstra(black_box(&graph))))
    });
    group.bench_function("apsp-bfs", |b| {
        b.iter(|| black_box(baselines::apsp_bfs(black_box(&graph))))
    });
    group.bench_function("peng-basic", |b| {
        b.iter(|| black_box(seq_basic(black_box(&graph))))
    });
    group.bench_function("peng-optimized", |b| {
        b.iter(|| black_box(seq_optimized(black_box(&graph), 1.0)))
    });
    group.bench_function("peng-adaptive", |b| {
        b.iter(|| black_box(seq_adaptive(black_box(&graph), 8)))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
