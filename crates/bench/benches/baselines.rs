//! Criterion bench of the classic baselines against the Peng-family
//! algorithms — regenerates the paper's background comparisons (§2):
//! Floyd–Warshall O(n³) vs per-source heap Dijkstra vs Peng's basic and
//! optimized algorithms (the "2 to 4 times faster" claim of §2.2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use parapsp_core::baselines;
use parapsp_core::engine::{BlockedFwEngine, RunConfig, Runner, SeqEngine};
use parapsp_datasets::{find, Scale};

fn bench_baselines(c: &mut Criterion) {
    let graph = find("WordNet")
        .unwrap()
        .generate(Scale::Vertices(700))
        .unwrap();

    let mut group = c.benchmark_group("baselines/wordnet-700");
    group.sample_size(10);
    group.bench_function("floyd-warshall", |b| {
        b.iter(|| black_box(baselines::floyd_warshall(black_box(&graph))))
    });
    group.bench_function("blocked-floyd-warshall-4t", |b| {
        let runner = Runner::new(RunConfig::new(4));
        b.iter(|| black_box(runner.run(BlockedFwEngine::new(64), black_box(&graph))))
    });
    group.bench_function("apsp-dijkstra-heap", |b| {
        b.iter(|| black_box(baselines::apsp_dijkstra(black_box(&graph))))
    });
    group.bench_function("apsp-bfs", |b| {
        b.iter(|| black_box(baselines::apsp_bfs(black_box(&graph))))
    });
    group.bench_function("peng-basic", |b| {
        let runner = Runner::new(RunConfig::seq_basic());
        b.iter(|| black_box(runner.run(SeqEngine::ordered(), black_box(&graph))))
    });
    group.bench_function("peng-optimized", |b| {
        let runner = Runner::new(RunConfig::seq_optimized(1.0));
        b.iter(|| black_box(runner.run(SeqEngine::ordered(), black_box(&graph))))
    });
    group.bench_function("peng-adaptive", |b| {
        let runner = Runner::new(RunConfig::seq_adaptive(8));
        b.iter(|| black_box(runner.run(SeqEngine::adaptive(8), black_box(&graph))))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
