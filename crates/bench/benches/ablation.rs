//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the kernel's row reuse (Peng's dynamic-programming step) and the SPFA
//!   dedup guard,
//! * the explicit-schedule thread pool vs rayon's work stealing for the
//!   embarrassingly parallel heap-Dijkstra APSP (rayon cannot express the
//!   ordered dynamic-cyclic loop, so the comparison uses the unordered
//!   baseline both runtimes can run),
//! * MultiLists as a general sort vs `sort_unstable_by_key`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parapsp_core::baselines;
use parapsp_core::engine::{ApspEngine, RunConfig, Runner};
use parapsp_core::kernel::KernelOptions;
use parapsp_datasets::{find, Scale};
use parapsp_graph::{degree, INF};
use parapsp_order::sort::{sort_indices, SortDirection};
use parapsp_parfor::ThreadPool;

fn bench_kernel_switches(c: &mut Criterion) {
    let graph = find("WordNet")
        .unwrap()
        .generate(Scale::Vertices(1200))
        .unwrap();
    let mut group = c.benchmark_group("ablation/kernel");
    group.sample_size(10);
    for (label, options) in [
        ("row-reuse+dedup", KernelOptions::default()),
        (
            "row-reuse-only",
            KernelOptions {
                dedup_queue: false,
                ..KernelOptions::default()
            },
        ),
        (
            "dedup-only",
            KernelOptions {
                row_reuse: false,
                ..KernelOptions::default()
            },
        ),
        (
            "plain-spfa",
            KernelOptions {
                row_reuse: false,
                dedup_queue: false,
                ..KernelOptions::default()
            },
        ),
        (
            "scalar-relax",
            KernelOptions {
                relax: parapsp_core::RelaxImpl::Scalar,
                ..KernelOptions::default()
            },
        ),
    ] {
        group.bench_function(BenchmarkId::new(label, "4t"), |b| {
            let runner = Runner::new(RunConfig::par_apsp(4).with_kernel_options(options));
            b.iter(|| black_box(runner.run(ApspEngine::new(), black_box(&graph))));
        });
    }
    group.finish();
}

fn bench_parfor_vs_rayon(c: &mut Criterion) {
    let graph = find("Flickr")
        .unwrap()
        .generate(Scale::Vertices(900))
        .unwrap();
    let n = graph.vertex_count();
    let mut group = c.benchmark_group("ablation/runtime");
    group.sample_size(10);

    group.bench_function("parfor-dijkstra-4t", |b| {
        let pool = ThreadPool::new(4);
        b.iter(|| black_box(baselines::par_apsp_dijkstra(black_box(&graph), &pool)));
    });

    let rayon_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("rayon pool");
    group.bench_function("rayon-dijkstra-4t", |b| {
        b.iter(|| {
            rayon_pool.install(|| {
                use rayon::prelude::*;
                let rows: Vec<Vec<u32>> = (0..n as u32)
                    .into_par_iter()
                    .map(|s| {
                        let mut row = vec![INF; n];
                        baselines::dijkstra_sssp(&graph, s, &mut row);
                        row
                    })
                    .collect();
                black_box(rows)
            })
        });
    });
    group.finish();
}

fn bench_multilists_vs_std_sort(c: &mut Criterion) {
    let graph = find("WordNet")
        .unwrap()
        .generate(Scale::Fraction(0.05))
        .unwrap();
    let keys = degree::out_degrees(&graph);
    let mut group = c.benchmark_group("ablation/sort");
    group.sample_size(10);
    for threads in [1usize, 4] {
        let pool = ThreadPool::new(threads);
        group.bench_function(
            BenchmarkId::new("multi-lists", format!("{threads}t")),
            |b| {
                b.iter(|| {
                    black_box(sort_indices(
                        black_box(&keys),
                        SortDirection::Descending,
                        &pool,
                    ))
                })
            },
        );
    }
    for threads in [1usize, 4] {
        let pool = ThreadPool::new(threads);
        group.bench_function(BenchmarkId::new("radix", format!("{threads}t")), |b| {
            b.iter(|| {
                black_box(parapsp_order::radix::par_radix_sort_indices(
                    black_box(&keys),
                    parapsp_order::radix::SortDirection::Descending,
                    &pool,
                ))
            })
        });
    }
    group.bench_function("std-sort-by-key", |b| {
        b.iter(|| {
            let mut idx: Vec<u32> = (0..keys.len() as u32).collect();
            idx.sort_by_key(|&v| std::cmp::Reverse(keys[v as usize]));
            black_box(idx)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kernel_switches,
    bench_parfor_vs_rayon,
    bench_multilists_vs_std_sort
);
criterion_main!(benches);
