//! Criterion bench for the ordering procedures — regenerates the shape of
//! **Table 1** (selection vs ParBuckets), **Figure 4** (ParBuckets vs
//! ParMax) and **Figure 6** (ParMax vs MultiLists) on the WordNet replica.
//!
//! Expected shape: selection is O(n²) and orders of magnitude slower than
//! every bucket procedure; among the O(n) procedures, lock traffic
//! (ParBuckets > ParMax > MultiLists) dominates at higher thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parapsp_datasets::{find, Scale};
use parapsp_graph::degree;
use parapsp_order::OrderingProcedure;
use parapsp_parfor::ThreadPool;

fn bench_ordering(c: &mut Criterion) {
    let graph = find("WordNet")
        .unwrap()
        .generate(Scale::Fraction(0.05))
        .unwrap();
    let degrees = degree::out_degrees(&graph);

    let mut group = c.benchmark_group("ordering/wordnet");
    group.sample_size(10);
    for procedure in [
        OrderingProcedure::selection(),
        OrderingProcedure::SeqBucket,
        OrderingProcedure::par_buckets(),
        OrderingProcedure::par_max(),
        OrderingProcedure::multi_lists(),
    ] {
        for threads in [1usize, 2, 4] {
            // Sequential procedures only make sense at one thread.
            if !matches!(
                procedure,
                OrderingProcedure::ParBuckets { .. }
                    | OrderingProcedure::ParMax { .. }
                    | OrderingProcedure::MultiLists { .. }
            ) && threads != 1
            {
                continue;
            }
            let pool = ThreadPool::new(threads);
            group.bench_function(
                BenchmarkId::new(procedure.label(), format!("{threads}t")),
                |b| b.iter(|| black_box(procedure.compute(black_box(&degrees), &pool))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ordering);
criterion_main!(benches);
