//! Criterion bench for the loop-schedule study — regenerates the shape of
//! **Figure 1**: ParAlg2's elapsed time under block, static-cyclic and
//! dynamic-cyclic scheduling on the ca-HepPh replica.
//!
//! Expected shape: the cyclic schemes beat block partitioning because they
//! preserve (dynamic) or approximate (static) the degree-descending issue
//! order the optimization depends on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parapsp_core::engine::{ApspEngine, RunConfig, Runner};
use parapsp_datasets::{ca_hepph, Scale};
use parapsp_parfor::Schedule;

fn bench_scheduling(c: &mut Criterion) {
    let graph = ca_hepph().generate(Scale::Fraction(0.06)).unwrap();

    let mut group = c.benchmark_group("scheduling/ca-hepph");
    group.sample_size(10);
    for schedule in [
        Schedule::Block,
        Schedule::StaticCyclic,
        Schedule::dynamic_cyclic(),
    ] {
        for threads in [1usize, 2, 4] {
            group.bench_function(
                BenchmarkId::new(schedule.label(), format!("{threads}t")),
                |b| {
                    let runner = Runner::new(RunConfig::par_alg2(threads).with_schedule(schedule));
                    b.iter(|| black_box(runner.run(ApspEngine::new(), black_box(&graph))));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
