//! Criterion bench across all Table 2 replicas — regenerates the shape of
//! **Figure 10**: ParAPSP elapsed time (and, via the thread axis, speedup)
//! on every evaluation dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parapsp_core::engine::{ApspEngine, RunConfig, Runner};
use parapsp_datasets::{paper_datasets, Scale};

fn bench_datasets(c: &mut Criterion) {
    let mut group = c.benchmark_group("datasets/parapsp");
    group.sample_size(10);
    for spec in paper_datasets() {
        let graph = spec.generate(Scale::Vertices(1000)).unwrap();
        for threads in [1usize, 4] {
            group.bench_function(BenchmarkId::new(spec.name, format!("{threads}t")), |b| {
                let runner = Runner::new(RunConfig::par_apsp(threads));
                b.iter(|| black_box(runner.run(ApspEngine::new(), black_box(&graph))));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_datasets);
criterion_main!(benches);
