//! Criterion bench for the headline algorithm comparison — regenerates the
//! shape of **Figure 7** (ParAlg1 vs ParAlg2, Flickr) and **Figure 8**
//! (ParAlg1 vs ParAlg2 vs ParAPSP, WordNet).
//!
//! Expected shape: ParAlg2 beats ParAlg1 by 2–4× (degree ordering);
//! ParAPSP matches or beats ParAlg2 (same order, O(n) ordering step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parapsp_core::engine::{ApspEngine, RunConfig, Runner};
use parapsp_datasets::{find, Scale};

fn bench_algorithms(c: &mut Criterion) {
    for (dataset, scale) in [("Flickr", 0.008), ("WordNet", 0.01)] {
        let graph = find(dataset)
            .unwrap()
            .generate(Scale::Fraction(scale))
            .unwrap();
        let mut group = c.benchmark_group(format!("apsp/{}", dataset.to_lowercase()));
        group.sample_size(10);
        for (label, make) in [
            ("ParAlg1", RunConfig::par_alg1 as fn(usize) -> RunConfig),
            ("ParAlg2", RunConfig::par_alg2),
            ("ParAPSP", RunConfig::par_apsp),
        ] {
            for threads in [1usize, 4] {
                group.bench_function(BenchmarkId::new(label, format!("{threads}t")), |b| {
                    let runner = Runner::new(make(threads));
                    b.iter(|| black_box(runner.run(ApspEngine::new(), black_box(&graph))));
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
