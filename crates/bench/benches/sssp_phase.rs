//! Criterion bench isolating the *Dijkstra part* — regenerates the shape
//! of **Figure 5**: SSSP-phase elapsed time under the orders produced by
//! the exact selection sort (ParAlg2), the approximate ParBuckets, and the
//! exact ParMax procedure.
//!
//! Expected shape: the approximate ParBuckets order makes the SSSP sweep
//! slower (hub rows arrive later); exact orders are equivalent.
//!
//! Uses `iter_custom` so only the SSSP phase (reported by the driver's
//! phase timer) is accumulated, not the ordering step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use parapsp_core::engine::{ApspEngine, RunConfig, Runner};
use parapsp_datasets::{find, Scale};
use parapsp_order::OrderingProcedure;

fn bench_sssp_phase(c: &mut Criterion) {
    let graph = find("WordNet")
        .unwrap()
        .generate(Scale::Fraction(0.01))
        .unwrap();

    let mut group = c.benchmark_group("sssp-phase/wordnet");
    group.sample_size(10);
    for (label, ordering) in [
        ("selection", OrderingProcedure::selection()),
        ("par-buckets", OrderingProcedure::par_buckets()),
        ("par-max", OrderingProcedure::par_max()),
    ] {
        for threads in [1usize, 4] {
            group.bench_function(BenchmarkId::new(label, format!("{threads}t")), |b| {
                let runner = Runner::new(RunConfig::par_apsp(threads).with_ordering(ordering));
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let out = runner.run(ApspEngine::new(), &graph);
                        total += out.timings.sssp;
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sssp_phase);
criterion_main!(benches);
