//! One function per table/figure of the paper's evaluation (§5), each
//! returning the tables it regenerates. The `reproduce` binary is a thin
//! CLI over this module.
//!
//! Scale note: the paper's machines had 16/32 physical cores and up to
//! 256 GB of RAM. Experiments that allocate the O(n²) matrix default to a
//! scaled-down replica (`Config::apsp_scale`); ordering-only experiments
//! can run at the paper's full vertex counts (`Config::ordering_scale`).

use std::time::Duration;

use parapsp_core::baselines;
use parapsp_core::kernel::KernelOptions;
use parapsp_core::{ApspEngine, ApspOutput, RunConfig, Runner, SeqEngine};
use parapsp_datasets::{ca_hepph, find, ordering_datasets, paper_datasets, DatasetSpec, Scale};
use parapsp_graph::{degree, CsrGraph};
use parapsp_order::OrderingProcedure;
use parapsp_parfor::{Schedule, ThreadPool};

use crate::report::Table;
use crate::timing::time_median;
use crate::{fmt_duration, speedup};

/// Experiment configuration shared by all reproductions.
#[derive(Debug, Clone)]
pub struct Config {
    /// Fraction of the paper's vertex count for experiments that allocate
    /// the O(n²) distance matrix.
    pub apsp_scale: f64,
    /// Fraction of the paper's vertex count for ordering-only experiments.
    pub ordering_scale: f64,
    /// Repetitions per measurement (median is reported; the paper averages
    /// 10 runs).
    pub runs: usize,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            apsp_scale: 0.03,
            ordering_scale: 0.5,
            runs: 3,
            threads: crate::thread_sweep(),
        }
    }
}

impl Config {
    fn apsp_graph(&self, spec: &DatasetSpec) -> CsrGraph {
        spec.generate(Scale::Fraction(self.apsp_scale))
            .expect("replica generation")
    }

    fn ordering_degrees(&self, spec: &DatasetSpec) -> Vec<u32> {
        let g = spec
            .generate(Scale::Fraction(self.ordering_scale))
            .expect("replica generation");
        degree::out_degrees(&g)
    }
}

fn dataset(name: &str) -> DatasetSpec {
    find(name).unwrap_or_else(|| panic!("dataset {name} missing from registry"))
}

/// A display label paired with a thread-count → run-configuration
/// constructor; every sweep feeds the configuration to the same
/// [`Runner`]/[`ApspEngine`] pair.
type LabeledDriver = (&'static str, fn(usize) -> RunConfig);

/// Runs the shared-memory engine once under `config`.
fn run_apsp(config: RunConfig, graph: &CsrGraph) -> ApspOutput {
    Runner::new(config).run(ApspEngine::new(), graph)
}

/// Runs the sequential engine once (the source order is whatever
/// `config`'s ordering procedure produces).
fn run_seq(config: RunConfig, graph: &CsrGraph) -> ApspOutput {
    Runner::new(config).run(SeqEngine::ordered(), graph)
}

/// Times one ordering procedure at one thread count.
fn time_ordering(
    degrees: &[u32],
    procedure: OrderingProcedure,
    threads: usize,
    runs: usize,
) -> Duration {
    let pool = ThreadPool::new(threads);
    time_median(runs, || {
        std::hint::black_box(procedure.compute(degrees, &pool));
    })
}

/// **Table 1** — ordering time of ParAlg2's selection sort vs ParBuckets
/// on WordNet, per thread count. Expected shape: selection is flat (it is
/// sequential) and orders of magnitude slower; ParBuckets is microseconds
/// but *degrades* as threads increase (lock contention in low buckets).
pub fn table1(config: &Config) -> Vec<Table> {
    let degrees = config.ordering_degrees(&dataset("WordNet"));
    let mut table = Table::new(
        format!(
            "Table 1: ordering time, WordNet replica (n = {})",
            degrees.len()
        ),
        &["procedure", "1", "2", "4", "8", "16"],
    );
    for procedure in [
        OrderingProcedure::selection(),
        OrderingProcedure::par_buckets(),
    ] {
        let mut cells = vec![procedure.label()];
        for &threads in &[1usize, 2, 4, 8, 16] {
            let d = time_ordering(&degrees, procedure, threads, config.runs);
            cells.push(fmt_duration(d));
        }
        table.push_row(cells);
    }
    vec![table]
}

/// **Table 2** — salient statistics of the replica datasets next to the
/// paper's originals.
pub fn table2(config: &Config) -> Vec<Table> {
    let mut table = Table::new(
        "Table 2: datasets (paper original vs generated replica)",
        &[
            "name",
            "type",
            "paper V",
            "paper E",
            "replica V",
            "replica E",
            "replica max deg",
        ],
    );
    for spec in paper_datasets() {
        let g = config.apsp_graph(&spec);
        let degs = degree::out_degrees(&g);
        let max_deg = degs.iter().copied().max().unwrap_or(0);
        table.push_row(vec![
            spec.name.to_string(),
            if spec.directed {
                "Directed"
            } else {
                "Undirected"
            }
            .to_string(),
            spec.paper_vertices.to_string(),
            spec.paper_edges.to_string(),
            g.vertex_count().to_string(),
            g.edge_count().to_string(),
            max_deg.to_string(),
        ]);
    }
    vec![table]
}

/// **Figure 1** — effect of the loop schedule on ParAlg2 (ca-HepPh):
/// block partitioning vs static-cyclic vs dynamic-cyclic. Expected shape:
/// both cyclic schemes beat block; dynamic-cyclic is best.
pub fn fig1(config: &Config) -> Vec<Table> {
    // ca-HepPh is already an order of magnitude smaller than the Table 2
    // datasets, so it gets a proportionally larger fraction.
    let g = ca_hepph()
        .generate(Scale::Fraction((config.apsp_scale * 8.0).min(1.0)))
        .expect("replica generation");
    let mut table = Table::new(
        format!(
            "Figure 1: ParAlg2 elapsed time by schedule, ca-HepPh replica (n = {})",
            g.vertex_count()
        ),
        &["schedule", "threads", "elapsed", "sssp-phase"],
    );
    for schedule in [
        Schedule::Block,
        Schedule::StaticCyclic,
        Schedule::dynamic_cyclic(),
    ] {
        for &threads in &config.threads {
            let out = run_apsp(RunConfig::par_alg2(threads).with_schedule(schedule), &g);
            table.push_row(vec![
                schedule.label(),
                threads.to_string(),
                fmt_duration(out.timings.total),
                fmt_duration(out.timings.sssp),
            ]);
        }
    }
    vec![table]
}

/// **Figure 3** — degree distribution of the WordNet replica
/// (log-binned), demonstrating the power law that causes ParBuckets' lock
/// contention.
pub fn fig3(config: &Config) -> Vec<Table> {
    let degrees = config.ordering_degrees(&dataset("WordNet"));
    let binned = degree::log_binned_histogram(&degrees);
    let mut table = Table::new(
        format!(
            "Figure 3: WordNet replica degree distribution (n = {})",
            degrees.len()
        ),
        &["degree bin (>=)", "vertex count", "fraction"],
    );
    let n = degrees.len() as f64;
    for (bin, count) in binned {
        table.push_row(vec![
            bin.to_string(),
            count.to_string(),
            format!("{:.5}", count as f64 / n),
        ]);
    }
    vec![table]
}

/// Helper shared by Figs. 4 and 6: ordering time per procedure per thread
/// count on one degree array.
fn ordering_comparison(
    title: String,
    degrees: &[u32],
    procedures: &[OrderingProcedure],
    config: &Config,
) -> Table {
    let mut header: Vec<String> = vec!["procedure".into()];
    header.extend(config.threads.iter().map(|t| t.to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(title, &header_refs);
    for &procedure in procedures {
        let mut cells = vec![procedure.label()];
        for &threads in &config.threads {
            cells.push(fmt_duration(time_ordering(
                degrees,
                procedure,
                threads,
                config.runs,
            )));
        }
        table.push_row(cells);
    }
    table
}

/// **Figure 4** — ordering time: ParBuckets vs ParMax (WordNet).
pub fn fig4(config: &Config) -> Vec<Table> {
    let degrees = config.ordering_degrees(&dataset("WordNet"));
    vec![ordering_comparison(
        format!(
            "Figure 4: ordering time, ParBuckets vs ParMax, WordNet replica (n = {})",
            degrees.len()
        ),
        &degrees,
        &[
            OrderingProcedure::par_buckets(),
            OrderingProcedure::par_max(),
        ],
        config,
    )]
}

/// **Figure 5** — the *Dijkstra-part* elapsed time under the orders
/// produced by ParAlg2 (exact selection), ParBuckets (approximate) and
/// ParMax (exact). Expected shape: ParBuckets' approximate order costs
/// SSSP time; ParMax matches ParAlg2.
pub fn fig5(config: &Config) -> Vec<Table> {
    let g = config.apsp_graph(&dataset("WordNet"));
    let mut table = Table::new(
        format!(
            "Figure 5: SSSP-phase time by ordering procedure, WordNet replica (n = {})",
            g.vertex_count()
        ),
        &["ordering", "threads", "sssp-phase", "row reuses"],
    );
    for (label, ordering) in [
        ("ParAlg2 (selection)", OrderingProcedure::selection()),
        ("ParBuckets", OrderingProcedure::par_buckets()),
        ("ParMax", OrderingProcedure::par_max()),
    ] {
        for &threads in &config.threads {
            let out = run_apsp(
                RunConfig::par_apsp(threads)
                    .with_ordering(ordering)
                    .with_label(label),
                &g,
            );
            table.push_row(vec![
                label.to_string(),
                threads.to_string(),
                fmt_duration(out.timings.sssp),
                out.counters.row_reuses.to_string(),
            ]);
        }
    }
    vec![table]
}

/// **Figure 6** — ordering time: ParMax vs MultiLists on WordNet, plus the
/// §4.3 scaling check on the (much larger) soc-Pokec and soc-LiveJournal1
/// replicas where MultiLists keeps improving with threads.
pub fn fig6(config: &Config) -> Vec<Table> {
    let mut tables = Vec::new();
    let wordnet = config.ordering_degrees(&dataset("WordNet"));
    tables.push(ordering_comparison(
        format!(
            "Figure 6: ordering time, ParMax vs MultiLists, WordNet replica (n = {})",
            wordnet.len()
        ),
        &wordnet,
        &[
            OrderingProcedure::par_max(),
            OrderingProcedure::multi_lists(),
        ],
        config,
    ));
    for spec in ordering_datasets() {
        let degrees = config.ordering_degrees(&spec);
        tables.push(ordering_comparison(
            format!(
                "Figure 6 (cont.): MultiLists scaling, {} replica (n = {})",
                spec.name,
                degrees.len()
            ),
            &degrees,
            &[
                OrderingProcedure::par_max(),
                OrderingProcedure::multi_lists(),
            ],
            config,
        ));
    }
    tables
}

/// Sweeps a set of drivers over the thread counts, producing an elapsed
/// table and a speedup table (speedup of each driver relative to its own
/// 1-thread run, as in the paper's Fig. 9).
fn driver_sweep(
    title: &str,
    graph: &CsrGraph,
    drivers: &[LabeledDriver],
    config: &Config,
) -> (Table, Table) {
    let mut header: Vec<String> = vec!["algorithm".into()];
    header.extend(config.threads.iter().map(|t| t.to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut elapsed_table = Table::new(format!("{title} — elapsed"), &header_refs);
    let mut speedup_table = Table::new(format!("{title} — speedup vs 1 thread"), &header_refs);
    for &(label, make) in drivers {
        let mut elapsed_cells = vec![label.to_string()];
        let mut speedup_cells = vec![label.to_string()];
        let mut t1: Option<Duration> = None;
        for &threads in &config.threads {
            let out = run_apsp(make(threads), graph);
            let total = out.timings.total;
            if threads == 1 || t1.is_none() {
                t1 = Some(total);
            }
            elapsed_cells.push(fmt_duration(total));
            speedup_cells.push(format!("{:.2}", speedup(t1.unwrap(), total)));
        }
        elapsed_table.push_row(elapsed_cells);
        speedup_table.push_row(speedup_cells);
    }
    (elapsed_table, speedup_table)
}

/// **Figure 7** — ParAlg1 vs ParAlg2 elapsed time on the Flickr replica.
/// Expected shape: ParAlg2 ≈ 2× faster at every thread count.
pub fn fig7(config: &Config) -> Vec<Table> {
    let g = config.apsp_graph(&dataset("Flickr"));
    let (elapsed, _) = driver_sweep(
        &format!(
            "Figure 7: ParAlg1 vs ParAlg2, Flickr replica (n = {})",
            g.vertex_count()
        ),
        &g,
        &[
            ("ParAlg1", RunConfig::par_alg1 as fn(usize) -> RunConfig),
            ("ParAlg2", RunConfig::par_alg2),
        ],
        config,
    );
    vec![elapsed]
}

/// **Figures 8 & 9** — overall elapsed time and speedup of ParAlg1,
/// ParAlg2 and ParAPSP on the WordNet replica. Expected shape: ParAPSP ≤
/// ParAlg2 < ParAlg1 in elapsed time; ParAlg2's speedup sags (sequential
/// O(n²) ordering), ParAPSP's does not.
pub fn fig8_fig9(config: &Config) -> Vec<Table> {
    let g = config.apsp_graph(&dataset("WordNet"));
    let (elapsed, speedups) = driver_sweep(
        &format!(
            "Figures 8/9: ParAlg1 vs ParAlg2 vs ParAPSP, WordNet replica (n = {})",
            g.vertex_count()
        ),
        &g,
        &[
            ("ParAlg1", RunConfig::par_alg1 as fn(usize) -> RunConfig),
            ("ParAlg2", RunConfig::par_alg2),
            ("ParAPSP", RunConfig::par_apsp),
        ],
        config,
    );
    vec![elapsed, speedups]
}

/// **Figure 10** — ParAPSP elapsed time (a) and speedup (b) on all five
/// Table 2 replicas.
pub fn fig10(config: &Config) -> Vec<Table> {
    let mut header: Vec<String> = vec!["dataset".into()];
    header.extend(config.threads.iter().map(|t| t.to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut elapsed_table = Table::new("Figure 10a: ParAPSP elapsed time", &header_refs);
    let mut speedup_table = Table::new("Figure 10b: ParAPSP speedup", &header_refs);
    for spec in paper_datasets() {
        let g = config.apsp_graph(&spec);
        let mut elapsed_cells = vec![format!("{} (n = {})", spec.name, g.vertex_count())];
        let mut speedup_cells = vec![spec.name.to_string()];
        let mut t1: Option<Duration> = None;
        for &threads in &config.threads {
            let out = run_apsp(RunConfig::par_apsp(threads), &g);
            if t1.is_none() {
                t1 = Some(out.timings.total);
            }
            elapsed_cells.push(fmt_duration(out.timings.total));
            speedup_cells.push(format!("{:.2}", speedup(t1.unwrap(), out.timings.total)));
        }
        elapsed_table.push_row(elapsed_cells);
        speedup_table.push_row(speedup_cells);
    }
    vec![elapsed_table, speedup_table]
}

/// Ablations beyond the paper: quantify each design ingredient.
pub fn ablation(config: &Config) -> Vec<Table> {
    let spec = dataset("WordNet");
    let g = config.apsp_graph(&spec);
    let threads = *config.threads.iter().max().unwrap_or(&4);
    let mut tables = Vec::new();

    // (a) Kernel ingredients: row reuse (the dynamic-programming step) and
    // the SPFA dedup guard.
    let mut kernel_table = Table::new(
        format!("Ablation A: kernel switches, WordNet replica, {threads} threads"),
        &["row reuse", "dedup", "elapsed", "queue pops", "row reuses"],
    );
    for (row_reuse, dedup_queue) in [(true, true), (true, false), (false, true), (false, false)] {
        let out = run_apsp(
            RunConfig::par_apsp(threads).with_kernel_options(KernelOptions {
                row_reuse,
                dedup_queue,
                ..KernelOptions::default()
            }),
            &g,
        );
        kernel_table.push_row(vec![
            row_reuse.to_string(),
            dedup_queue.to_string(),
            fmt_duration(out.timings.total),
            out.counters.queue_pops.to_string(),
            out.counters.row_reuses.to_string(),
        ]);
    }
    tables.push(kernel_table);

    // (b) Against the naive comparator: per-source binary-heap Dijkstra
    // with no information sharing.
    let mut baseline_table = Table::new(
        format!("Ablation B: ParAPSP vs parallel heap-Dijkstra, {threads} threads"),
        &["algorithm", "elapsed"],
    );
    let out = run_apsp(RunConfig::par_apsp(threads), &g);
    baseline_table.push_row(vec!["ParAPSP".into(), fmt_duration(out.timings.total)]);
    let pool = ThreadPool::new(threads);
    let d = time_median(config.runs, || {
        std::hint::black_box(baselines::par_apsp_dijkstra(&g, &pool));
    });
    baseline_table.push_row(vec!["par heap-Dijkstra".into(), fmt_duration(d)]);
    tables.push(baseline_table);

    // (c) Selection-sort ratio r (Alg. 3's parameter).
    let mut ratio_table = Table::new(
        "Ablation C: selection-sort ratio r (ordering + SSSP time, 1 thread)",
        &["r", "ordering", "sssp"],
    );
    for r in [0.01, 0.1, 0.5, 1.0] {
        let out = run_apsp(
            RunConfig::par_alg2(1).with_ordering(OrderingProcedure::SelectionSort { ratio: r }),
            &g,
        );
        ratio_table.push_row(vec![
            format!("{r}"),
            fmt_duration(out.timings.ordering),
            fmt_duration(out.timings.sssp),
        ]);
    }
    tables.push(ratio_table);

    // (d) ParBuckets bucket-count sweep (the paper tried 100 and 1000).
    let degrees = degree::out_degrees(&g);
    let max_deg = degrees.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets_table = Table::new(
        format!("Ablation D: ParBuckets range count ({threads} threads)"),
        &["ranges", "ordering", "sssp"],
    );
    for ranges in [10usize, 100, 1000, max_deg.max(1)] {
        let out = run_apsp(
            RunConfig::par_apsp(threads).with_ordering(OrderingProcedure::ParBuckets { ranges }),
            &g,
        );
        buckets_table.push_row(vec![
            ranges.to_string(),
            fmt_duration(out.timings.ordering),
            fmt_duration(out.timings.sssp),
        ]);
    }
    tables.push(buckets_table);

    // (e) MultiLists parRatio sweep (Alg. 7's merge split point).
    let mut ratio2_table = Table::new(
        format!("Ablation E: MultiLists parRatio ({threads} threads, ordering time)"),
        &["parRatio", "ordering"],
    );
    for pr in [0.0, 0.01, 0.1, 0.5, 1.0] {
        let d = time_ordering(
            &degrees,
            OrderingProcedure::MultiLists { par_ratio: pr },
            threads,
            config.runs,
        );
        ratio2_table.push_row(vec![format!("{pr}"), fmt_duration(d)]);
    }
    tables.push(ratio2_table);

    // (f) Order quality: how approximate is each procedure's order, and
    // does that correlate with the SSSP cost (the Fig. 5 mechanism)?
    let pool = ThreadPool::new(threads);
    let mut quality_table = Table::new(
        "Ablation F: order quality vs SSSP cost",
        &[
            "ordering",
            "kendall distance",
            "hub displacement (top 1%)",
            "sssp",
        ],
    );
    let top = (g.vertex_count() / 100).max(1);
    for (label, ordering) in [
        ("exact (seq-bucket)", OrderingProcedure::SeqBucket),
        (
            "par-buckets(10)",
            OrderingProcedure::ParBuckets { ranges: 10 },
        ),
        ("par-buckets(100)", OrderingProcedure::par_buckets()),
        ("identity", OrderingProcedure::Identity),
    ] {
        let order = ordering.compute(&degrees, &pool);
        let kendall = parapsp_order::quality::normalized_kendall_distance(&degrees, &order);
        let displacement = parapsp_order::quality::hub_displacement(&degrees, &order, top);
        let out = run_apsp(RunConfig::par_apsp(threads).with_ordering(ordering), &g);
        quality_table.push_row(vec![
            label.to_string(),
            format!("{kendall:.4}"),
            format!("{displacement:.1}"),
            fmt_duration(out.timings.sssp),
        ]);
    }
    tables.push(quality_table);

    // (g) Load balance under each schedule (per-thread busy-time spread) —
    // the mechanism behind the Fig. 1 scheduling ranking.
    let mut balance_table = Table::new(
        format!("Ablation G: schedule load imbalance ({threads} threads)"),
        &["schedule", "elapsed", "max/mean thread busy"],
    );
    for schedule in [
        Schedule::Block,
        Schedule::StaticCyclic,
        Schedule::dynamic_cyclic(),
        Schedule::Guided(1),
    ] {
        let out = run_apsp(RunConfig::par_apsp(threads).with_schedule(schedule), &g);
        balance_table.push_row(vec![
            schedule.label(),
            fmt_duration(out.timings.total),
            format!("{:.2}", out.load_imbalance().unwrap_or(f64::NAN)),
        ]);
    }
    tables.push(balance_table);

    // (h) Per-source cost by degree decile: why hub sources dominate the
    // work and why putting them first (and scheduling them cyclically)
    // matters.
    let (_, per_source) =
        Runner::new(RunConfig::par_apsp(threads)).run_traced(ApspEngine::new(), &g);
    let mut by_degree: Vec<u32> = (0..g.vertex_count() as u32).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(degrees[v as usize]));
    let mut decile_table = Table::new(
        "Ablation H: mean per-source SSSP cost by degree decile",
        &["decile (1 = hubs)", "mean degree", "mean source cost"],
    );
    let decile_size = (g.vertex_count() / 10).max(1);
    for decile in 0..10 {
        let chunk: Vec<u32> = by_degree
            .iter()
            .skip(decile * decile_size)
            .take(decile_size)
            .copied()
            .collect();
        if chunk.is_empty() {
            break;
        }
        let mean_degree = chunk
            .iter()
            .map(|&v| degrees[v as usize] as f64)
            .sum::<f64>()
            / chunk.len() as f64;
        let mean_cost = chunk
            .iter()
            .map(|&v| per_source[v as usize].as_secs_f64())
            .sum::<f64>()
            / chunk.len() as f64;
        decile_table.push_row(vec![
            (decile + 1).to_string(),
            format!("{mean_degree:.1}"),
            fmt_duration(std::time::Duration::from_secs_f64(mean_cost)),
        ]);
    }
    tables.push(decile_table);

    tables
}

/// Least-squares slope of `ln(y)` against `ln(x)` — the exponent `b` in a
/// power-law fit `y = a · x^b`.
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    assert!(points.len() >= 2, "need at least two points to fit");
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Empirical time-complexity check (§2: Peng et al. report O(n^2.4) on
/// scale-free graphs): run the sequential basic and optimized algorithms
/// on growing Barabási–Albert graphs and fit the runtime exponent.
pub fn complexity(config: &Config) -> Vec<Table> {
    let sizes = [400usize, 800, 1600, 3200];
    let mut table = Table::new(
        "Empirical complexity: elapsed time vs n on BA(m = 4) graphs",
        &["n", "basic", "optimized", "FW (n^3 reference)"],
    );
    let mut basic_points = Vec::new();
    let mut optimized_points = Vec::new();
    for &n in &sizes {
        let g = parapsp_graph::generate::barabasi_albert(
            n,
            4,
            parapsp_graph::generate::WeightSpec::Unit,
            9_000 + n as u64,
        )
        .expect("generation");
        let t_basic = time_median(config.runs, || {
            std::hint::black_box(run_seq(RunConfig::seq_basic(), &g));
        });
        let t_optimized = time_median(config.runs, || {
            std::hint::black_box(run_seq(RunConfig::seq_optimized_bucket(), &g));
        });
        // Floyd–Warshall only at the smallest sizes (O(n³) gets painful).
        let fw_cell = if n <= 800 {
            let t = time_median(1, || {
                std::hint::black_box(baselines::floyd_warshall(&g));
            });
            fmt_duration(t)
        } else {
            "-".to_string()
        };
        basic_points.push((n as f64, t_basic.as_secs_f64()));
        optimized_points.push((n as f64, t_optimized.as_secs_f64()));
        table.push_row(vec![
            n.to_string(),
            fmt_duration(t_basic),
            fmt_duration(t_optimized),
            fw_cell,
        ]);
    }
    table.push_row(vec![
        "fitted exponent".into(),
        format!("n^{:.2}", log_log_slope(&basic_points)),
        format!("n^{:.2}", log_log_slope(&optimized_points)),
        "n^3 (by definition)".into(),
    ]);
    vec![table]
}

/// Tests the paper's core premise (§2.2): the degree-ordering optimization
/// works **because** complex networks are scale-free. On an Erdős–Rényi
/// graph of identical size the degree distribution is flat, so the
/// optimized algorithm's advantage should largely vanish.
pub fn hypothesis(config: &Config) -> Vec<Table> {
    use parapsp_graph::generate::{erdos_renyi_gnm, WeightSpec};
    use parapsp_graph::Direction;

    let n = Scale::Fraction(config.apsp_scale).resolve(146_005); // WordNet-sized
    let mut table = Table::new(
        format!("Hypothesis check: degree ordering on scale-free vs random graphs (n = {n})"),
        &[
            "graph model",
            "basic",
            "optimized",
            "optimized gain",
            "row reuses (basic -> optimized)",
        ],
    );
    // The scale-free graph is the WordNet replica (randomly relabeled BA —
    // raw BA puts hubs at low ids, which would hand the *unordered*
    // baseline a free degree order); the ER graph matches its size.
    let ba = dataset("WordNet")
        .generate(Scale::Vertices(n))
        .expect("replica generation");
    let edge_count = ba.edge_count();
    let er = erdos_renyi_gnm(n, edge_count, Direction::Undirected, WeightSpec::Unit, 0xE6)
        .expect("ER generation");
    for (label, graph) in [
        ("Barabási–Albert (scale-free)", &ba),
        ("Erdős–Rényi (flat)", &er),
    ] {
        let basic = run_seq(RunConfig::seq_basic(), graph);
        let optimized = run_seq(RunConfig::seq_optimized_bucket(), graph);
        table.push_row(vec![
            label.to_string(),
            fmt_duration(basic.timings.total),
            fmt_duration(optimized.timings.total),
            format!(
                "{:.2}x",
                basic.timings.total.as_secs_f64() / optimized.timings.total.as_secs_f64().max(1e-9)
            ),
            format!(
                "{} -> {}",
                basic.counters.row_reuses, optimized.counters.row_reuses
            ),
        ]);
    }
    vec![table]
}

/// Beyond the paper (its §7 future work): the distributed-memory
/// simulation — elapsed time, communication volume and remote reuse as the
/// simulated cluster grows and the hub-broadcast fraction varies.
pub fn dist(config: &Config) -> Vec<Table> {
    let g = config.apsp_graph(&dataset("WordNet"));
    let mut table = Table::new(
        format!(
            "Distributed ParAPSP simulation, WordNet replica (n = {})",
            g.vertex_count()
        ),
        &[
            "nodes",
            "hub fraction",
            "elapsed",
            "broadcast KiB",
            "remote reuses",
        ],
    );
    for &nodes in &config.threads {
        for hub_fraction in [0.0, 0.02, 0.1] {
            let engine = parapsp_dist::DistEngine::new(parapsp_dist::ClusterConfig {
                nodes,
                hub_fraction,
                ..Default::default()
            });
            let out = Runner::new(RunConfig::new(1)).run(engine, &g);
            let remote: u64 = out.node_stats.iter().map(|s| s.remote_reuses).sum();
            table.push_row(vec![
                nodes.to_string(),
                format!("{hub_fraction}"),
                fmt_duration(out.elapsed),
                (out.total_broadcast_bytes() / 1024).to_string(),
                remote.to_string(),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Config {
        Config {
            apsp_scale: 0.004,
            ordering_scale: 0.02,
            runs: 1,
            threads: vec![1, 2],
        }
    }

    #[test]
    fn table2_lists_all_five_datasets() {
        let tables = table2(&tiny_config());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 5);
    }

    #[test]
    fn fig3_bins_cover_all_vertices() {
        let tables = fig3(&tiny_config());
        assert!(!tables[0].is_empty());
    }

    #[test]
    fn ordering_experiments_produce_rows() {
        let cfg = tiny_config();
        assert_eq!(table1(&cfg)[0].len(), 2);
        assert_eq!(fig4(&cfg)[0].len(), 2);
        let f6 = fig6(&cfg);
        assert_eq!(f6.len(), 3); // WordNet + Pokec + LiveJournal
    }

    #[test]
    fn log_log_slope_recovers_known_exponents() {
        let quadratic: Vec<(f64, f64)> = (1..6).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((log_log_slope(&quadratic) - 2.0).abs() < 1e-9);
        let linear: Vec<(f64, f64)> = (1..6).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((log_log_slope(&linear) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dist_experiment_produces_rows() {
        let cfg = tiny_config();
        let tables = dist(&cfg);
        assert_eq!(tables[0].len(), cfg.threads.len() * 3);
    }

    #[test]
    fn apsp_experiments_produce_rows() {
        let cfg = tiny_config();
        assert_eq!(fig1(&cfg)[0].len(), 3 * cfg.threads.len());
        assert_eq!(fig7(&cfg)[0].len(), 2);
        let f89 = fig8_fig9(&cfg);
        assert_eq!(f89.len(), 2);
        assert_eq!(f89[0].len(), 3);
        let f10 = fig10(&cfg);
        assert_eq!(f10[0].len(), 5);
        assert_eq!(f10[1].len(), 5);
    }
}
