//! Table rendering (paper-style rows on stdout) and CSV persistence.

use std::io::Write;
use std::path::PathBuf;

/// A simple column-aligned table that renders like the paper's tables and
/// serializes to CSV for EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title (e.g. `"Table 1"`) and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; its arity must match the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity does not match header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column names.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (cell, width) in cells.iter().zip(&widths) {
                let pad = width - cell.chars().count();
                line.push_str(&format!(" {}{} |", cell, " ".repeat(pad)));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let mut sep = String::from("|");
        for width in &widths {
            sep.push_str(&format!("{}|", "-".repeat(width + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// CSV serialization (header + rows, comma-separated, quotes around
    /// cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Location where experiment CSVs are written: `results/<name>.csv` under
/// the workspace root (or the current directory as a fallback).
pub fn csv_path(name: &str) -> PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| {
            PathBuf::from(d)
                .parent()
                .and_then(|p| p.parent())
                .map(|p| p.to_path_buf())
                .unwrap_or_else(|| PathBuf::from("."))
        })
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("results").join(format!("{name}.csv"))
}

/// Persists a table as CSV, creating `results/` if needed. Returns the
/// path written.
pub fn write_csv(name: &str, table: &Table) -> std::io::Result<PathBuf> {
    let path = csv_path(name);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::File::create(&path)?;
    file.write_all(table.to_csv().as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "t"]);
        t.push_row(vec!["a".into(), "10".into()]);
        t.push_row(vec!["longer".into(), "5".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| a      | 10 |"));
        assert!(s.contains("| longer | 5  |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn write_csv_roundtrip() {
        let mut t = Table::new("x", &["col"]);
        t.push_row(vec!["v".into()]);
        let path = write_csv("harness-selftest", &t).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "col\nv\n");
        std::fs::remove_file(path).ok();
    }
}
