//! `schedule_scaling` — the loop-schedule scaling benchmark for the
//! parallel APSP source sweep.
//!
//! Sweeps `ParAPSP` (via [`Runner`]/[`ApspEngine`]) over
//! {dynamic-cyclic, dynamic(k), work-stealing} × thread counts on the
//! three generator families the paper evaluates (Barabási–Albert,
//! Erdős–Rényi, Watts–Strogatz), recording wall time plus the pool's
//! pop/steal counters for each configuration.
//!
//! Emits `BENCH_schedule.json` at the workspace root (override with
//! `--out <path>`). Flags: `--iters <N>` measurement repetitions per
//! configuration (default 3, best-of), `--quick` shrinks the graphs for
//! CI smoke runs, `--n <V>` overrides the vertex count.
//!
//! Every configuration's distance matrix is asserted bit-identical to the
//! sequential baseline, so every published number doubles as a
//! differential check of schedule invariance.

use std::time::Instant;

use parapsp_core::{ApspEngine, DistanceMatrix, RunConfig, Runner, SeqEngine};
use parapsp_graph::generate::{barabasi_albert, erdos_renyi_gnm, watts_strogatz, WeightSpec};
use parapsp_graph::{CsrGraph, Direction};
use parapsp_parfor::{Schedule, ThreadPool};

const WEIGHTS: WeightSpec = WeightSpec::Uniform { lo: 1, hi: 9 };

/// Thread counts swept per schedule (1 is the no-contention baseline).
const THREADS: [usize; 3] = [1, 2, 4];

/// The schedules under comparison: the paper's dynamic-cyclic default,
/// the chunked variant, and the work-stealing backend.
fn schedules() -> [(&'static str, Schedule); 3] {
    [
        ("dynamic-cyclic", Schedule::dynamic_cyclic()),
        ("dynamic:16", Schedule::DynamicChunked(16)),
        ("work-stealing:16", Schedule::WorkStealing { chunk: 16 }),
    ]
}

fn graphs(n: usize) -> Vec<(String, CsrGraph)> {
    let m = n * 4; // ER edge budget, matches BA's m=4 attachment density
    vec![
        (
            format!("ba_n{n}_m4"),
            barabasi_albert(n, 4, WEIGHTS, 42).expect("BA generation"),
        ),
        (
            format!("er_n{n}_m{m}"),
            erdos_renyi_gnm(n, m, Direction::Directed, WEIGHTS, 43).expect("ER generation"),
        ),
        (
            format!("ws_n{n}_k8"),
            watts_strogatz(n, 8, 0.2, WEIGHTS, 44).expect("WS generation"),
        ),
    ]
}

struct Measurement {
    graph: String,
    sched: Schedule,
    schedule: &'static str,
    threads: usize,
    ms: f64,
    pops: u64,
    steals: u64,
    failed_steals: u64,
}

/// One timed run of a (graph, schedule, threads) cell, with the pool's
/// counters and a bit-identity check against the sequential reference.
/// Folds the result into the cell's best-of accumulator.
///
/// Cells are *interleaved* across iterations by the caller (round-robin,
/// not back-to-back) so slow environmental drift — thermal throttling,
/// CPU-quota exhaustion on shared runners — spreads evenly over every
/// cell instead of penalizing whichever configuration happens to run
/// last. Best-of-iters then picks each cell's least-disturbed sample.
fn run_cell_once(graph: &CsrGraph, reference: &DistanceMatrix, cell: &mut Measurement) {
    let runner = Runner::new(RunConfig::par_apsp(cell.threads).with_schedule(cell.sched));
    let pool = ThreadPool::new(cell.threads);
    let start = Instant::now();
    let out = runner.run_with_pool(ApspEngine::new(), graph, &pool);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = pool.take_schedule_stats();
    assert_eq!(
        out.dist.as_slice(),
        reference.as_slice(),
        "{} {} t={}: distances differ from seq-basic",
        cell.graph,
        cell.schedule,
        cell.threads
    );
    if ms < cell.ms {
        cell.ms = ms;
        cell.pops = stats.pops;
        cell.steals = stats.steals;
        cell.failed_steals = stats.failed_steals;
    }
}

fn json_escape_free(name: &str) -> &str {
    // All labels in this file are ASCII identifiers; assert rather than
    // carry an escaper.
    assert!(
        name.chars()
            .all(|c| c.is_ascii_alphanumeric() || "_-.:".contains(c)),
        "label {name:?} needs JSON escaping"
    );
    name
}

fn write_json(
    path: &std::path::Path,
    n: usize,
    iters: usize,
    results: &[Measurement],
) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"schedule_scaling\",\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str(&format!("  \"iters\": {iters},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"graph\": \"{}\", \"schedule\": \"{}\", \"threads\": {}, \"ms\": {:.3}, \
             \"pops\": {}, \"steals\": {}, \"failed_steals\": {}}}{}\n",
            json_escape_free(&r.graph),
            json_escape_free(r.schedule),
            r.threads,
            r.ms,
            r.pops,
            r.steals,
            r.failed_steals,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

/// Default output location: `BENCH_schedule.json` at the workspace root.
fn default_out_path() -> std::path::PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| {
            std::path::PathBuf::from(d)
                .parent()
                .and_then(|p| p.parent())
                .map(|p| p.to_path_buf())
                .unwrap_or_else(|| std::path::PathBuf::from("."))
        })
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    base.join("BENCH_schedule.json")
}

fn main() {
    let mut iters = 3usize;
    let mut n: Option<usize> = None;
    let mut quick = false;
    let mut out_path = default_out_path();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--n" => {
                n = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--n needs a positive integer"),
                );
            }
            "--quick" => quick = true,
            "--out" => {
                out_path = args.next().expect("--out needs a path").into();
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: schedule_scaling [--iters N] [--n V] [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let n = n.unwrap_or(if quick { 400 } else { 3000 });
    if quick {
        iters = 1;
    }
    assert!(iters > 0 && n > 0);

    println!("schedule_scaling: n={n}, iters={iters} (best-of)");

    // Materialize every (graph, schedule, threads) cell up front, each
    // with its sequential reference (the invariance oracle), so the
    // measurement loop can round-robin over them.
    let inputs: Vec<(String, CsrGraph, DistanceMatrix)> = graphs(n)
        .into_iter()
        .map(|(label, graph)| {
            let reference = Runner::new(RunConfig::seq_basic())
                .run(SeqEngine::ordered(), &graph)
                .dist;
            (label, graph, reference)
        })
        .collect();
    let mut results: Vec<Measurement> = Vec::new();
    for (label, _, _) in &inputs {
        for (sched_label, schedule) in schedules() {
            for threads in THREADS {
                results.push(Measurement {
                    graph: label.clone(),
                    sched: schedule,
                    schedule: sched_label,
                    threads,
                    ms: f64::INFINITY,
                    pops: 0,
                    steals: 0,
                    failed_steals: 0,
                });
            }
        }
    }
    let cells_per_graph = results.len() / inputs.len();
    // Rotate the starting cell by a stride coprime with the cell count
    // each pass: a fixed visiting order can alias with periodic host
    // throttling (CPU-quota cycles), systematically penalizing whichever
    // cells sit at the slow phase of every pass.
    for it in 0..iters {
        let offset = (it * 11) % results.len();
        for j in 0..results.len() {
            let i = (j + offset) % results.len();
            let (_, graph, reference) = &inputs[i / cells_per_graph];
            run_cell_once(graph, reference, &mut results[i]);
        }
    }
    for m in &results {
        println!(
            "  {:<16}  {:<16}  t={}  {:>9.3} ms  (pops {}, steals {}, failed {})",
            m.graph, m.schedule, m.threads, m.ms, m.pops, m.steals, m.failed_steals
        );
    }

    write_json(&out_path, n, iters, &results).expect("writing benchmark JSON");
    println!("wrote {}", out_path.display());
}
