//! `solver_scaling` — the per-source SSSP solver comparison benchmark.
//!
//! Sweeps the [`SolverKind`] axis {dijkstra, delta:auto, stepping, auto}
//! through `ParAPSP` (via [`Runner`]/[`ApspEngine`], 4 threads) over
//! graph classes chosen to separate the solvers: the paper's
//! narrow-weight Barabási–Albert / Erdős–Rényi / Watts–Strogatz trio,
//! the same ER and WS topologies with a 1..=1000 weight range (wide
//! weights on the dense regular WS class are where Δ-stepping wins), a
//! sparse wide ER control, and a unit-weight BA control (the
//! modified-Dijkstra home turf). Wall time plus the kernel counters
//! (relaxations, queue pops, row reuses) are recorded per cell.
//!
//! Emits `BENCH_solver.json` at the workspace root (override with
//! `--out <path>`). Flags: `--iters <N>` measurement repetitions per
//! cell (default 3, best-of), `--quick` shrinks the graphs for CI smoke
//! runs, `--n <V>` overrides the vertex count.
//!
//! Every cell's distance matrix is asserted bit-identical to the
//! sequential baseline, so every published number doubles as a
//! differential check of solver invariance.

use std::time::Instant;

use parapsp_core::{ApspEngine, DistanceMatrix, RunConfig, Runner, SeqEngine, SolverKind};
use parapsp_graph::generate::{barabasi_albert, erdos_renyi_gnm, watts_strogatz, WeightSpec};
use parapsp_graph::{CsrGraph, Direction};

const NARROW: WeightSpec = WeightSpec::Uniform { lo: 1, hi: 9 };
const WIDE: WeightSpec = WeightSpec::Uniform { lo: 1, hi: 1000 };

/// Threads for the end-to-end sweep (fixed: the solver axis, not the
/// scaling axis, is under test here).
const THREADS: usize = 4;

fn solvers() -> [(&'static str, SolverKind); 4] {
    [
        ("dijkstra", SolverKind::Dijkstra),
        ("delta:auto", SolverKind::Delta { delta: None }),
        ("stepping", SolverKind::Stepping),
        ("auto", SolverKind::Auto),
    ]
}

fn graphs(n: usize) -> Vec<(String, CsrGraph)> {
    let m = n * 4;
    vec![
        (
            format!("ba_n{n}_w1-9"),
            barabasi_albert(n, 4, NARROW, 42).expect("BA generation"),
        ),
        (
            format!("ba_n{n}_unit"),
            barabasi_albert(n, 4, WeightSpec::Unit, 45).expect("BA generation"),
        ),
        (
            format!("er_n{n}_w1-9"),
            erdos_renyi_gnm(n, m, Direction::Directed, NARROW, 43).expect("ER generation"),
        ),
        (
            format!("er_n{n}_w1-1000"),
            erdos_renyi_gnm(n, m, Direction::Directed, WIDE, 43).expect("ER generation"),
        ),
        (
            // Sparse + wide control: despite long weighted paths the FIFO
            // kernel's relaxation count stays near-optimal here and it
            // keeps winning — kept to stop the tuner over-claiming.
            format!("er-sparse_n{n}_w1-1000"),
            erdos_renyi_gnm(n, n * 3 / 2, Direction::Directed, WIDE, 46).expect("ER generation"),
        ),
        (
            format!("ws_n{n}_w1-9"),
            watts_strogatz(n, 8, 0.2, NARROW, 44).expect("WS generation"),
        ),
        (
            format!("ws_n{n}_w1-1000"),
            watts_strogatz(n, 8, 0.2, WIDE, 44).expect("WS generation"),
        ),
    ]
}

struct Measurement {
    graph: String,
    solver: &'static str,
    kind: SolverKind,
    ms: f64,
    relaxations: u64,
    queue_pops: u64,
    row_reuses: u64,
}

/// One timed run of a (graph, solver) cell with a bit-identity check
/// against the sequential reference; folds into the best-of accumulator.
///
/// Cells are interleaved across iterations by the caller (round-robin
/// with a rotating offset) so environmental drift spreads evenly instead
/// of penalizing whichever solver runs last.
fn run_cell_once(graph: &CsrGraph, reference: &DistanceMatrix, cell: &mut Measurement) {
    let runner = Runner::new(RunConfig::par_apsp(THREADS).with_solver(cell.kind));
    let start = Instant::now();
    let out = runner.run(ApspEngine::new(), graph);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        out.dist.as_slice(),
        reference.as_slice(),
        "{} {}: distances differ from seq-basic",
        cell.graph,
        cell.solver
    );
    if ms < cell.ms {
        cell.ms = ms;
        cell.relaxations = out.counters.relaxations;
        cell.queue_pops = out.counters.queue_pops;
        cell.row_reuses = out.counters.row_reuses;
    }
}

fn json_escape_free(name: &str) -> &str {
    assert!(
        name.chars()
            .all(|c| c.is_ascii_alphanumeric() || "_-.:".contains(c)),
        "label {name:?} needs JSON escaping"
    );
    name
}

fn write_json(
    path: &std::path::Path,
    n: usize,
    iters: usize,
    results: &[Measurement],
) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"solver_scaling\",\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str(&format!("  \"threads\": {THREADS},\n"));
    out.push_str(&format!("  \"iters\": {iters},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"graph\": \"{}\", \"solver\": \"{}\", \"ms\": {:.3}, \
             \"relaxations\": {}, \"queue_pops\": {}, \"row_reuses\": {}}}{}\n",
            json_escape_free(&r.graph),
            json_escape_free(r.solver),
            r.ms,
            r.relaxations,
            r.queue_pops,
            r.row_reuses,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

/// Default output location: `BENCH_solver.json` at the workspace root.
fn default_out_path() -> std::path::PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| {
            std::path::PathBuf::from(d)
                .parent()
                .and_then(|p| p.parent())
                .map(|p| p.to_path_buf())
                .unwrap_or_else(|| std::path::PathBuf::from("."))
        })
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    base.join("BENCH_solver.json")
}

fn main() {
    let mut iters = 3usize;
    let mut n: Option<usize> = None;
    let mut quick = false;
    let mut out_path = default_out_path();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--n" => {
                n = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--n needs a positive integer"),
                );
            }
            "--quick" => quick = true,
            "--out" => {
                out_path = args.next().expect("--out needs a path").into();
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: solver_scaling [--iters N] [--n V] [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let n = n.unwrap_or(if quick { 400 } else { 2000 });
    if quick {
        iters = 1;
    }
    assert!(iters > 0 && n > 0);

    println!("solver_scaling: n={n}, threads={THREADS}, iters={iters} (best-of)");

    let inputs: Vec<(String, CsrGraph, DistanceMatrix)> = graphs(n)
        .into_iter()
        .map(|(label, graph)| {
            let reference = Runner::new(RunConfig::seq_basic())
                .run(SeqEngine::ordered(), &graph)
                .dist;
            (label, graph, reference)
        })
        .collect();
    let mut results: Vec<Measurement> = Vec::new();
    for (label, _, _) in &inputs {
        for (solver_label, kind) in solvers() {
            results.push(Measurement {
                graph: label.clone(),
                solver: solver_label,
                kind,
                ms: f64::INFINITY,
                relaxations: 0,
                queue_pops: 0,
                row_reuses: 0,
            });
        }
    }
    let cells_per_graph = results.len() / inputs.len();
    for it in 0..iters {
        let offset = (it * 11) % results.len();
        for j in 0..results.len() {
            let i = (j + offset) % results.len();
            let (_, graph, reference) = &inputs[i / cells_per_graph];
            run_cell_once(graph, reference, &mut results[i]);
        }
    }
    for m in &results {
        println!(
            "  {:<18}  {:<10}  {:>9.3} ms  (relax {}, pops {}, reuses {})",
            m.graph, m.solver, m.ms, m.relaxations, m.queue_pops, m.row_reuses
        );
    }

    write_json(&out_path, n, iters, &results).expect("writing benchmark JSON");
    println!("wrote {}", out_path.display());
}
