//! `store_scaling` — the tiered distance-matrix storage benchmark.
//!
//! Sweeps the [`StoreSpec`] axis {dense, delta, mmap} through `ParAPSP`
//! (via [`Runner`]/[`StoreApspEngine`]) on a Barabási–Albert replica and
//! records, per backend:
//!
//! * **bytes/row**: payload bytes of the completed store divided by the
//!   vertex count ([`Store::stored_bytes`] — resident matrix bytes for
//!   dense, encoded bytes for delta, shard-file bytes for mmap);
//! * **peak RSS**: the process high-water mark (`VmHWM` from
//!   `/proc/self/status`). Each backend runs in its own re-executed child
//!   process so one backend's peak cannot mask another's;
//! * **end-to-end wall time** of the full APSP run;
//! * a **bit-identity oracle**: every backend's final matrix is streamed
//!   row-by-row through an FNV-1a checksum and all checksums must match
//!   the dense reference — a differential check that never materializes
//!   the O(n²) matrix, so it holds even for out-of-core runs.
//!
//! Each cell also records the lease-layer telemetry (`row_reuses`,
//! `lease_hits` / `lease_misses`, `decode_ahead_hits`,
//! `pinned_bytes_peak`) so the JSON shows *why* a tier is fast or slow,
//! not just that it is.
//!
//! Emits `BENCH_store.json` at the workspace root (override with
//! `--out <path>`). Flags: `--n <V>` vertex count (default 3000),
//! `--threads <N>` (default 4), `--quick` shrinks the graph for CI smoke
//! runs, `--measure <spec>` runs one backend in-process and prints a
//! single machine-readable `MEASURE` line (the child mode; also what the
//! CI bounded-memory smoke runs under `ulimit -v`), `--max-ratio <f>`
//! fails the sweep if any non-dense backend is slower than `f ×` the
//! dense wall time (the CI perf gate for the lease layer).
//!
//! The mmap cell's cache budget is set to 1/8 of the dense matrix bytes,
//! so the sweep itself demonstrates out-of-core completion: the backend
//! finishes bit-identical while holding a fraction of the matrix.

use std::time::Instant;

use parapsp_core::engine::{RunConfig, Runner, StoreApspEngine};
use parapsp_core::{Store, StoreSpec};
use parapsp_graph::generate::{barabasi_albert, WeightSpec};

/// Graph seed: one fixed replica so every backend (and every child
/// process) sees the identical input.
const SEED: u64 = 42;

fn build_graph(n: usize) -> parapsp_graph::CsrGraph {
    barabasi_albert(n, 4, WeightSpec::Uniform { lo: 1, hi: 9 }, SEED).expect("BA generation")
}

/// FNV-1a over every row of the completed store, streamed in row order.
/// Never materializes the dense matrix: the backend decodes one row at a
/// time, so the checksum is valid under a memory budget.
fn checksum(store: &Store) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut row_buf = vec![0u32; store.n()];
    for s in 0..store.n() as u32 {
        assert!(store.read_row_into(s, &mut row_buf), "row {s} unpublished");
        for &d in &row_buf {
            for byte in d.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
    hash
}

/// Peak resident set (`VmHWM`) in KiB, from `/proc/self/status`; 0 when
/// the proc filesystem is unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Child mode: one (backend, graph) run in this process. Prints exactly
/// one `MEASURE` line the parent (or the CI smoke harness) parses.
fn measure(spec_raw: &str, n: usize, threads: usize) -> ! {
    let spec: StoreSpec = spec_raw.parse().unwrap_or_else(|e| {
        eprintln!("--measure: {e}");
        std::process::exit(2);
    });
    let graph = build_graph(n);
    let runner = Runner::new(RunConfig::par_apsp(threads).with_store(spec.clone()));
    let start = Instant::now();
    let out = runner.run(StoreApspEngine::new(), &graph);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let sum = checksum(&out.store);
    let c = &out.counters;
    println!(
        "MEASURE store={} n={} threads={} ms={:.3} stored_bytes={} peak_rss_kb={} \
         row_reuses={} lease_hits={} lease_misses={} decode_ahead_hits={} \
         pinned_bytes_peak={} checksum={:016x}",
        spec.label(),
        n,
        threads,
        ms,
        out.store.stored_bytes(),
        peak_rss_kb(),
        c.row_reuses,
        c.lease_hits,
        c.lease_misses,
        c.decode_ahead_hits,
        c.pinned_bytes_peak,
        sum,
    );
    std::process::exit(0);
}

struct Measurement {
    store: String,
    ms: f64,
    stored_bytes: u64,
    bytes_per_row: f64,
    peak_rss_kb: u64,
    row_reuses: u64,
    lease_hits: u64,
    lease_misses: u64,
    decode_ahead_hits: u64,
    pinned_bytes_peak: u64,
    checksum: u64,
}

/// Re-executes this binary in `--measure` mode and parses the child's
/// `MEASURE` line. Child stderr passes through for diagnosability.
fn run_child(spec: &str, n: usize, threads: usize) -> Measurement {
    let exe = std::env::current_exe().expect("current_exe");
    let output = std::process::Command::new(exe)
        .args([
            "--measure",
            spec,
            "--n",
            &n.to_string(),
            "--threads",
            &threads.to_string(),
        ])
        .stderr(std::process::Stdio::inherit())
        .output()
        .expect("spawning measure child");
    assert!(
        output.status.success(),
        "measure child for `{spec}` exited with {}",
        output.status
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("MEASURE "))
        .unwrap_or_else(|| panic!("no MEASURE line from `{spec}` child:\n{stdout}"));
    let field = |key: &str| -> &str {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(key).and_then(|t| t.strip_prefix('=')))
            .unwrap_or_else(|| panic!("MEASURE line missing {key}: {line}"))
    };
    let stored_bytes: u64 = field("stored_bytes").parse().unwrap();
    Measurement {
        store: field("store").to_string(),
        ms: field("ms").parse().unwrap(),
        stored_bytes,
        bytes_per_row: stored_bytes as f64 / n as f64,
        peak_rss_kb: field("peak_rss_kb").parse().unwrap(),
        row_reuses: field("row_reuses").parse().unwrap(),
        lease_hits: field("lease_hits").parse().unwrap(),
        lease_misses: field("lease_misses").parse().unwrap(),
        decode_ahead_hits: field("decode_ahead_hits").parse().unwrap(),
        pinned_bytes_peak: field("pinned_bytes_peak").parse().unwrap(),
        checksum: u64::from_str_radix(field("checksum"), 16).unwrap(),
    }
}

fn write_json(
    path: &std::path::Path,
    n: usize,
    threads: usize,
    results: &[Measurement],
) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"store_scaling\",\n");
    out.push_str("  \"schema_version\": 2,\n");
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"graph\": \"ba_n{n}_m4_w1-9\",\n"));
    out.push_str(&format!(
        "  \"dense_matrix_bytes\": {},\n",
        (n as u64) * (n as u64) * 4
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        assert!(
            r.store
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_-.:".contains(c)),
            "label {:?} needs JSON escaping",
            r.store
        );
        out.push_str(&format!(
            "    {{\"store\": \"{}\", \"ms\": {:.3}, \"stored_bytes\": {}, \
             \"bytes_per_row\": {:.1}, \"peak_rss_kb\": {}, \"row_reuses\": {}, \
             \"lease_hits\": {}, \"lease_misses\": {}, \"decode_ahead_hits\": {}, \
             \"pinned_bytes_peak\": {}, \"checksum\": \"{:016x}\"}}{}\n",
            r.store,
            r.ms,
            r.stored_bytes,
            r.bytes_per_row,
            r.peak_rss_kb,
            r.row_reuses,
            r.lease_hits,
            r.lease_misses,
            r.decode_ahead_hits,
            r.pinned_bytes_peak,
            r.checksum,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

/// Default output location: `BENCH_store.json` at the workspace root.
fn default_out_path() -> std::path::PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| {
            std::path::PathBuf::from(d)
                .parent()
                .and_then(|p| p.parent())
                .map(|p| p.to_path_buf())
                .unwrap_or_else(|| std::path::PathBuf::from("."))
        })
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    base.join("BENCH_store.json")
}

fn main() {
    let mut n: Option<usize> = None;
    let mut threads = 4usize;
    let mut quick = false;
    let mut measure_spec: Option<String> = None;
    let mut max_ratio: Option<f64> = None;
    let mut out_path = default_out_path();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--n" => {
                n = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--n needs a positive integer"),
                );
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            "--quick" => quick = true,
            "--measure" => {
                measure_spec = Some(args.next().expect("--measure needs a store spec"));
            }
            "--out" => {
                out_path = args.next().expect("--out needs a path").into();
            }
            "--max-ratio" => {
                let ratio: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-ratio needs a positive number");
                assert!(ratio > 0.0, "--max-ratio needs a positive number");
                max_ratio = Some(ratio);
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: store_scaling [--n V] [--threads N] [--quick] [--out PATH] \
                     [--max-ratio F] [--measure SPEC]"
                );
                std::process::exit(2);
            }
        }
    }
    let n = n.unwrap_or(if quick { 600 } else { 3000 });
    assert!(n > 0 && threads > 0);
    if let Some(spec) = measure_spec {
        measure(&spec, n, threads); // never returns
    }

    let dense_bytes = (n as u64) * (n as u64) * 4;
    // An out-of-core budget the dense matrix overflows 8×: the mmap cell
    // demonstrates completion (and bit-identity) under real pressure.
    let mmap_budget = (dense_bytes / 8).max(1 << 20);
    let specs = [
        "dense".to_string(),
        "delta:16".to_string(),
        format!("mmap:{mmap_budget}"),
    ];
    println!(
        "store_scaling: n={n}, threads={threads}, dense matrix {:.1} MiB, mmap budget {:.1} MiB",
        dense_bytes as f64 / (1 << 20) as f64,
        mmap_budget as f64 / (1 << 20) as f64,
    );

    let results: Vec<Measurement> = specs
        .iter()
        .map(|spec| run_child(spec, n, threads))
        .collect();
    let reference = results[0].checksum;
    let dense_ms = results[0].ms;
    for r in &results {
        println!(
            "  {:<16}  {:>9.3} ms  {:>12} stored bytes  {:>8.1} B/row  peak RSS {:>7} KiB  \
             {} reuses ({} hits / {} misses, {} decode-ahead, pinned peak {} B)",
            r.store,
            r.ms,
            r.stored_bytes,
            r.bytes_per_row,
            r.peak_rss_kb,
            r.row_reuses,
            r.lease_hits,
            r.lease_misses,
            r.decode_ahead_hits,
            r.pinned_bytes_peak,
        );
        assert_eq!(
            r.checksum, reference,
            "{}: matrix differs from the dense reference",
            r.store
        );
        if let Some(ratio) = max_ratio {
            assert!(
                r.ms <= dense_ms * ratio,
                "{}: {:.3} ms exceeds --max-ratio {ratio} × dense ({:.3} ms); \
                 the lease layer should keep tiered backends within this bound",
                r.store,
                r.ms,
                dense_ms
            );
        }
    }

    write_json(&out_path, n, threads, &results).expect("writing benchmark JSON");
    println!("wrote {}", out_path.display());
}
