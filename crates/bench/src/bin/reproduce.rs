//! Regenerates the tables and figures of the ParAPSP paper.
//!
//! ```text
//! reproduce [OPTIONS] <EXPERIMENT>...
//!
//! Experiments:
//!   table1 table2 fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 ablation all
//!
//! Options:
//!   --apsp-scale <F>      replica size for matrix-allocating runs,
//!                         as a fraction of the paper's vertex count
//!                         (default 0.03)
//!   --ordering-scale <F>  replica size for ordering-only runs
//!                         (default 0.5; use 1.0 for the paper's full n)
//!   --runs <N>            repetitions per measurement (default 3)
//!   --threads <a,b,c>     thread sweep (default 1,2,4,8,16)
//! ```
//!
//! Results are printed as aligned tables and written to `results/*.csv`.

use parapsp_bench::experiments::{self, Config};
use parapsp_bench::report::{write_csv, Table};

const EXPERIMENTS: &[&str] = &[
    "table1", "table2", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "ablation", "dist", "complexity", "hypothesis",
];

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [--apsp-scale F] [--ordering-scale F] [--runs N] \
         [--threads a,b,c] <experiment>...\nexperiments: {} all",
        EXPERIMENTS.join(" ")
    );
    std::process::exit(2);
}

fn run_experiment(name: &str, config: &Config) -> Vec<Table> {
    match name {
        "table1" => experiments::table1(config),
        "table2" => experiments::table2(config),
        "fig1" => experiments::fig1(config),
        "fig3" => experiments::fig3(config),
        "fig4" => experiments::fig4(config),
        "fig5" => experiments::fig5(config),
        "fig6" => experiments::fig6(config),
        "fig7" => experiments::fig7(config),
        // Figs. 8 and 9 come from the same sweep (elapsed + speedup).
        "fig8" | "fig9" => experiments::fig8_fig9(config),
        "fig10" => experiments::fig10(config),
        "ablation" => experiments::ablation(config),
        "dist" => experiments::dist(config),
        "complexity" => experiments::complexity(config),
        "hypothesis" => experiments::hypothesis(config),
        other => {
            eprintln!("unknown experiment: {other}");
            usage();
        }
    }
}

fn main() {
    let mut config = Config::default();
    let mut requested: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--apsp-scale" => {
                config.apsp_scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--ordering-scale" => {
                config.ordering_scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--runs" => {
                config.runs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                let spec = args.next().unwrap_or_else(|| usage());
                config.threads = spec
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .collect();
                if config.threads.is_empty() {
                    usage();
                }
            }
            "--help" | "-h" => usage(),
            name if name.starts_with('-') => {
                eprintln!("unknown option: {name}");
                usage();
            }
            name => requested.push(name.to_string()),
        }
    }
    if requested.is_empty() {
        usage();
    }
    if requested.iter().any(|r| r == "all") {
        requested = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
        // fig9 shares fig8's sweep; don't run it twice.
        requested.retain(|r| r != "fig9");
    }

    println!(
        "# ParAPSP reproduction — apsp-scale {}, ordering-scale {}, runs {}, threads {:?}",
        config.apsp_scale, config.ordering_scale, config.runs, config.threads
    );
    println!(
        "# note: this machine has {} available core(s); thread sweeps beyond that are oversubscribed\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    for name in requested {
        let start = std::time::Instant::now();
        let tables = run_experiment(&name, &config);
        for (i, table) in tables.iter().enumerate() {
            table.print();
            let csv_name = if tables.len() == 1 {
                name.clone()
            } else {
                format!("{name}-{i}")
            };
            match write_csv(&csv_name, table) {
                Ok(path) => println!("(csv: {})", path.display()),
                Err(err) => eprintln!("(csv write failed: {err})"),
            }
            // Thread-sweep tables additionally become SVG figures
            // (durations on a log axis; speedups on a linear one).
            let plot = parapsp_bench::plot::thread_sweep_plot(table, table.title())
                .or_else(|| parapsp_bench::plot::speedup_plot(table, table.title()));
            if let Some(plot) = plot {
                match parapsp_bench::plot::write_svg(&csv_name, &plot) {
                    Ok(path) => println!("(svg: {})", path.display()),
                    Err(err) => eprintln!("(svg write failed: {err})"),
                }
            }
            println!();
        }
        println!(
            "# {name} finished in {}\n",
            parapsp_bench::fmt_duration(start.elapsed())
        );
    }
}
