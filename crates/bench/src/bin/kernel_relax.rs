//! `kernel_relax` — the row-relaxation microbenchmark and the first entry
//! in the repo's machine-readable perf trajectory.
//!
//! Measures, for every [`RelaxImpl`]:
//!
//! * **ns/row**: one dense min-plus pass (`row = min(row, dt ⊕ t_row)`)
//!   over rows of n ∈ {1024, 4096, 16384} entries, amortized over a batch
//!   of published rows the way the APSP kernel consumes them;
//! * **end-to-end**: full `ParAPSP` wall time on a Barabási–Albert graph,
//!   where the row-reuse pass is the dominant cost.
//!
//! Emits `BENCH_kernel.json` at the workspace root (override with
//! `--out <path>`). Flags: `--iters <N>` measurement repetitions
//! (default 200), `--quick` shrinks the end-to-end graph for CI smoke
//! runs, `--threads <N>` for the end-to-end sweep (default 4).
//!
//! All implementations run on identical inputs and the final rows are
//! asserted bit-identical, so every published number doubles as a
//! differential check.

use std::time::Instant;

use parapsp_core::engine::{ApspEngine, RunConfig, Runner};
use parapsp_core::relax::{avx2_available, relax_row, RelaxImpl};
use parapsp_graph::generate::{barabasi_albert, WeightSpec};
use parapsp_graph::INF;

/// Row sizes swept by the microbenchmark (entries, i.e. vertices).
const ROW_SIZES: [usize; 3] = [1024, 4096, 16384];
/// Published rows consumed per pass; amortizes the per-iteration reset.
const BATCH: usize = 32;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A synthetic "published row": mostly finite distances with ~12% INF
/// lanes, the texture row reuse sees on sparse disconnected-ish graphs.
fn synth_row(n: usize, seed: u64) -> Vec<u32> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            let r = splitmix(&mut s);
            if r % 100 < 12 {
                INF
            } else {
                (r % 5_000_000) as u32
            }
        })
        .collect()
}

/// The implementations to measure: the concrete ones that exist on this
/// machine (Auto is reported via the `resolved` field instead of a row).
fn measured_impls() -> Vec<RelaxImpl> {
    let mut imps = vec![RelaxImpl::Scalar, RelaxImpl::Portable];
    if avx2_available() {
        imps.push(RelaxImpl::Avx2);
    }
    imps
}

struct RowResult {
    imp: RelaxImpl,
    n: usize,
    ns_per_row: f64,
}

/// One measurement: reset `row` from the pristine copy, then consume the
/// whole batch of published rows — the same row state evolution for every
/// implementation, so outputs are comparable bit-for-bit.
fn bench_rows(imp: RelaxImpl, n: usize, iters: usize) -> (RowResult, Vec<u32>, u64) {
    let pristine = synth_row(n, 0xA11CE ^ n as u64);
    let published: Vec<Vec<u32>> = (0..BATCH)
        .map(|i| synth_row(n, 0xB0B ^ (i as u64) << 32 ^ n as u64))
        .collect();
    let mut row = pristine.clone();
    let mut improved_total = 0u64;
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        row.copy_from_slice(&pristine);
        improved_total = 0;
        let start = Instant::now();
        for (i, t_row) in published.iter().enumerate() {
            let dt = (i as u32) * 3 + 1;
            improved_total += relax_row(imp, &mut row, t_row, dt, u32::MAX);
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        // Best-of-iters: the least-disturbed measurement of a fixed
        // workload (the paper's average-of-10 targets end-to-end noise;
        // a microbenchmark wants the mode, which best-of approximates).
        best = best.min(elapsed / BATCH as f64);
    }
    (
        RowResult {
            imp,
            n,
            ns_per_row: best,
        },
        row,
        improved_total,
    )
}

struct EndToEnd {
    imp: RelaxImpl,
    graph: String,
    threads: usize,
    ms: f64,
    row_reuses: u64,
    relaxations: u64,
}

fn bench_end_to_end(
    imp: RelaxImpl,
    graph: &parapsp_graph::CsrGraph,
    label: &str,
    threads: usize,
    runs: usize,
) -> EndToEnd {
    let runner = Runner::new(RunConfig::par_apsp(threads).with_relax(imp));
    let mut best = f64::INFINITY;
    let mut counters = parapsp_core::Counters::default();
    for _ in 0..runs {
        let out = runner.run(ApspEngine::new(), graph);
        best = best.min(out.timings.total.as_secs_f64() * 1e3);
        counters = out.counters;
    }
    EndToEnd {
        imp,
        graph: label.to_string(),
        threads,
        ms: best,
        row_reuses: counters.row_reuses,
        relaxations: counters.relaxations,
    }
}

fn json_escape_free(name: &str) -> &str {
    // All labels in this file are ASCII identifiers; assert rather than
    // carry an escaper.
    assert!(
        name.chars()
            .all(|c| c.is_ascii_alphanumeric() || "_-.".contains(c)),
        "label {name:?} needs JSON escaping"
    );
    name
}

fn write_json(
    path: &std::path::Path,
    iters: usize,
    rows: &[RowResult],
    e2e: &[EndToEnd],
) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"kernel_relax\",\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"avx2_available\": {},\n", avx2_available()));
    out.push_str(&format!(
        "  \"auto_resolves_to\": \"{}\",\n",
        json_escape_free(RelaxImpl::Auto.resolve().name())
    ));
    out.push_str(&format!("  \"iters\": {iters},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"impl\": \"{}\", \"n\": {}, \"ns_per_row\": {:.1}}}{}\n",
            json_escape_free(r.imp.name()),
            r.n,
            r.ns_per_row,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"end_to_end\": [\n");
    for (i, e) in e2e.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"impl\": \"{}\", \"graph\": \"{}\", \"threads\": {}, \"ms\": {:.3}, \
             \"row_reuses\": {}, \"relaxations\": {}}}{}\n",
            json_escape_free(e.imp.name()),
            json_escape_free(&e.graph),
            e.threads,
            e.ms,
            e.row_reuses,
            e.relaxations,
            if i + 1 < e2e.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

/// Default output location: `BENCH_kernel.json` at the workspace root.
fn default_out_path() -> std::path::PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| {
            std::path::PathBuf::from(d)
                .parent()
                .and_then(|p| p.parent())
                .map(|p| p.to_path_buf())
                .unwrap_or_else(|| std::path::PathBuf::from("."))
        })
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    base.join("BENCH_kernel.json")
}

fn main() {
    let mut iters = 200usize;
    let mut threads = 4usize;
    let mut quick = false;
    let mut out_path = default_out_path();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            "--quick" => quick = true,
            "--out" => {
                out_path = args.next().expect("--out needs a path").into();
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: kernel_relax [--iters N] [--threads N] [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    assert!(iters > 0 && threads > 0);

    println!(
        "kernel_relax: avx2_available={}, auto={}, iters={iters}",
        avx2_available(),
        RelaxImpl::Auto.resolve().name()
    );

    // Microbenchmark: ns per dense row-relaxation pass.
    let mut rows = Vec::new();
    for &n in &ROW_SIZES {
        let mut reference: Option<(Vec<u32>, u64)> = None;
        for imp in measured_impls() {
            let (result, final_row, improved) = bench_rows(imp, n, iters);
            match &reference {
                None => reference = Some((final_row, improved)),
                Some((ref_row, ref_improved)) => {
                    assert_eq!(*ref_row, final_row, "{} differs at n={n}", imp.name());
                    assert_eq!(*ref_improved, improved, "{} count at n={n}", imp.name());
                }
            }
            println!(
                "  n={n:>6}  {:<8}  {:>10.1} ns/row  ({:.2} elems/ns)",
                result.imp.name(),
                result.ns_per_row,
                n as f64 / result.ns_per_row
            );
            rows.push(result);
        }
    }

    // End-to-end: ParAPSP on a scale-free graph, where row reuse dominates.
    let (ba_n, e2e_runs) = if quick { (600, 1) } else { (3000, 3) };
    let graph = barabasi_albert(ba_n, 4, WeightSpec::Unit, 42).expect("BA generation");
    let label = format!("ba_n{ba_n}_m4");
    let mut e2e = Vec::new();
    let mut e2e_impls = measured_impls();
    e2e_impls.push(RelaxImpl::Auto);
    for imp in e2e_impls {
        let result = bench_end_to_end(imp, &graph, &label, threads, e2e_runs);
        println!(
            "  end-to-end {}  {:<8}  {:>9.3} ms  ({} row reuses)",
            result.graph,
            result.imp.name(),
            result.ms,
            result.row_reuses
        );
        e2e.push(result);
    }

    write_json(&out_path, iters, &rows, &e2e).expect("writing benchmark JSON");
    println!("wrote {}", out_path.display());
}
