//! Shared harness utilities for the benchmark suite and the `reproduce`
//! binary that regenerates every table and figure of the paper.
//!
//! The experiments print the same rows/series the paper reports and also
//! write CSV files under `results/`, so EXPERIMENTS.md can cite both.

#![warn(missing_docs)]

pub mod experiments;
pub mod plot;
pub mod report;
pub mod timing;

pub use report::{csv_path, write_csv, Table};
pub use timing::{median_duration, time, time_median};

/// The thread counts swept by the experiments; the paper uses 1–16 on
/// Machine-I and 1–32 on Machine-II. Override with the
/// `PARAPSP_THREADS` environment variable (comma-separated).
pub fn thread_sweep() -> Vec<usize> {
    if let Ok(val) = std::env::var("PARAPSP_THREADS") {
        let parsed: Vec<usize> = val
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&t| t > 0)
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
        eprintln!("warning: ignoring unparsable PARAPSP_THREADS={val:?}");
    }
    vec![1, 2, 4, 8, 16]
}

/// Formats a `Duration` compactly for table cells (µs/ms/s picked by size).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1_000.0 {
        format!("{us:.0} µs")
    } else if us < 1_000_000.0 {
        format!("{:.2} ms", us / 1_000.0)
    } else {
        format!("{:.2} s", us / 1_000_000.0)
    }
}

/// Parallel speedup `t1 / tp`.
pub fn speedup(t1: std::time::Duration, tp: std::time::Duration) -> f64 {
    if tp.is_zero() {
        return f64::INFINITY;
    }
    t1.as_secs_f64() / tp.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12 µs");
        assert!(fmt_duration(Duration::from_millis(34)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }

    #[test]
    fn speedup_math() {
        assert!((speedup(Duration::from_secs(8), Duration::from_secs(2)) - 4.0).abs() < 1e-12);
        assert!(speedup(Duration::from_secs(1), Duration::ZERO).is_infinite());
    }

    #[test]
    fn default_thread_sweep_is_paperlike() {
        // Don't mutate the env (other tests run in parallel); just check
        // the default path when the variable is absent.
        if std::env::var("PARAPSP_THREADS").is_err() {
            assert_eq!(thread_sweep(), vec![1, 2, 4, 8, 16]);
        }
    }
}
