//! Minimal timing helpers for the experiment harness (criterion is used by
//! the `benches/`; the `reproduce` binary needs coarser one-shot numbers,
//! matching the paper's average-of-10-runs methodology).

use std::time::{Duration, Instant};

/// Times one invocation of `f`, returning `(result, elapsed)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Median of an odd number of duration samples.
pub fn median_duration(mut samples: Vec<Duration>) -> Duration {
    assert!(!samples.is_empty(), "no samples");
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Runs `f` `runs` times and reports the median wall time of the last
/// invocation batch (the paper averages 10 runs; median is sturdier on a
/// shared box).
pub fn time_median(runs: usize, mut f: impl FnMut()) -> Duration {
    assert!(runs > 0, "need at least one run");
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        f();
        samples.push(start.elapsed());
    }
    median_duration(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_value_and_nonzero_duration() {
        let (v, d) = time(|| (0..10_000u64).sum::<u64>());
        assert_eq!(v, 49_995_000);
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn median_picks_middle() {
        let samples = vec![
            Duration::from_millis(9),
            Duration::from_millis(1),
            Duration::from_millis(5),
        ];
        assert_eq!(median_duration(samples), Duration::from_millis(5));
    }

    #[test]
    fn time_median_runs_requested_times() {
        let mut count = 0;
        let _ = time_median(5, || count += 1);
        assert_eq!(count, 5);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_median_panics() {
        let _ = median_duration(Vec::new());
    }
}
