//! Static SVG line charts for the reproduced figures.
//!
//! The `reproduce` binary emits each thread-sweep table as an SVG next to
//! its CSV, so the paper's figures exist as *figures*, not just rows.
//! Design follows the project's charting conventions: categorical series
//! colors assigned in a fixed validated order, 2 px lines with 8 px
//! markers, a legend plus direct end-of-line labels for identity, a
//! recessive grid, one y-axis (log-scale for runtime spans), and text in
//! ink tokens rather than series colors.

use std::path::PathBuf;

use crate::report::Table;

/// Categorical series colors (light mode), fixed assignment order —
/// validated palette from the charting reference (worst adjacent CVD
/// ΔE 24.2, well above the ≥12 target).
const SERIES_COLORS: [&str; 8] = [
    "#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7", "#e34948", "#e87ba4", "#eb6834",
];
const SURFACE: &str = "#fcfcfb";
const INK_PRIMARY: &str = "#0b0b0b";
const INK_SECONDARY: &str = "#52514e";
const GRID: &str = "#e4e3df";

/// One line of a plot.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend / direct label.
    pub label: String,
    /// `(x, y)` points in data space, x ascending.
    pub points: Vec<(f64, f64)>,
}

/// A static line chart with an optional log-scale y-axis.
#[derive(Debug, Clone)]
pub struct LinePlot {
    /// Title above the plot.
    pub title: String,
    /// X-axis caption.
    pub x_label: String,
    /// Y-axis caption.
    pub y_label: String,
    /// Log₁₀ y-axis (decade ticks) — right for runtimes spanning decades.
    pub log_y: bool,
    /// Format y ticks as durations (`"12 µs"`); plain numbers otherwise.
    pub y_is_duration: bool,
    /// The lines, in palette-assignment order.
    pub series: Vec<Series>,
}

const WIDTH: f64 = 760.0;
const HEIGHT: f64 = 440.0;
const MARGIN_LEFT: f64 = 86.0;
const MARGIN_RIGHT: f64 = 150.0; // room for direct end labels
const MARGIN_TOP: f64 = 54.0;
const MARGIN_BOTTOM: f64 = 62.0;

fn fmt_secs(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.0} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.0} ms", seconds * 1e3)
    } else {
        format!("{seconds:.1} s")
    }
}

impl LinePlot {
    /// Renders the chart as a standalone SVG document.
    pub fn render_svg(&self) -> String {
        let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;

        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        let ys: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(_, y)| y))
            .collect();
        if xs.is_empty() {
            return format!(
                "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\"/>"
            );
        }
        let (x_min, x_max) = bounds(&xs, false);
        let (y_min, y_max) = bounds(&ys, self.log_y);
        // Snap a log axis to whole decades so the decade gridlines/ticks
        // land inside the plot area.
        let (y_min, y_max) = if self.log_y {
            (
                10f64.powi(y_min.log10().floor() as i32),
                10f64.powi(y_max.log10().ceil() as i32),
            )
        } else {
            (y_min, y_max)
        };

        let to_px = |x: f64, y: f64| -> (f64, f64) {
            let fx = if x_max > x_min {
                (x - x_min) / (x_max - x_min)
            } else {
                0.5
            };
            let fy = if self.log_y {
                (y.max(f64::MIN_POSITIVE).log10() - y_min.log10()) / (y_max.log10() - y_min.log10())
            } else if y_max > y_min {
                (y - y_min) / (y_max - y_min)
            } else {
                0.5
            };
            (MARGIN_LEFT + fx * plot_w, MARGIN_TOP + (1.0 - fy) * plot_h)
        };

        let mut svg = String::new();
        svg.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" \
             viewBox=\"0 0 {WIDTH} {HEIGHT}\" font-family=\"system-ui, sans-serif\">\n"
        ));
        svg.push_str(&format!(
            "<rect width=\"{WIDTH}\" height=\"{HEIGHT}\" fill=\"{SURFACE}\"/>\n"
        ));
        svg.push_str(&format!(
            "<text x=\"{MARGIN_LEFT}\" y=\"28\" font-size=\"16\" font-weight=\"600\" fill=\"{INK_PRIMARY}\">{}</text>\n",
            escape(&self.title)
        ));

        // Gridlines + y ticks.
        for (value, label) in self.y_ticks(y_min, y_max) {
            let (_, py) = to_px(x_min, value);
            svg.push_str(&format!(
                "<line x1=\"{MARGIN_LEFT}\" y1=\"{py:.1}\" x2=\"{:.1}\" y2=\"{py:.1}\" stroke=\"{GRID}\" stroke-width=\"1\"/>\n",
                MARGIN_LEFT + plot_w
            ));
            svg.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"end\" fill=\"{INK_SECONDARY}\">{}</text>\n",
                MARGIN_LEFT - 8.0,
                py + 4.0,
                escape(&label)
            ));
        }
        // X ticks at the data points of the first series.
        let mut tick_xs: Vec<f64> = xs.clone();
        tick_xs.sort_by(f64::total_cmp);
        tick_xs.dedup();
        for &x in &tick_xs {
            let (px, _) = to_px(x, y_min);
            let base = MARGIN_TOP + plot_h;
            svg.push_str(&format!(
                "<line x1=\"{px:.1}\" y1=\"{base:.1}\" x2=\"{px:.1}\" y2=\"{:.1}\" stroke=\"{GRID}\" stroke-width=\"1\"/>\n",
                base + 5.0
            ));
            svg.push_str(&format!(
                "<text x=\"{px:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"middle\" fill=\"{INK_SECONDARY}\">{}</text>\n",
                base + 20.0,
                x
            ));
        }
        // Axes (recessive).
        svg.push_str(&format!(
            "<line x1=\"{MARGIN_LEFT}\" y1=\"{MARGIN_TOP}\" x2=\"{MARGIN_LEFT}\" y2=\"{:.1}\" stroke=\"{INK_SECONDARY}\" stroke-width=\"1\"/>\n",
            MARGIN_TOP + plot_h
        ));
        svg.push_str(&format!(
            "<line x1=\"{MARGIN_LEFT}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"{INK_SECONDARY}\" stroke-width=\"1\"/>\n",
            MARGIN_TOP + plot_h,
            MARGIN_LEFT + plot_w,
            MARGIN_TOP + plot_h
        ));
        // Axis captions.
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"middle\" fill=\"{INK_SECONDARY}\">{}</text>\n",
            MARGIN_LEFT + plot_w / 2.0,
            HEIGHT - 16.0,
            escape(&self.x_label)
        ));
        svg.push_str(&format!(
            "<text x=\"20\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"middle\" fill=\"{INK_SECONDARY}\" transform=\"rotate(-90 20 {:.1})\">{}</text>\n",
            MARGIN_TOP + plot_h / 2.0,
            MARGIN_TOP + plot_h / 2.0,
            escape(&self.y_label)
        ));

        // Series: 2 px lines, 8 px (r=4) markers, direct end labels.
        for (i, series) in self.series.iter().enumerate() {
            let color = SERIES_COLORS[i % SERIES_COLORS.len()];
            let path: Vec<String> = series
                .points
                .iter()
                .enumerate()
                .map(|(j, &(x, y))| {
                    let (px, py) = to_px(x, y);
                    format!("{}{px:.1},{py:.1}", if j == 0 { "M" } else { "L" })
                })
                .collect();
            svg.push_str(&format!(
                "<path d=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>\n",
                path.join(" ")
            ));
            for &(x, y) in &series.points {
                let (px, py) = to_px(x, y);
                svg.push_str(&format!(
                    "<circle cx=\"{px:.1}\" cy=\"{py:.1}\" r=\"4\" fill=\"{color}\" stroke=\"{SURFACE}\" stroke-width=\"2\"/>\n"
                ));
            }
            if let Some(&(x, y)) = series.points.last() {
                let (px, py) = to_px(x, y);
                svg.push_str(&format!(
                    "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"12\" fill=\"{INK_PRIMARY}\">{}</text>\n",
                    px + 10.0,
                    py + 4.0,
                    escape(&series.label)
                ));
            }
        }

        // Legend (top-right, one row per series) — identity never
        // color-alone: swatch + ink-colored text.
        for (i, series) in self.series.iter().enumerate() {
            let color = SERIES_COLORS[i % SERIES_COLORS.len()];
            let ly = MARGIN_TOP + 6.0 + i as f64 * 18.0;
            let lx = WIDTH - MARGIN_RIGHT + 14.0;
            svg.push_str(&format!(
                "<rect x=\"{lx:.1}\" y=\"{:.1}\" width=\"12\" height=\"12\" rx=\"2\" fill=\"{color}\"/>\n",
                ly - 10.0
            ));
            svg.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{ly:.1}\" font-size=\"12\" fill=\"{INK_PRIMARY}\">{}</text>\n",
                lx + 18.0,
                escape(&series.label)
            ));
        }
        svg.push_str("</svg>\n");
        svg
    }

    fn y_ticks(&self, y_min: f64, y_max: f64) -> Vec<(f64, String)> {
        let label = |v: f64| {
            if self.y_is_duration {
                fmt_secs(v)
            } else if v.abs() >= 10.0 || v == 0.0 {
                format!("{v:.0}")
            } else {
                format!("{v:.2}")
            }
        };
        if self.log_y {
            let lo = y_min.log10().floor() as i32;
            let hi = y_max.log10().ceil() as i32;
            (lo..=hi)
                .map(|exp| {
                    let v = 10f64.powi(exp);
                    (v, label(v))
                })
                .collect()
        } else {
            let span = (y_max - y_min).max(f64::MIN_POSITIVE);
            (0..=4)
                .map(|i| {
                    let v = y_min + span * i as f64 / 4.0;
                    (v, label(v))
                })
                .collect()
        }
    }
}

fn bounds(values: &[f64], log: bool) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        if log && v <= 0.0 {
            continue;
        }
        min = min.min(v);
        max = max.max(v);
    }
    if !min.is_finite() {
        return (0.0, 1.0);
    }
    if min == max {
        // Degenerate span: widen symmetrically.
        return if log {
            (min / 2.0, max * 2.0)
        } else {
            (min - 0.5, max + 0.5)
        };
    }
    (min, max)
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Parses a duration cell written by [`crate::fmt_duration`]
/// (`"12 µs"` / `"1.29 ms"` / `"2.10 s"`) back into seconds.
pub fn parse_duration_cell(cell: &str) -> Option<f64> {
    let cell = cell.trim();
    let (number, factor) = if let Some(v) = cell.strip_suffix("µs") {
        (v, 1e-6)
    } else if let Some(v) = cell.strip_suffix("ms") {
        (v, 1e-3)
    } else if let Some(v) = cell.strip_suffix('s') {
        (v, 1.0)
    } else {
        return None;
    };
    number.trim().parse::<f64>().ok().map(|v| v * factor)
}

/// Interprets a thread-sweep table (first column = series label, remaining
/// column headers = thread counts, duration cells) as a log-y line plot.
/// Returns `None` when the table doesn't have that shape.
pub fn thread_sweep_plot(table: &Table, title: &str) -> Option<LinePlot> {
    let header = table.header();
    if header.len() < 2 {
        return None;
    }
    let thread_counts: Vec<f64> = header[1..]
        .iter()
        .map(|h| h.parse::<f64>().ok())
        .collect::<Option<Vec<f64>>>()?;
    let mut series = Vec::new();
    for row in table.rows() {
        let points: Vec<(f64, f64)> = thread_counts
            .iter()
            .zip(&row[1..])
            .filter_map(|(&x, cell)| parse_duration_cell(cell).map(|y| (x, y)))
            .collect();
        if points.is_empty() {
            return None; // not a duration table after all
        }
        series.push(Series {
            label: row[0].clone(),
            points,
        });
    }
    if series.is_empty() {
        return None;
    }
    Some(LinePlot {
        title: title.to_string(),
        x_label: "threads".into(),
        y_label: "elapsed (log scale)".into(),
        log_y: true,
        y_is_duration: true,
        series,
    })
}

/// Interprets a speedup table (first column = series, numeric column
/// headers = thread counts, plain float cells) as a linear-y line plot.
pub fn speedup_plot(table: &Table, title: &str) -> Option<LinePlot> {
    let header = table.header();
    if header.len() < 2 {
        return None;
    }
    let thread_counts: Vec<f64> = header[1..]
        .iter()
        .map(|h| h.parse::<f64>().ok())
        .collect::<Option<Vec<f64>>>()?;
    let mut series = Vec::new();
    for row in table.rows() {
        let points: Vec<(f64, f64)> = thread_counts
            .iter()
            .zip(&row[1..])
            .filter_map(|(&x, cell)| cell.trim().parse::<f64>().ok().map(|y| (x, y)))
            .collect();
        if points.len() != thread_counts.len() {
            return None;
        }
        series.push(Series {
            label: row[0].clone(),
            points,
        });
    }
    if series.is_empty() {
        return None;
    }
    Some(LinePlot {
        title: title.to_string(),
        x_label: "threads".into(),
        y_label: "speedup (×)".into(),
        log_y: false,
        y_is_duration: false,
        series,
    })
}

/// Writes a plot to `results/<name>.svg`, returning the path.
pub fn write_svg(name: &str, plot: &LinePlot) -> std::io::Result<PathBuf> {
    let path = crate::report::csv_path(name).with_extension("svg");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&path, plot.render_svg())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plot() -> LinePlot {
        LinePlot {
            title: "demo".into(),
            x_label: "threads".into(),
            y_label: "elapsed".into(),
            log_y: true,
            y_is_duration: true,
            series: vec![
                Series {
                    label: "ParAlg1".into(),
                    points: vec![(1.0, 2.0), (2.0, 1.1), (4.0, 0.6)],
                },
                Series {
                    label: "ParAPSP".into(),
                    points: vec![(1.0, 0.9), (2.0, 0.5), (4.0, 0.3)],
                },
            ],
        }
    }

    #[test]
    fn svg_contains_structure_and_labels() {
        let svg = sample_plot().render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("ParAlg1"));
        assert!(svg.contains("ParAPSP"));
        assert!(svg.contains(SERIES_COLORS[0]));
        assert!(svg.contains(SERIES_COLORS[1]));
        assert!(svg.matches("<circle").count() == 6);
        assert!(svg.contains("demo"));
    }

    #[test]
    fn duration_cells_round_trip() {
        assert_eq!(parse_duration_cell("12 µs"), Some(12e-6));
        assert_eq!(parse_duration_cell("1.50 ms"), Some(1.5e-3));
        assert_eq!(parse_duration_cell("2.10 s"), Some(2.1));
        assert_eq!(parse_duration_cell("-"), None);
        assert_eq!(parse_duration_cell("fast"), None);
        for d in [
            std::time::Duration::from_micros(37),
            std::time::Duration::from_millis(256),
            std::time::Duration::from_secs(3),
        ] {
            let cell = crate::fmt_duration(d);
            let parsed = parse_duration_cell(&cell).unwrap();
            let expected = d.as_secs_f64();
            assert!(
                (parsed - expected).abs() / expected < 0.01,
                "{cell} -> {parsed}"
            );
        }
    }

    #[test]
    fn thread_sweep_table_converts() {
        let mut table = Table::new("x", &["procedure", "1", "2", "4"]);
        table.push_row(vec![
            "selection".into(),
            "2.23 s".into(),
            "2.14 s".into(),
            "2.13 s".into(),
        ]);
        table.push_row(vec![
            "par-buckets".into(),
            "1.33 ms".into(),
            "1.30 ms".into(),
            "1.35 ms".into(),
        ]);
        let plot = thread_sweep_plot(&table, "Table 1").unwrap();
        assert_eq!(plot.series.len(), 2);
        assert_eq!(plot.series[0].points.len(), 3);
        assert!(plot.log_y);
        let svg = plot.render_svg();
        assert!(svg.contains("selection"));
    }

    #[test]
    fn non_sweep_tables_are_rejected() {
        let mut named_cols = Table::new("x", &["a", "b"]);
        named_cols.push_row(vec!["r".into(), "1.0 s".into()]);
        assert!(thread_sweep_plot(&named_cols, "t").is_none()); // header not numeric

        let mut not_durations = Table::new("x", &["a", "1"]);
        not_durations.push_row(vec!["r".into(), "hello".into()]);
        assert!(thread_sweep_plot(&not_durations, "t").is_none());
    }

    #[test]
    fn degenerate_plots_render_without_panicking() {
        let empty = LinePlot {
            title: "empty".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            log_y: false,
            y_is_duration: true,
            series: vec![],
        };
        assert!(empty.render_svg().starts_with("<svg"));

        let flat = LinePlot {
            title: "flat".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            log_y: true,
            y_is_duration: true,
            series: vec![Series {
                label: "one".into(),
                points: vec![(1.0, 5.0), (2.0, 5.0)],
            }],
        };
        assert!(flat.render_svg().contains("one"));
    }

    #[test]
    fn speedup_table_converts_with_plain_ticks() {
        let mut table = Table::new("x", &["algorithm", "1", "2", "4"]);
        table.push_row(vec![
            "ParAPSP".into(),
            "1.00".into(),
            "1.90".into(),
            "3.70".into(),
        ]);
        let plot = speedup_plot(&table, "Figure 9").unwrap();
        assert!(!plot.log_y);
        assert!(!plot.y_is_duration);
        let svg = plot.render_svg();
        assert!(svg.contains("ParAPSP"));
        assert!(!svg.contains("µs"), "speedup ticks must not be durations");

        // A duration table must not convert as a speedup plot.
        let mut durations = Table::new("x", &["algorithm", "1"]);
        durations.push_row(vec!["a".into(), "1.29 ms".into()]);
        assert!(speedup_plot(&durations, "t").is_none());
    }

    #[test]
    fn write_svg_creates_file() {
        let path = write_svg("plot-selftest", &sample_plot()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("</svg>"));
        std::fs::remove_file(path).ok();
    }
}
