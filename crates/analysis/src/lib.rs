//! Complex-graph analysis on APSP results.
//!
//! The paper's motivation (§1) is that APSP is the substrate for studying
//! the characteristics of large complex networks. This crate provides those
//! downstream analyses — the quantities a network scientist computes *from*
//! the distance matrix — plus the degree-distribution report of Fig. 3:
//!
//! * [`centrality`] — closeness (two normalizations) and harmonic
//!   centrality, with top-k helpers;
//! * [`paths`] — eccentricity, diameter, radius, average path length and
//!   the full distance distribution;
//! * [`components`] — connected / strongly-reachable structure derived
//!   from the matrix, plus a direct union-find implementation for graphs.

#![warn(missing_docs)]

pub mod betweenness;
pub mod centrality;
pub mod components;
pub mod landmarks;
pub mod paths;
pub mod structure;

pub use betweenness::{
    average_clustering, betweenness_centrality, clustering_coefficients, degree_assortativity,
};
pub use centrality::{closeness_centrality, harmonic_centrality, top_k, Normalization};
pub use paths::{distance_distribution, eccentricities, PathStats};
