//! Distance-based centrality measures.
//!
//! Closeness and harmonic centrality are the classic "who is structurally
//! central" questions that motivate computing APSP on social and
//! information networks (paper §1).

use parapsp_core::DistanceMatrix;
use parapsp_graph::INF;

/// How closeness scores are normalized on (possibly) disconnected graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Normalization {
    /// Classic closeness: `(r_u) / (sum of distances to reached vertices)`
    /// where `r_u` is the number of vertices `u` reaches. Comparable only
    /// within one connected component.
    Classic,
    /// Wasserman–Faust: scales the classic score by `r_u / (n - 1)`, making
    /// scores comparable across components of different sizes.
    WassermanFaust,
}

/// Closeness centrality of every vertex (out-distance based for directed
/// graphs). Vertices that reach nothing score 0.
pub fn closeness_centrality(dist: &DistanceMatrix, normalization: Normalization) -> Vec<f64> {
    let n = dist.n();
    dist.rows()
        .map(|(u, row)| {
            let mut sum: u64 = 0;
            let mut reached: usize = 0;
            for (v, &d) in row.iter().enumerate() {
                if v as u32 == u || d == INF {
                    continue;
                }
                sum += d as u64;
                reached += 1;
            }
            if reached == 0 || sum == 0 {
                return 0.0;
            }
            let classic = reached as f64 / sum as f64;
            match normalization {
                Normalization::Classic => classic,
                Normalization::WassermanFaust => {
                    classic * reached as f64 / (n.saturating_sub(1)) as f64
                }
            }
        })
        .collect()
}

/// Harmonic centrality: `sum over v != u of 1 / d(u, v)` with `1/∞ = 0`,
/// normalized by `n - 1`. Well-defined on disconnected graphs.
pub fn harmonic_centrality(dist: &DistanceMatrix) -> Vec<f64> {
    let n = dist.n();
    let norm = (n.saturating_sub(1)).max(1) as f64;
    dist.rows()
        .map(|(u, row)| {
            let sum: f64 = row
                .iter()
                .enumerate()
                .filter(|&(v, &d)| v as u32 != u && d != INF && d > 0)
                .map(|(_, &d)| 1.0 / d as f64)
                .sum();
            sum / norm
        })
        .collect()
}

/// Indices of the `k` largest scores, in descending score order (ties
/// broken by ascending vertex id).
pub fn top_k(scores: &[f64], k: usize) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_core::engine::{RunConfig, Runner, SeqEngine};
    use parapsp_graph::generate::{path_graph, star_graph};
    use parapsp_graph::{CsrGraph, Direction};

    fn dist_of(g: &CsrGraph) -> DistanceMatrix {
        Runner::new(RunConfig::seq_basic())
            .run(SeqEngine::ordered(), g)
            .dist
    }

    #[test]
    fn star_hub_dominates_closeness_and_harmonic() {
        let d = dist_of(&star_graph(10));
        for norm in [Normalization::Classic, Normalization::WassermanFaust] {
            let c = closeness_centrality(&d, norm);
            assert!(c[1..].iter().all(|&x| x < c[0]), "{norm:?}: {c:?}");
        }
        let h = harmonic_centrality(&d);
        assert!(h[1..].iter().all(|&x| x < h[0]));
        assert_eq!(top_k(&h, 1), vec![0]);
    }

    #[test]
    fn closeness_exact_values_on_path() {
        // Path 0-1-2: distances from 1 are [1, 0, 1] -> closeness 2/2 = 1.
        let d = dist_of(&path_graph(3, Direction::Undirected));
        let c = closeness_centrality(&d, Normalization::Classic);
        assert!((c[1] - 1.0).abs() < 1e-12);
        assert!((c[0] - 2.0 / 3.0).abs() < 1e-12);
        // Wasserman–Faust on a connected graph multiplies by r/(n-1) = 1.
        let wf = closeness_centrality(&d, Normalization::WassermanFaust);
        assert!((wf[1] - c[1]).abs() < 1e-12);
    }

    #[test]
    fn harmonic_exact_values_on_path() {
        let d = dist_of(&path_graph(3, Direction::Undirected));
        let h = harmonic_centrality(&d);
        // From 0: 1/1 + 1/2 = 1.5, normalized by 2 -> 0.75.
        assert!((h[0] - 0.75).abs() < 1e-12);
        assert!((h[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_vertices_score_zero_closeness() {
        let g = CsrGraph::from_unit_edges(3, Direction::Undirected, &[(0, 1)]).unwrap();
        let d = dist_of(&g);
        let c = closeness_centrality(&d, Normalization::Classic);
        assert_eq!(c[2], 0.0);
        let h = harmonic_centrality(&d);
        assert_eq!(h[2], 0.0);
    }

    #[test]
    fn wasserman_faust_penalizes_small_components() {
        // Two components: an edge {0,1} and a triangle {2,3,4}.
        let g =
            CsrGraph::from_unit_edges(5, Direction::Undirected, &[(0, 1), (2, 3), (3, 4), (2, 4)])
                .unwrap();
        let d = dist_of(&g);
        let classic = closeness_centrality(&d, Normalization::Classic);
        let wf = closeness_centrality(&d, Normalization::WassermanFaust);
        // Classic gives both components perfect scores (distance-1 stars).
        assert!((classic[0] - 1.0).abs() < 1e-12);
        assert!((classic[2] - 1.0).abs() < 1e-12);
        // Wasserman–Faust ranks the larger component higher.
        assert!(wf[2] > wf[0]);
    }

    #[test]
    fn top_k_breaks_ties_by_id_and_clamps() {
        let scores = [0.5, 0.9, 0.5, 0.9];
        assert_eq!(top_k(&scores, 3), vec![1, 3, 0]);
        assert_eq!(top_k(&scores, 100).len(), 4);
        assert!(top_k(&[], 3).is_empty());
    }
}
