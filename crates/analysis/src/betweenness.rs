//! Betweenness centrality (Brandes' algorithm) and local structure
//! metrics (clustering coefficient, degree assortativity).
//!
//! Betweenness is the canonical "which vertices relay shortest paths"
//! question — precisely the intuition behind the paper's degree-ordering
//! heuristic (§2.2: high-degree vertices "could be intermediate vertices
//! of shortest paths of other vertices in high probability"). Computing it
//! lets the tests *quantify* that claim on scale-free replicas.
//!
//! Brandes' algorithm is used (unit weights, BFS-based), parallelized over
//! sources with per-thread partial score arrays — the same
//! source-decomposition strategy as ParAPSP itself.

use parapsp_graph::CsrGraph;
use parapsp_parfor::{PerThread, Schedule, ThreadPool};

/// Per-source scratch for Brandes' accumulation.
struct BrandesWorkspace {
    /// BFS distance from the current source (-1 = unvisited).
    dist: Vec<i32>,
    /// Number of shortest paths from the source.
    sigma: Vec<f64>,
    /// Dependency accumulator.
    delta: Vec<f64>,
    /// Vertices in non-decreasing BFS distance order.
    order: Vec<u32>,
    /// BFS frontier queue.
    queue: std::collections::VecDeque<u32>,
    /// Partial betweenness scores owned by this thread.
    partial: Vec<f64>,
}

impl BrandesWorkspace {
    fn new(n: usize) -> Self {
        BrandesWorkspace {
            dist: vec![-1; n],
            sigma: vec![0.0; n],
            delta: vec![0.0; n],
            order: Vec::with_capacity(n),
            queue: std::collections::VecDeque::new(),
            partial: vec![0.0; n],
        }
    }

    fn accumulate_source(&mut self, graph: &CsrGraph, s: u32) {
        self.dist.fill(-1);
        self.sigma.fill(0.0);
        self.delta.fill(0.0);
        self.order.clear();

        self.dist[s as usize] = 0;
        self.sigma[s as usize] = 1.0;
        self.queue.push_back(s);
        while let Some(u) = self.queue.pop_front() {
            self.order.push(u);
            let du = self.dist[u as usize];
            for &v in graph.neighbors(u) {
                let v = v as usize;
                if self.dist[v] < 0 {
                    self.dist[v] = du + 1;
                    self.queue.push_back(v as u32);
                }
                if self.dist[v] == du + 1 {
                    self.sigma[v] += self.sigma[u as usize];
                }
            }
        }
        // Dependency accumulation in reverse BFS order.
        for &w in self.order.iter().rev() {
            let w = w as usize;
            let coeff = (1.0 + self.delta[w]) / self.sigma[w];
            let dw = self.dist[w];
            for &v in graph.neighbors(w as u32) {
                let v = v as usize;
                // v is a predecessor of w iff dist[v] + 1 == dist[w]; for
                // undirected graphs the neighbor scan covers all
                // predecessors. (Directed graphs need the transpose; see
                // `betweenness_centrality`.)
                if self.dist[v] >= 0 && self.dist[v] + 1 == dw {
                    self.delta[v] += self.sigma[v] * coeff;
                }
            }
            if w != s as usize {
                self.partial[w] += self.delta[w];
            }
        }
    }
}

/// Betweenness centrality of every vertex for **unit-weight undirected**
/// graphs, computed with Brandes' algorithm parallelized over sources.
///
/// Scores follow the standard convention: each undirected pair is counted
/// twice (once per ordered pair), as in Brandes' original formulation; for
/// the usual undirected normalization divide by 2.
///
/// # Panics
///
/// Panics on directed graphs (the predecessor scan would need reverse
/// adjacency; run it on `graph.transpose()`-augmented data instead).
pub fn betweenness_centrality(graph: &CsrGraph, pool: &ThreadPool) -> Vec<f64> {
    assert!(
        !graph.direction().is_directed(),
        "betweenness_centrality expects an undirected graph"
    );
    let n = graph.vertex_count();
    let locals: PerThread<Option<BrandesWorkspace>> = PerThread::new(pool.num_threads());
    pool.parallel_for(n, Schedule::dynamic_cyclic(), |tid, s| {
        // SAFETY: each pool thread touches only its own slot.
        let slot = unsafe { locals.get_mut(tid) };
        let ws = slot.get_or_insert_with(|| BrandesWorkspace::new(n));
        ws.accumulate_source(graph, s as u32);
    });
    let mut scores = vec![0.0f64; n];
    for ws in locals.into_inner().into_iter().flatten() {
        for (total, partial) in scores.iter_mut().zip(&ws.partial) {
            *total += partial;
        }
    }
    scores
}

/// Local clustering coefficient of every vertex: the fraction of a
/// vertex's neighbor pairs that are themselves connected. Degree < 2
/// yields 0.
pub fn clustering_coefficients(graph: &CsrGraph) -> Vec<f64> {
    let n = graph.vertex_count();
    // Sorted adjacency copies make pair membership O(log d).
    let sorted: Vec<Vec<u32>> = (0..n as u32)
        .map(|v| {
            let mut adj: Vec<u32> = graph.neighbors(v).to_vec();
            adj.sort_unstable();
            adj.dedup();
            adj
        })
        .collect();
    (0..n)
        .map(|v| {
            let adj = &sorted[v];
            let d = adj.len();
            if d < 2 {
                return 0.0;
            }
            let mut closed = 0usize;
            for (i, &a) in adj.iter().enumerate() {
                for &b in &adj[i + 1..] {
                    if sorted[a as usize].binary_search(&b).is_ok() {
                        closed += 1;
                    }
                }
            }
            2.0 * closed as f64 / (d * (d - 1)) as f64
        })
        .collect()
}

/// Global (average) clustering coefficient.
pub fn average_clustering(graph: &CsrGraph) -> f64 {
    let coeffs = clustering_coefficients(graph);
    if coeffs.is_empty() {
        return 0.0;
    }
    coeffs.iter().sum::<f64>() / coeffs.len() as f64
}

/// Degree assortativity (Pearson correlation of degrees across edges).
/// Negative for the paper's social-network replicas (hubs connect to
/// leaves), near zero for Erdős–Rényi.
pub fn degree_assortativity(graph: &CsrGraph) -> f64 {
    let degs: Vec<f64> = (0..graph.vertex_count() as u32)
        .map(|v| graph.out_degree(v) as f64)
        .collect();
    let mut sum_xy = 0.0;
    let mut sum_x = 0.0;
    let mut sum_x2 = 0.0;
    let mut count = 0.0f64;
    for (u, v, _) in graph.arcs() {
        let (x, y) = (degs[u as usize], degs[v as usize]);
        sum_xy += x * y;
        sum_x += x + y;
        sum_x2 += x * x + y * y;
        count += 2.0;
    }
    if count == 0.0 {
        return 0.0;
    }
    let mean = sum_x / count;
    let var = sum_x2 / count - mean * mean;
    if var.abs() < f64::EPSILON {
        return 0.0;
    }
    (sum_xy * 2.0 / count - mean * mean) / var
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_graph::generate::{
        barabasi_albert, complete_graph, cycle_graph, path_graph, star_graph, WeightSpec,
    };
    use parapsp_graph::Direction;

    #[test]
    fn star_hub_carries_all_betweenness() {
        let g = star_graph(10);
        let pool = ThreadPool::new(3);
        let b = betweenness_centrality(&g, &pool);
        // Hub relays all 9*8 ordered leaf pairs; leaves relay nothing.
        assert!((b[0] - 72.0).abs() < 1e-9, "hub score {}", b[0]);
        assert!(b[1..].iter().all(|&x| x.abs() < 1e-9));
    }

    #[test]
    fn path_graph_betweenness_is_exact() {
        // Path 0-1-2-3: vertex 1 relays (0,2), (0,3), (2,0), (3,0) → 4;
        // by symmetry vertex 2 too.
        let g = path_graph(4, Direction::Undirected);
        let pool = ThreadPool::new(2);
        let b = betweenness_centrality(&g, &pool);
        assert!((b[0]).abs() < 1e-9);
        assert!((b[1] - 4.0).abs() < 1e-9, "{b:?}");
        assert!((b[2] - 4.0).abs() < 1e-9);
        assert!((b[3]).abs() < 1e-9);
    }

    #[test]
    fn equal_path_splitting_is_fractional() {
        // Cycle of 4: two shortest paths between opposite corners, each
        // midpoint gets half credit per ordered pair → 2 * 0.5 = 1.0.
        let g = cycle_graph(4, Direction::Undirected);
        let pool = ThreadPool::new(2);
        let b = betweenness_centrality(&g, &pool);
        for &score in &b {
            assert!((score - 1.0).abs() < 1e-9, "{b:?}");
        }
    }

    #[test]
    fn thread_count_does_not_change_scores() {
        let g = barabasi_albert(300, 3, WeightSpec::Unit, 4).unwrap();
        let b1 = betweenness_centrality(&g, &ThreadPool::new(1));
        let b4 = betweenness_centrality(&g, &ThreadPool::new(4));
        for (a, b) in b1.iter().zip(&b4) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn hubs_dominate_betweenness_on_scale_free_graphs() {
        // The paper's core heuristic, quantified: the top-betweenness
        // vertex should be among the highest-degree vertices.
        let g = barabasi_albert(500, 3, WeightSpec::Unit, 9).unwrap();
        let pool = ThreadPool::new(4);
        let b = betweenness_centrality(&g, &pool);
        let top_b = (0..500u32).max_by(|&x, &y| b[x as usize].total_cmp(&b[y as usize])).unwrap();
        let mut degrees: Vec<u32> = (0..500u32).map(|v| g.out_degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            g.out_degree(top_b) >= degrees[25],
            "top betweenness vertex has degree {} (top-5% cut {})",
            g.out_degree(top_b),
            degrees[25]
        );
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn directed_graph_rejected() {
        let g = cycle_graph(4, Direction::Directed);
        let _ = betweenness_centrality(&g, &ThreadPool::new(1));
    }

    #[test]
    fn clustering_known_values() {
        assert!(clustering_coefficients(&complete_graph(5))
            .iter()
            .all(|&c| (c - 1.0).abs() < 1e-12));
        assert!(clustering_coefficients(&path_graph(5, Direction::Undirected))
            .iter()
            .all(|&c| c == 0.0));
        assert_eq!(average_clustering(&complete_graph(4)), 1.0);
        // Triangle with a pendant: pendant 0, triangle vertices mixed.
        let g = parapsp_graph::CsrGraph::from_unit_edges(
            4,
            Direction::Undirected,
            &[(0, 1), (1, 2), (2, 3), (1, 3)],
        )
        .unwrap();
        let c = clustering_coefficients(&g);
        assert_eq!(c[0], 0.0); // degree 1
        assert!((c[1] - 1.0 / 3.0).abs() < 1e-12); // pairs: (0,2),(0,3),(2,3) → 1 closed
        assert!((c[2] - 1.0).abs() < 1e-12);
        assert!((c[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn assortativity_signs() {
        // Star: maximally disassortative.
        let star = star_graph(20);
        assert!(degree_assortativity(&star) < -0.9);
        // Cycle: all degrees equal → defined as 0 here (zero variance).
        let cyc = cycle_graph(10, Direction::Undirected);
        assert_eq!(degree_assortativity(&cyc), 0.0);
        // BA graphs are disassortative-to-neutral.
        let ba = barabasi_albert(800, 3, WeightSpec::Unit, 7).unwrap();
        let r = degree_assortativity(&ba);
        assert!(r < 0.15, "BA assortativity {r}");
        // Empty graph.
        let empty = parapsp_graph::CsrGraph::from_unit_edges(3, Direction::Undirected, &[]).unwrap();
        assert_eq!(degree_assortativity(&empty), 0.0);
    }
}
