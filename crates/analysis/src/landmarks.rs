//! Landmark-based distance estimation — complex-graph analysis when the
//! O(n²) matrix does not fit.
//!
//! The paper's future work targets "much larger graphs, which cannot be
//! handled on a commodity single machine" (§7). The standard
//! analysis-side answer is landmarks: pick k ≪ n vertices, compute only
//! their exact rows (O(k·n) memory, via the subset engine
//! [`parapsp_core::engine::SubsetEngine`]), and bound any pairwise
//! distance by triangulation:
//!
//! * upper bound: `min over landmarks l of d(u, l) + d(l, v)`,
//! * lower bound: `max over l of |d(l, u) − d(l, v)|` (undirected only).
//!
//! Picking landmarks by **descending degree** is the same scale-free
//! intuition as the paper's ordering optimization: hubs sit on many
//! shortest paths, so hub landmarks make tight estimators.

use parapsp_core::engine::{RunConfig, Runner, SubsetEngine};
use parapsp_core::subset::SubsetRows;
use parapsp_graph::{degree, CsrGraph, INF};
use parapsp_order::seq_bucket::seq_bucket_sort;

/// Exact rows for `sources` via the subset engine.
fn subset_rows(graph: &CsrGraph, sources: &[u32], threads: usize) -> SubsetRows {
    Runner::new(RunConfig::subset(threads)).run(SubsetEngine::new(sources.to_vec()), graph)
}

/// How landmark vertices are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LandmarkStrategy {
    /// The k highest-degree vertices (the hubs — best for scale-free
    /// graphs, same reasoning as the paper's §2.2).
    HighestDegree,
    /// Deterministic spread: every ⌈n/k⌉-th vertex by id (a degree-blind
    /// baseline to compare against).
    Stride,
}

/// A landmark index over an **undirected** graph: exact rows for k chosen
/// landmarks plus estimation helpers.
#[derive(Debug)]
pub struct LandmarkIndex {
    rows: SubsetRows,
}

impl LandmarkIndex {
    /// Builds the index: chooses `k` landmarks by `strategy` and computes
    /// their exact SSSP rows with the subset APSP engine.
    ///
    /// # Panics
    ///
    /// Panics on directed graphs (triangulation needs symmetric
    /// distances) and when `k` is 0 or exceeds the vertex count.
    pub fn build(
        graph: &CsrGraph,
        k: usize,
        strategy: LandmarkStrategy,
        threads: usize,
    ) -> LandmarkIndex {
        assert!(
            !graph.direction().is_directed(),
            "landmark triangulation requires an undirected graph"
        );
        let n = graph.vertex_count();
        assert!(
            k > 0 && k <= n,
            "need 1 <= k <= n landmarks (k = {k}, n = {n})"
        );
        let landmarks: Vec<u32> = match strategy {
            LandmarkStrategy::HighestDegree => {
                let degrees = degree::out_degrees(graph);
                seq_bucket_sort(&degrees).into_iter().take(k).collect()
            }
            LandmarkStrategy::Stride => {
                let stride = n.div_ceil(k);
                (0..n as u32).step_by(stride).take(k).collect()
            }
        };
        LandmarkIndex {
            rows: subset_rows(graph, &landmarks, threads),
        }
    }

    /// The chosen landmark vertices.
    pub fn landmarks(&self) -> &[u32] {
        self.rows.sources()
    }

    /// Upper bound on `d(u, v)`: the best two-hop route through a
    /// landmark. [`INF`] when no landmark reaches both.
    pub fn upper_bound(&self, u: u32, v: u32) -> u32 {
        if u == v {
            return 0;
        }
        let mut best = INF;
        for i in 0..self.landmarks().len() {
            let row = self.rows.row(i);
            let via = row[u as usize].saturating_add(row[v as usize]);
            best = best.min(via);
        }
        best
    }

    /// Lower bound on `d(u, v)` from the reverse triangle inequality.
    pub fn lower_bound(&self, u: u32, v: u32) -> u32 {
        if u == v {
            return 0;
        }
        let mut best = 0u32;
        for i in 0..self.landmarks().len() {
            let row = self.rows.row(i);
            let (du, dv) = (row[u as usize], row[v as usize]);
            if du != INF && dv != INF {
                best = best.max(du.abs_diff(dv));
            }
        }
        best
    }

    /// Point estimate: the upper bound (exact whenever some shortest
    /// `u–v` path passes through a landmark — always true when `u` or `v`
    /// *is* a landmark).
    pub fn estimate(&self, u: u32, v: u32) -> u32 {
        self.upper_bound(u, v)
    }

    /// Mean relative overestimate of `estimate` against an exact row
    /// oracle, over all finite pairs reachable from `sample_sources`.
    /// Used by tests and the example to report estimator quality.
    pub fn mean_relative_error(
        &self,
        graph: &CsrGraph,
        sample_sources: &[u32],
        threads: usize,
    ) -> f64 {
        let exact = subset_rows(graph, sample_sources, threads);
        let mut total_err = 0.0f64;
        let mut count = 0usize;
        for (i, &s) in sample_sources.iter().enumerate() {
            let row = exact.row(i);
            for (v, &d) in row.iter().enumerate() {
                if v as u32 == s || d == INF {
                    continue;
                }
                let est = self.estimate(s, v as u32);
                debug_assert!(est >= d, "upper bound below exact distance");
                total_err += (est - d) as f64 / d as f64;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total_err / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_core::baselines::apsp_dijkstra;
    use parapsp_graph::generate::{barabasi_albert, star_graph, WeightSpec};

    #[test]
    fn bounds_bracket_the_exact_distance() {
        let g = barabasi_albert(300, 3, WeightSpec::Unit, 71).unwrap();
        let exact = apsp_dijkstra(&g);
        let index = LandmarkIndex::build(&g, 12, LandmarkStrategy::HighestDegree, 3);
        assert_eq!(index.landmarks().len(), 12);
        for u in (0..300u32).step_by(29) {
            for v in (0..300u32).step_by(31) {
                let d = exact.get(u, v);
                let lo = index.lower_bound(u, v);
                let hi = index.upper_bound(u, v);
                assert!(lo <= d, "lower bound {lo} above exact {d} ({u}, {v})");
                assert!(hi >= d, "upper bound {hi} below exact {d} ({u}, {v})");
            }
        }
    }

    #[test]
    fn landmark_pairs_are_exact() {
        let g = barabasi_albert(200, 3, WeightSpec::Unit, 72).unwrap();
        let exact = apsp_dijkstra(&g);
        let index = LandmarkIndex::build(&g, 8, LandmarkStrategy::HighestDegree, 2);
        for &l in index.landmarks() {
            for v in 0..200u32 {
                assert_eq!(index.estimate(l, v), exact.get(l, v));
            }
        }
    }

    #[test]
    fn star_hub_landmark_is_perfect() {
        let g = star_graph(50);
        let index = LandmarkIndex::build(&g, 1, LandmarkStrategy::HighestDegree, 2);
        assert_eq!(index.landmarks(), &[0]); // the hub
        let exact = apsp_dijkstra(&g);
        for u in 0..50u32 {
            for v in 0..50u32 {
                assert_eq!(index.estimate(u, v), exact.get(u, v));
            }
        }
    }

    #[test]
    fn hub_landmarks_beat_stride_landmarks_on_scale_free_graphs() {
        let g = barabasi_albert(500, 3, WeightSpec::Unit, 73).unwrap();
        let samples: Vec<u32> = (0..500).step_by(37).collect();
        let hubs = LandmarkIndex::build(&g, 10, LandmarkStrategy::HighestDegree, 3);
        let stride = LandmarkIndex::build(&g, 10, LandmarkStrategy::Stride, 3);
        let hub_err = hubs.mean_relative_error(&g, &samples, 3);
        let stride_err = stride.mean_relative_error(&g, &samples, 3);
        assert!(
            hub_err <= stride_err,
            "hub landmarks ({hub_err:.3}) should not lose to stride ({stride_err:.3})"
        );
        assert!(hub_err < 0.35, "hub estimator error too high: {hub_err:.3}");
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn directed_graph_rejected() {
        let g = parapsp_graph::generate::cycle_graph(5, parapsp_graph::Direction::Directed);
        let _ = LandmarkIndex::build(&g, 2, LandmarkStrategy::HighestDegree, 1);
    }

    #[test]
    #[should_panic(expected = "1 <= k <= n")]
    fn zero_landmarks_rejected() {
        let g = star_graph(5);
        let _ = LandmarkIndex::build(&g, 0, LandmarkStrategy::HighestDegree, 1);
    }
}
