//! Path-length statistics derived from a distance matrix.

use parapsp_core::DistanceMatrix;
use parapsp_graph::INF;

/// Per-vertex eccentricity: the greatest finite distance from `v` to any
/// vertex it can reach. Vertices that reach nothing get 0.
pub fn eccentricities(dist: &DistanceMatrix) -> Vec<u32> {
    dist.rows()
        .map(|(u, row)| {
            row.iter()
                .enumerate()
                .filter(|&(v, &d)| v as u32 != u && d != INF)
                .map(|(_, &d)| d)
                .max()
                .unwrap_or(0)
        })
        .collect()
}

/// Aggregate shortest-path statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStats {
    /// Largest eccentricity over vertices that reach at least one other
    /// vertex (∞-pairs are ignored, the convention for disconnected
    /// complex networks).
    pub diameter: u32,
    /// Smallest non-zero eccentricity (0 when no vertex reaches another).
    pub radius: u32,
    /// Mean distance over all finite ordered pairs `(u, v)`, `u != v`.
    pub average_path_length: f64,
    /// Number of finite ordered pairs, `u != v`.
    pub reachable_pairs: usize,
    /// Total ordered pairs `n (n - 1)`.
    pub total_pairs: usize,
}

impl PathStats {
    /// Fraction of ordered pairs that are connected.
    pub fn connectivity(&self) -> f64 {
        if self.total_pairs == 0 {
            return 0.0;
        }
        self.reachable_pairs as f64 / self.total_pairs as f64
    }
}

/// Computes [`PathStats`] from a distance matrix.
pub fn path_stats(dist: &DistanceMatrix) -> PathStats {
    let n = dist.n();
    let mut sum: u128 = 0;
    let mut reachable = 0usize;
    let mut diameter = 0u32;
    let mut radius = u32::MAX;
    for (u, row) in dist.rows() {
        let mut ecc = 0u32;
        let mut reaches_any = false;
        for (v, &d) in row.iter().enumerate() {
            if v as u32 == u || d == INF {
                continue;
            }
            sum += d as u128;
            reachable += 1;
            reaches_any = true;
            ecc = ecc.max(d);
        }
        if reaches_any {
            diameter = diameter.max(ecc);
            radius = radius.min(ecc);
        }
    }
    PathStats {
        diameter,
        radius: if radius == u32::MAX { 0 } else { radius },
        average_path_length: if reachable > 0 {
            sum as f64 / reachable as f64
        } else {
            0.0
        },
        reachable_pairs: reachable,
        total_pairs: n.saturating_sub(1) * n,
    }
}

/// Histogram of finite pairwise distances: `histogram[d]` = number of
/// ordered pairs at distance exactly `d` (`d >= 1`). Index 0 is unused
/// (self-distances are excluded).
pub fn distance_distribution(dist: &DistanceMatrix) -> Vec<usize> {
    let mut hist: Vec<usize> = Vec::new();
    for (u, row) in dist.rows() {
        for (v, &d) in row.iter().enumerate() {
            if v as u32 == u || d == INF {
                continue;
            }
            let d = d as usize;
            if hist.len() <= d {
                hist.resize(d + 1, 0);
            }
            hist[d] += 1;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_core::engine::{RunConfig, Runner, SeqEngine};
    use parapsp_graph::generate::{cycle_graph, path_graph, star_graph};
    use parapsp_graph::{CsrGraph, Direction};

    fn dist_of(g: &CsrGraph) -> DistanceMatrix {
        Runner::new(RunConfig::seq_basic())
            .run(SeqEngine::ordered(), g)
            .dist
    }

    #[test]
    fn path_graph_stats() {
        let d = dist_of(&path_graph(5, Direction::Undirected));
        let stats = path_stats(&d);
        assert_eq!(stats.diameter, 4);
        assert_eq!(stats.radius, 2); // middle vertex
        assert_eq!(stats.reachable_pairs, 20);
        assert_eq!(stats.total_pairs, 20);
        assert!((stats.connectivity() - 1.0).abs() < 1e-12);
        assert_eq!(eccentricities(&d), vec![4, 3, 2, 3, 4]);
    }

    #[test]
    fn star_graph_stats() {
        let d = dist_of(&star_graph(9));
        let stats = path_stats(&d);
        assert_eq!(stats.diameter, 2);
        assert_eq!(stats.radius, 1); // the hub
                                     // 16 hub-leaf pairs at distance 1, 56 leaf-leaf pairs at distance 2.
        let hist = distance_distribution(&d);
        assert_eq!(hist[1], 16);
        assert_eq!(hist[2], 56);
    }

    #[test]
    fn cycle_has_uniform_eccentricity() {
        let d = dist_of(&cycle_graph(8, Direction::Undirected));
        assert!(eccentricities(&d).iter().all(|&e| e == 4));
        let stats = path_stats(&d);
        assert_eq!(stats.diameter, 4);
        assert_eq!(stats.radius, 4);
    }

    #[test]
    fn disconnected_pairs_are_ignored() {
        let g = CsrGraph::from_unit_edges(4, Direction::Undirected, &[(0, 1), (2, 3)]).unwrap();
        let stats = path_stats(&dist_of(&g));
        assert_eq!(stats.diameter, 1);
        assert_eq!(stats.reachable_pairs, 4);
        assert_eq!(stats.total_pairs, 12);
        assert!(stats.connectivity() < 0.5);
    }

    #[test]
    fn directed_asymmetry() {
        let g = CsrGraph::from_unit_edges(3, Direction::Directed, &[(0, 1), (1, 2)]).unwrap();
        let d = dist_of(&g);
        let stats = path_stats(&d);
        assert_eq!(stats.diameter, 2); // 0 -> 2
        assert_eq!(stats.reachable_pairs, 3); // (0,1), (0,2), (1,2)
        assert_eq!(eccentricities(&d), vec![2, 1, 0]);
    }

    #[test]
    fn empty_matrix() {
        let stats = path_stats(&DistanceMatrix::new_infinite(0));
        assert_eq!(stats.diameter, 0);
        assert_eq!(stats.radius, 0);
        assert_eq!(stats.connectivity(), 0.0);
        assert!(distance_distribution(&DistanceMatrix::new_infinite(0)).is_empty());
    }
}
