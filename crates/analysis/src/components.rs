//! Connectivity structure: union-find components on graphs, and
//! reachability summaries on distance matrices.

use parapsp_core::DistanceMatrix;
use parapsp_graph::{CsrGraph, INF};

/// Weighted-union + path-halving union-find.
#[derive(Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `v`'s set.
    pub fn find(&mut self, mut v: u32) -> u32 {
        while self.parent[v as usize] != v {
            let grandparent = self.parent[self.parent[v as usize] as usize];
            self.parent[v as usize] = grandparent;
            v = grandparent;
        }
        v
    }

    /// Merges the sets of `a` and `b`; returns true when they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of `v`'s set.
    pub fn component_size(&mut self, v: u32) -> u32 {
        let root = self.find(v);
        self.size[root as usize]
    }
}

/// Weakly connected components of a graph (edge direction ignored).
/// Returns `(component_id_per_vertex, component_count)` with ids densified
/// in order of first appearance.
pub fn weakly_connected_components(graph: &CsrGraph) -> (Vec<u32>, usize) {
    let n = graph.vertex_count();
    let mut uf = UnionFind::new(n);
    for (u, v, _) in graph.arcs() {
        uf.union(u, v);
    }
    let mut ids = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        let root = uf.find(v);
        if ids[root as usize] == u32::MAX {
            ids[root as usize] = next;
            next += 1;
        }
        ids[v as usize] = ids[root as usize];
    }
    (ids, next as usize)
}

/// Per-vertex out-reach: how many other vertices each vertex can reach,
/// read directly off a distance matrix.
pub fn reach_counts(dist: &DistanceMatrix) -> Vec<usize> {
    dist.rows()
        .map(|(u, row)| {
            row.iter()
                .enumerate()
                .filter(|&(v, &d)| v as u32 != u && d != INF)
                .count()
        })
        .collect()
}

/// True when every ordered pair of distinct vertices has a finite distance.
pub fn is_strongly_connected(dist: &DistanceMatrix) -> bool {
    let n = dist.n();
    dist.reachable_pairs() == n.saturating_sub(1) * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_core::engine::{RunConfig, Runner, SeqEngine};
    use parapsp_graph::{CsrGraph, Direction};

    fn dist_of(g: &CsrGraph) -> DistanceMatrix {
        Runner::new(RunConfig::seq_basic())
            .run(SeqEngine::ordered(), g)
            .dist
    }

    #[test]
    fn union_find_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already merged
        assert_eq!(uf.component_count(), 3);
        assert_eq!(uf.component_size(2), 3);
        assert_eq!(uf.component_size(4), 1);
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
    }

    #[test]
    fn wcc_ignores_direction() {
        let g =
            CsrGraph::from_unit_edges(5, Direction::Directed, &[(0, 1), (2, 1), (3, 4)]).unwrap();
        let (ids, count) = weakly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[1], ids[2]);
        assert_eq!(ids[3], ids[4]);
        assert_ne!(ids[0], ids[3]);
    }

    #[test]
    fn reachability_from_matrix() {
        let g = CsrGraph::from_unit_edges(3, Direction::Directed, &[(0, 1), (1, 2)]).unwrap();
        let d = dist_of(&g);
        assert_eq!(reach_counts(&d), vec![2, 1, 0]);
        assert!(!is_strongly_connected(&d));

        let cyc =
            CsrGraph::from_unit_edges(3, Direction::Directed, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let d = dist_of(&cyc);
        assert!(is_strongly_connected(&d));
        assert_eq!(reach_counts(&d), vec![2, 2, 2]);
    }
}
