//! Mesoscale structure metrics: average-neighbor-degree spectrum and the
//! rich-club coefficient.
//!
//! Both quantify *how* the hubs of a complex network sit in its topology —
//! the structural facts behind the paper's claim that "the connectivity of
//! the network is dominated by those high-degree vertices" (§2.2).

use std::collections::HashSet;

use parapsp_graph::{degree, CsrGraph};

/// Average degree of each vertex's neighbors (`k_nn` per vertex). Isolated
/// vertices score 0.
pub fn average_neighbor_degree(graph: &CsrGraph) -> Vec<f64> {
    let degrees = degree::out_degrees(graph);
    (0..graph.vertex_count() as u32)
        .map(|v| {
            let neighbors = graph.neighbors(v);
            if neighbors.is_empty() {
                return 0.0;
            }
            neighbors
                .iter()
                .map(|&u| degrees[u as usize] as f64)
                .sum::<f64>()
                / neighbors.len() as f64
        })
        .collect()
}

/// `k_nn(k)` spectrum: mean [`average_neighbor_degree`] over vertices of
/// degree `k`, as `(k, knn)` pairs for the degrees present. A decreasing
/// spectrum = disassortative (hubs attach to leaves), the typical shape of
/// the paper's social/information networks.
pub fn knn_spectrum(graph: &CsrGraph) -> Vec<(u32, f64)> {
    let degrees = degree::out_degrees(graph);
    let knn = average_neighbor_degree(graph);
    let max = degrees.iter().copied().max().unwrap_or(0) as usize;
    let mut sums = vec![0.0f64; max + 1];
    let mut counts = vec![0usize; max + 1];
    for (v, &d) in degrees.iter().enumerate() {
        sums[d as usize] += knn[v];
        counts[d as usize] += 1;
    }
    (0..=max)
        .filter(|&d| counts[d] > 0 && d > 0)
        .map(|d| (d as u32, sums[d] / counts[d] as f64))
        .collect()
}

/// Rich-club coefficient φ(k): the edge density among vertices of degree
/// `> k`. φ(k) near 1 means the hubs form a near-clique — the regime where
/// early hub rows are maximally reusable.
///
/// Returns `None` when fewer than 2 vertices exceed degree `k`.
pub fn rich_club_coefficient(graph: &CsrGraph, k: u32) -> Option<f64> {
    let degrees = degree::out_degrees(graph);
    let club: HashSet<u32> = (0..graph.vertex_count() as u32)
        .filter(|&v| degrees[v as usize] > k)
        .collect();
    let size = club.len();
    if size < 2 {
        return None;
    }
    // Count arcs inside the club once per logical edge.
    let mut internal = 0usize;
    for (u, v, _) in graph.logical_edges() {
        if u != v && club.contains(&u) && club.contains(&v) {
            internal += 1;
        }
    }
    let possible = size * (size - 1) / 2;
    let possible = if graph.direction().is_directed() {
        possible * 2
    } else {
        possible
    };
    Some(internal as f64 / possible as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_graph::generate::{barabasi_albert, complete_graph, star_graph, WeightSpec};
    use parapsp_graph::{CsrGraph, Direction};

    #[test]
    fn neighbor_degree_on_star() {
        let g = star_graph(6);
        let knn = average_neighbor_degree(&g);
        assert_eq!(knn[0], 1.0); // hub's neighbors are leaves
        for leaf_knn in &knn[1..6] {
            assert_eq!(*leaf_knn, 5.0); // each leaf sees only the hub
        }
    }

    #[test]
    fn spectrum_is_disassortative_on_star() {
        let g = star_graph(10);
        let spectrum = knn_spectrum(&g);
        // Degrees present: 1 (leaves, knn 9) and 9 (hub, knn 1).
        assert_eq!(spectrum, vec![(1, 9.0), (9, 1.0)]);
    }

    #[test]
    fn ba_spectrum_trends_downward() {
        let g = barabasi_albert(3000, 3, WeightSpec::Unit, 5).unwrap();
        let spectrum = knn_spectrum(&g);
        let low: f64 = spectrum.iter().take(3).map(|&(_, v)| v).sum::<f64>() / 3.0;
        let high: f64 = spectrum.iter().rev().take(3).map(|&(_, v)| v).sum::<f64>() / 3.0;
        assert!(
            high < low,
            "hubs should see lower-degree neighbors: low-deg knn {low:.1}, high-deg knn {high:.1}"
        );
    }

    #[test]
    fn rich_club_of_complete_graph_is_one() {
        let g = complete_graph(8);
        // All degrees are 7; club of degree > 3 is everyone, density 1.
        assert_eq!(rich_club_coefficient(&g, 3), Some(1.0));
        // Nobody exceeds degree 7.
        assert_eq!(rich_club_coefficient(&g, 7), None);
    }

    #[test]
    fn rich_club_counts_internal_edges_only() {
        // Two hubs (degree 3) joined to each other and two leaves each...
        // club(k=2) = {0, 1}, one internal edge, density 1.
        let g = CsrGraph::from_unit_edges(
            6,
            Direction::Undirected,
            &[(0, 1), (0, 2), (0, 3), (1, 4), (1, 5)],
        )
        .unwrap();
        assert_eq!(rich_club_coefficient(&g, 2), Some(1.0));
        // club(k=0) = everyone: 5 edges of 15 possible.
        assert_eq!(rich_club_coefficient(&g, 0), Some(5.0 / 15.0));
    }

    #[test]
    fn empty_and_isolated_inputs() {
        let g = CsrGraph::from_unit_edges(4, Direction::Undirected, &[]).unwrap();
        assert!(average_neighbor_degree(&g).iter().all(|&x| x == 0.0));
        assert!(knn_spectrum(&g).is_empty());
        assert_eq!(rich_club_coefficient(&g, 0), None);
    }
}
