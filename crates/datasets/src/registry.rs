//! The dataset registry: one spec per graph the paper evaluates on.

use parapsp_graph::generate::{barabasi_albert, scale_free_directed, WeightSpec};
use parapsp_graph::{CsrGraph, GraphError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-graph model used to replicate a dataset's structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphModel {
    /// Undirected Barabási–Albert with `m` edges per new vertex.
    BarabasiAlbert {
        /// Edges attached per new vertex (sets the average degree ≈ 2m).
        m: usize,
    },
    /// Directed scale-free: BA skeleton with randomized edge orientation
    /// and a fraction of reciprocal links.
    ScaleFreeDirected {
        /// Edges attached per new vertex in the BA skeleton.
        m: usize,
        /// Fraction of edges kept in both directions.
        reciprocity: f64,
    },
}

/// At what size to instantiate a replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// The paper's original vertex count — only safe for ordering-style
    /// experiments that never allocate the O(n²) matrix.
    OrderingFull,
    /// A fraction of the original vertex count (e.g. `0.1` for the default
    /// APSP scale; `0.1` of WordNet is ~14.6 k vertices → a 852 MB matrix).
    Fraction(f64),
    /// An explicit vertex count.
    Vertices(usize),
}

impl Scale {
    /// Resolves the scale against a spec's original size (min 64 vertices
    /// so every replica stays a meaningful graph).
    pub fn resolve(&self, paper_vertices: usize) -> usize {
        match *self {
            Scale::OrderingFull => paper_vertices,
            Scale::Fraction(f) => {
                assert!(f > 0.0 && f <= 1.0, "scale fraction {f} outside (0, 1]");
                ((paper_vertices as f64 * f) as usize).max(64)
            }
            Scale::Vertices(n) => n.max(64),
        }
    }
}

/// A replica specification: the paper's dataset identity plus the synthetic
/// model that stands in for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper's Table 2.
    pub name: &'static str,
    /// Directedness in the original dataset.
    pub directed: bool,
    /// Vertex count reported in Table 2.
    pub paper_vertices: usize,
    /// Edge count reported in Table 2.
    pub paper_edges: usize,
    /// The generative stand-in.
    pub model: GraphModel,
    /// Generator seed (fixed so every run sees the same replica).
    pub seed: u64,
}

impl DatasetSpec {
    /// Generates the replica at the requested scale.
    ///
    /// Vertex ids are randomly relabeled after generation: preferential
    /// attachment makes the oldest (lowest) ids the hubs, and without the
    /// shuffle the *unordered* APSP baseline would accidentally visit
    /// sources in near-descending degree order — erasing the very effect
    /// the paper measures. Real SNAP/KONECT ids carry no such correlation.
    pub fn generate(&self, scale: Scale) -> Result<CsrGraph, GraphError> {
        let n = scale.resolve(self.paper_vertices);
        let raw = match self.model {
            GraphModel::BarabasiAlbert { m } => {
                barabasi_albert(n, m, WeightSpec::Unit, self.seed)?
            }
            GraphModel::ScaleFreeDirected { m, reciprocity } => {
                scale_free_directed(n, m, reciprocity, WeightSpec::Unit, self.seed)?
            }
        };
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Fisher–Yates; `rand::seq::SliceRandom::shuffle` would do the same.
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        Ok(raw.relabel(&perm))
    }

    /// Average degree implied by Table 2 (arcs per vertex).
    pub fn paper_avg_degree(&self) -> f64 {
        let arcs = if self.directed {
            self.paper_edges as f64
        } else {
            2.0 * self.paper_edges as f64
        };
        arcs / self.paper_vertices as f64
    }
}

/// The five evaluation datasets of Table 2, in the paper's order.
///
/// The `m` parameters are chosen so the replica's average degree matches
/// Table 2: undirected `m ≈ E/V`; directed `m ≈ (E/V) / (1 + reciprocity)`
/// because reciprocal links contribute two arcs.
pub fn paper_datasets() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "ego-Twitter",
            directed: true,
            paper_vertices: 81_306,
            paper_edges: 1_768_149,
            // E/V ≈ 21.7 arcs; with 50 % reciprocity, m ≈ 14.
            model: GraphModel::ScaleFreeDirected {
                m: 14,
                reciprocity: 0.5,
            },
            seed: 0xE607,
        },
        DatasetSpec {
            name: "Livemocha",
            directed: false,
            paper_vertices: 104_103,
            paper_edges: 2_193_083,
            model: GraphModel::BarabasiAlbert { m: 21 },
            seed: 0x11FE,
        },
        DatasetSpec {
            name: "Flickr",
            directed: false,
            paper_vertices: 105_938,
            paper_edges: 2_316_948,
            model: GraphModel::BarabasiAlbert { m: 22 },
            seed: 0xF11C,
        },
        DatasetSpec {
            name: "WordNet",
            directed: false,
            paper_vertices: 146_005,
            paper_edges: 656_999,
            model: GraphModel::BarabasiAlbert { m: 4 },
            seed: 0x0D0D,
        },
        DatasetSpec {
            name: "sx-superuser",
            directed: true,
            paper_vertices: 194_085,
            paper_edges: 1_443_339,
            // E/V ≈ 7.4 arcs; with 20 % reciprocity, m ≈ 6.
            model: GraphModel::ScaleFreeDirected {
                m: 6,
                reciprocity: 0.2,
            },
            seed: 0x5005,
        },
    ]
}

/// ca-HepPh, the small graph used for the scheduling-scheme study (Fig. 1):
/// 12,008 vertices, 118,521 edges, undirected.
pub fn ca_hepph() -> DatasetSpec {
    DatasetSpec {
        name: "ca-HepPh",
        directed: false,
        paper_vertices: 12_008,
        paper_edges: 118_521,
        model: GraphModel::BarabasiAlbert { m: 10 },
        seed: 0xCA9E,
    }
}

/// The large graphs used only for the ordering-procedure scaling test in
/// §4.3 (soc-Pokec, soc-LiveJournal1). Only their degree arrays are ever
/// materialized at full scale.
pub fn ordering_datasets() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "soc-Pokec",
            directed: true,
            paper_vertices: 1_632_803,
            paper_edges: 30_622_564,
            model: GraphModel::ScaleFreeDirected {
                m: 12,
                reciprocity: 0.5,
            },
            seed: 0x90CE,
        },
        DatasetSpec {
            name: "soc-LiveJournal1",
            directed: true,
            paper_vertices: 4_847_571,
            paper_edges: 68_993_773,
            model: GraphModel::ScaleFreeDirected {
                m: 9,
                reciprocity: 0.5,
            },
            seed: 0x11E1,
        },
    ]
}

/// Finds a spec by (case-insensitive) name across all registries.
pub fn find(name: &str) -> Option<DatasetSpec> {
    paper_datasets()
        .into_iter()
        .chain(std::iter::once(ca_hepph()))
        .chain(ordering_datasets())
        .find(|spec| spec.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_graph::degree;

    #[test]
    fn registry_matches_table2() {
        let specs = paper_datasets();
        assert_eq!(specs.len(), 5);
        let names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["ego-Twitter", "Livemocha", "Flickr", "WordNet", "sx-superuser"]
        );
        let wordnet = &specs[3];
        assert_eq!(wordnet.paper_vertices, 146_005);
        assert_eq!(wordnet.paper_edges, 656_999);
        assert!(!wordnet.directed);
    }

    #[test]
    fn scale_resolution() {
        assert_eq!(Scale::OrderingFull.resolve(1000), 1000);
        assert_eq!(Scale::Fraction(0.1).resolve(10_000), 1000);
        assert_eq!(Scale::Fraction(0.001).resolve(1000), 64); // floor
        assert_eq!(Scale::Vertices(500).resolve(1_000_000), 500);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn bad_fraction_panics() {
        let _ = Scale::Fraction(0.0).resolve(100);
    }

    #[test]
    fn replicas_have_matching_directedness_and_plausible_degree() {
        for spec in paper_datasets() {
            let g = spec.generate(Scale::Vertices(3000)).unwrap();
            assert_eq!(g.direction().is_directed(), spec.directed, "{}", spec.name);
            let avg = g.arc_count() as f64 / g.vertex_count() as f64;
            let target = spec.paper_avg_degree();
            assert!(
                (avg - target).abs() / target < 0.35,
                "{}: avg degree {avg:.1} vs paper {target:.1}",
                spec.name
            );
        }
    }

    #[test]
    fn replicas_are_scale_free() {
        let g = find("WordNet").unwrap().generate(Scale::Vertices(5000)).unwrap();
        let degs = degree::out_degrees(&g);
        let stats = degree::degree_stats(&degs).unwrap();
        assert!(stats.max as f64 > stats.mean * 8.0, "hub-dominated");
        assert!(stats.median as f64 <= stats.mean, "long tail");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = ca_hepph();
        let a = spec.generate(Scale::Vertices(800)).unwrap();
        let b = spec.generate(Scale::Vertices(800)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn find_is_case_insensitive_and_total() {
        assert!(find("wordnet").is_some());
        assert!(find("SOC-POKEC").is_some());
        assert!(find("ca-hepph").is_some());
        assert!(find("no-such-dataset").is_none());
    }

    #[test]
    fn avg_degree_accounts_for_direction() {
        let spec = find("ego-Twitter").unwrap();
        assert!((spec.paper_avg_degree() - 21.7).abs() < 0.2);
        let wordnet = find("WordNet").unwrap();
        assert!((wordnet.paper_avg_degree() - 9.0).abs() < 0.1);
    }
}
