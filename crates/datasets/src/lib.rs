//! Synthetic replicas of the paper's evaluation datasets (Table 2).
//!
//! The paper evaluates on real SNAP / KONECT graphs that cannot be bundled
//! here (licensing, size — the sx-superuser distance matrix alone needs
//! 160 GB). Every effect the paper measures depends on one structural
//! property: the **scale-free (power-law) degree distribution**. The
//! replicas therefore use seeded Barabási–Albert generation with the
//! original average degree and directedness, at a configurable scale:
//!
//! * [`Scale::Fraction`] — vertex counts reduced (default 1/10) so the O(n²)
//!   distance matrix fits a laptop;
//! * [`Scale::OrderingFull`] — the *original* vertex counts, for the
//!   ordering-procedure experiments that never allocate the matrix
//!   (Table 1, Figs. 4 and 6);
//! * [`Scale::Vertices`] — any vertex count.
//!
//! Real datasets can still be used: download the SNAP/KONECT file and load
//! it with [`parapsp_graph::io::read_edge_list_file`].

#![warn(missing_docs)]

pub mod registry;

pub use registry::{
    ca_hepph, find, ordering_datasets, paper_datasets, DatasetSpec, GraphModel, Scale,
};
