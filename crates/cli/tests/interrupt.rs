//! End-to-end interruption tests: drive the real `parapsp` binary as a
//! child process, stop it with a deadline or a SIGINT, and verify the
//! promised exit codes (124 / 130) and a loadable, resumable checkpoint.
#![cfg(unix)]

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use parapsp_core::persist;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_parapsp")
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join("parapsp-interrupt-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Generates (once) a BA graph big enough that a full APSP takes seconds —
/// room for a deadline or a signal to land mid-run.
fn big_graph(n: usize) -> String {
    let path = workdir().join(format!("ba-{n}.txt"));
    if !path.exists() {
        let status = Command::new(bin())
            .args([
                "generate",
                "--model",
                "ba",
                "--n",
                &n.to_string(),
                "--m",
                "3",
                "--seed",
                "7",
                "--out",
                path.to_str().unwrap(),
            ])
            .status()
            .expect("spawn parapsp generate");
        assert!(status.success());
    }
    path.to_string_lossy().into_owned()
}

#[test]
fn deadline_exits_124_with_resumable_checkpoint() {
    let graph = big_graph(4000);
    let ckpt = workdir().join("deadline.ckpt");
    std::fs::remove_file(&ckpt).ok();
    // The `run` alias is part of the contract.
    let output = Command::new(bin())
        .args([
            "run",
            &graph,
            "--deadline",
            "0.3",
            "--threads",
            "2",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("spawn parapsp run");
    assert_eq!(
        output.status.code(),
        Some(124),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("deadline exceeded"),
        "stderr must say why: {stderr}"
    );
    let cp = persist::load_checkpoint(ckpt.to_str().unwrap()).expect("checkpoint must load");
    assert_eq!(cp.n(), 4000);
    assert!(!cp.is_complete(), "a 0.3 s deadline cannot finish n=4000");
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn sigint_exits_130_with_loadable_checkpoint() {
    let graph = big_graph(4000);
    let ckpt = workdir().join("sigint.ckpt");
    std::fs::remove_file(&ckpt).ok();
    let mut child = Command::new(bin())
        .args([
            "run",
            &graph,
            "--threads",
            "2",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn parapsp run");
    // Let it load the graph and start sweeping, then interrupt it.
    std::thread::sleep(Duration::from_millis(700));
    let status = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("send SIGINT");
    assert!(status.success());
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        if let Some(status) = child.try_wait().expect("wait on child") {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "child must exit promptly after SIGINT"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(130), "graceful interrupt exit code");
    let cp = persist::load_checkpoint(ckpt.to_str().unwrap()).expect("checkpoint must load");
    assert_eq!(cp.n(), 4000);
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn interrupt_checkpoint_resumes_to_completion() {
    // Small enough to finish the resume quickly, big enough that a 50 ms
    // deadline leaves work undone.
    let graph = big_graph(1200);
    let ckpt = workdir().join("resume.ckpt");
    std::fs::remove_file(&ckpt).ok();
    let output = Command::new(bin())
        .args([
            "run",
            &graph,
            "--deadline",
            "0.05",
            "--threads",
            "2",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("spawn parapsp run");
    assert_eq!(output.status.code(), Some(124));
    let resumed = Command::new(bin())
        .args([
            "run",
            &graph,
            "--threads",
            "2",
            "--resume",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("spawn parapsp resume");
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(stdout.contains("resuming:"), "stdout: {stdout}");
    std::fs::remove_file(&ckpt).ok();
}
