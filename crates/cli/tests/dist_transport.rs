//! End-to-end multi-process dist tests: a real driver process, real
//! `parapsp node` worker processes, a real `kill -9` — and a distance
//! matrix that must still come out bit-identical to the sequential
//! baseline.
#![cfg(unix)]

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_parapsp")
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join("parapsp-dist-transport-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Generates (once) a deterministic BA graph to run the cluster over.
fn graph_file(n: usize) -> String {
    let path = workdir().join(format!("ba-{n}.txt"));
    if !path.exists() {
        let status = Command::new(bin())
            .args([
                "generate",
                "--model",
                "ba",
                "--n",
                &n.to_string(),
                "--m",
                "3",
                "--seed",
                "11",
                "--out",
                path.to_str().unwrap(),
            ])
            .status()
            .expect("spawn parapsp generate");
        assert!(status.success());
    }
    path.to_string_lossy().into_owned()
}

/// The sequential reference matrix for `graph`, computed once per size.
fn reference_matrix(graph: &str, tag: &str) -> Vec<u8> {
    let path = workdir().join(format!("seq-{tag}.bin"));
    if !path.exists() {
        let output = Command::new(bin())
            .args([
                "apsp",
                graph,
                "--algorithm",
                "seq-basic",
                "--out",
                path.to_str().unwrap(),
            ])
            .output()
            .expect("spawn parapsp seq-basic");
        assert!(
            output.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
    std::fs::read(path).expect("read reference matrix")
}

fn wait_for(child: &mut Child, what: &str, limit: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + limit;
    loop {
        if let Some(status) = child.try_wait().expect("wait on child") {
            return status;
        }
        assert!(Instant::now() < deadline, "{what} must exit promptly");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The tentpole invariant, end to end: three real worker processes over a
/// Unix socket, one `kill -9`ed mid-run, and the driver still finishes
/// with a matrix bit-identical to the sequential baseline.
#[test]
fn kill_nine_on_a_real_worker_recovers_bit_identically() {
    let graph = graph_file(600);
    let reference = reference_matrix(&graph, "600");
    let sock = workdir().join("kill9.sock");
    let out = workdir().join("kill9.bin");
    std::fs::remove_file(&sock).ok();
    std::fs::remove_file(&out).ok();

    let mut driver = Command::new(bin())
        .args([
            "apsp",
            &graph,
            "--algorithm",
            "dist",
            "--nodes",
            "3",
            "--transport",
            "unix",
            "--listen",
            sock.to_str().unwrap(),
            "--external",
            "--out",
            out.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dist driver");

    // The socket file appearing means the driver is listening.
    let bound = Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(Instant::now() < bound, "driver must bind its socket");
        std::thread::sleep(Duration::from_millis(10));
    }

    let spawn_worker = |extra: &[&str]| -> Child {
        let mut args = vec!["node", "--connect", sock.to_str().unwrap()];
        args.extend_from_slice(extra);
        Command::new(bin())
            .args(&args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn worker")
    };
    let mut healthy_a = spawn_worker(&[]);
    let mut healthy_b = spawn_worker(&[]);
    // The victim crawls (40 ms per source), so it is guaranteed to still
    // be mid-run when the signal lands, debug build or release.
    let mut victim = spawn_worker(&["--delay-ms", "40"]);

    std::thread::sleep(Duration::from_millis(1500));
    assert!(
        victim.try_wait().expect("poll victim").is_none(),
        "the victim must still be computing when killed"
    );
    victim.kill().expect("kill -9 the victim"); // SIGKILL on unix
    victim.wait().expect("reap the victim");

    let status = wait_for(&mut driver, "driver", Duration::from_secs(120));
    let mut stdout = String::new();
    use std::io::Read as _;
    driver
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut stdout)
        .unwrap();
    assert_eq!(status.code(), Some(0), "stdout: {stdout}");
    assert!(
        stdout.contains("3 nodes, 1 crashed"),
        "the summary must report the killed worker: {stdout}"
    );

    let healthy_a = wait_for(&mut healthy_a, "healthy worker", Duration::from_secs(30));
    let healthy_b = wait_for(&mut healthy_b, "healthy worker", Duration::from_secs(30));
    assert_eq!(healthy_a.code(), Some(0));
    assert_eq!(healthy_b.code(), Some(0));

    let recovered = std::fs::read(&out).expect("read recovered matrix");
    assert_eq!(
        recovered, reference,
        "the recovered matrix must be bit-identical to seq-basic"
    );
    assert!(!sock.exists(), "the socket file must be unlinked");
    std::fs::remove_file(&out).ok();
}

/// Self-spawned workers over TCP under a fault storm: an injected crash
/// (the worker process really exits, code 3) plus payload corruption, and
/// the result still matches the sequential baseline.
#[test]
fn spawned_tcp_cluster_survives_a_fault_storm() {
    let graph = graph_file(400);
    let reference = reference_matrix(&graph, "400");
    let out = workdir().join("storm.bin");
    std::fs::remove_file(&out).ok();

    let output = Command::new(bin())
        .args([
            "apsp",
            &graph,
            "--algorithm",
            "dist",
            "--nodes",
            "3",
            "--transport",
            "tcp",
            "--crash",
            "1:3",
            "--corrupt-prob",
            "0.2",
            "--fault-seed",
            "5",
            "--out",
            out.to_str().unwrap(),
        ])
        .output()
        .expect("spawn dist driver");
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("3 nodes, 1 crashed"), "stdout: {stdout}");

    let recovered = std::fs::read(&out).expect("read recovered matrix");
    assert_eq!(recovered, reference, "fault storm must not change a bit");
    std::fs::remove_file(&out).ok();
}

/// Degenerate configs are rejected up front with a self-describing error
/// and the usage exit code (2), not a panic or a hang. Exit 1 is reserved
/// for runtime failures — a rejected flag combination is user error.
#[test]
fn degenerate_dist_configs_exit_two_with_a_reason() {
    let graph = graph_file(400);
    for (args, needle) in [
        (vec!["--nodes", "0"], "at least one node"),
        (vec!["--nodes", "4000"], "needs at least one source"),
        (vec!["--transport", "tcp", "--heartbeat", "0"], "zero"),
        (vec!["--transport", "tcp", "--read-timeout", "0"], "zero"),
        (vec!["--transport", "tcp", "--write-timeout", "0"], "zero"),
        (vec!["--transport", "teleport"], "unknown transport"),
    ] {
        let mut full = vec!["apsp", graph.as_str(), "--algorithm", "dist"];
        full.extend_from_slice(&args);
        let output = Command::new(bin())
            .args(&full)
            .output()
            .expect("spawn parapsp");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(output.status.code(), Some(2), "args {args:?}: {stderr}");
        assert!(
            stderr.to_lowercase().contains(needle),
            "args {args:?} must explain itself, got: {stderr}"
        );
    }
}

/// `node` without a driver address is an immediate, explained usage error.
#[test]
fn node_without_connect_explains_itself() {
    let output = Command::new(bin())
        .args(["node"])
        .output()
        .expect("spawn parapsp node");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--connect"), "stderr: {stderr}");
}

/// The driver-restart invariant, end to end: a dist run journaling to a
/// ledger is `kill -9`ed mid-run, a second driver process resumes from
/// the ledger over the same socket, the surviving workers re-dial and
/// re-handshake on their own, and the final matrix is bit-identical to
/// the sequential baseline — with strictly fewer rows recomputed than a
/// from-scratch run.
#[test]
fn sigkill_on_the_driver_restarts_from_the_ledger_bit_identically() {
    let graph = graph_file(600);
    let reference = reference_matrix(&graph, "600");
    let sock = workdir().join("restart.sock");
    let ledger = workdir().join("restart.ledger");
    let out = workdir().join("restart.bin");
    for stale in [&sock, &ledger, &out] {
        std::fs::remove_file(stale).ok();
    }

    let spawn_driver = |resume: bool| -> Child {
        let mut args = vec![
            "apsp",
            graph.as_str(),
            "--algorithm",
            "dist",
            "--nodes",
            "3",
            "--transport",
            "unix",
            "--listen",
            sock.to_str().unwrap(),
            "--external",
            "--ledger",
            ledger.to_str().unwrap(),
            "--ledger-fsync",
            "always",
            "--out",
            out.to_str().unwrap(),
        ];
        if resume {
            args.extend_from_slice(&["--resume", ledger.to_str().unwrap()]);
        }
        Command::new(bin())
            .args(&args)
            .stdout(if resume {
                Stdio::piped()
            } else {
                Stdio::null()
            })
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn dist driver")
    };

    let mut first = spawn_driver(false);
    let bound = Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(Instant::now() < bound, "driver must bind its socket");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Slow workers with a generous re-dial budget: they must outlive the
    // driver gap and reconnect to the restarted incarnation by themselves.
    let mut workers: Vec<Child> = (0..3)
        .map(|_| {
            Command::new(bin())
                .args([
                    "node",
                    "--connect",
                    sock.to_str().unwrap(),
                    "--delay-ms",
                    "30",
                    "--connect-attempts",
                    "60",
                ])
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn worker")
        })
        .collect();

    // Wait until the ledger holds at least ten durable records (header is
    // 25 bytes; each 600-vertex record is 12 + 4·600 bytes) so the restart
    // provably replays work instead of starting over.
    let ten_records = 25 + 10 * (12 + 4 * 600) as u64;
    let journaled = Instant::now() + Duration::from_secs(30);
    loop {
        let len = std::fs::metadata(&ledger).map(|m| m.len()).unwrap_or(0);
        if len >= ten_records {
            break;
        }
        assert!(
            Instant::now() < journaled,
            "the ledger must accumulate rows while the run is live (have {len} bytes)"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        first.try_wait().expect("poll driver").is_none(),
        "the driver must still be mid-run when killed"
    );
    first.kill().expect("kill -9 the driver"); // SIGKILL on unix
    first.wait().expect("reap the driver");

    let mut second = spawn_driver(true);
    let status = wait_for(&mut second, "restarted driver", Duration::from_secs(120));
    let mut stdout = String::new();
    use std::io::Read as _;
    second
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut stdout)
        .unwrap();
    assert_eq!(status.code(), Some(0), "stdout: {stdout}");

    // The summary proves the restart resumed instead of recomputing:
    // replayed ≥ the ten journaled rows, computed strictly fewer than all
    // 600, and together they cover the whole matrix exactly once.
    let grab = |prefix: &str, suffix: &str| -> u64 {
        let start = stdout
            .find(prefix)
            .unwrap_or_else(|| panic!("`{prefix}` missing from: {stdout}"))
            + prefix.len();
        let rest = &stdout[start..];
        let end = rest
            .find(suffix)
            .unwrap_or_else(|| panic!("`{suffix}` missing after `{prefix}`: {stdout}"));
        rest[..end].trim().parse().expect("row count")
    };
    let computed = grab("computed ", " rows");
    let replayed = grab("replayed ", " rows");
    assert!(replayed >= 10, "stdout: {stdout}");
    assert!(computed < 600, "stdout: {stdout}");
    assert_eq!(computed + replayed, 600, "stdout: {stdout}");

    for (i, worker) in workers.iter_mut().enumerate() {
        let status = wait_for(worker, "worker", Duration::from_secs(30));
        assert_eq!(status.code(), Some(0), "worker {i} must re-dial and finish");
    }

    let recovered = std::fs::read(&out).expect("read restarted matrix");
    assert_eq!(
        recovered, reference,
        "the restarted run must be bit-identical to seq-basic"
    );
    std::fs::remove_file(&ledger).ok();
    std::fs::remove_file(&out).ok();
}
