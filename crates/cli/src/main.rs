//! `parapsp` — run the paper's APSP algorithms and graph analyses from the
//! command line.
//!
//! ```text
//! parapsp <COMMAND> [ARGS]
//!
//! Commands:
//!   stats <file>                  degree / component / clustering summary
//!   apsp <file> (alias: run)      run an APSP algorithm, report timings
//!       --algorithm <name>        par-apsp (default) | par-alg1 | par-alg2 |
//!                                 par-adaptive | seq-basic | seq-optimized |
//!                                 seq-adaptive | blocked-fw |
//!                                 floyd-warshall | dijkstra | dist
//!       --threads <N>             threads (default 4)
//!       --deadline <secs>         stop with a checkpoint when the wall-clock
//!                                 budget expires (exit code 124)
//!       --on-interrupt <mode>     checkpoint (default) | abort: SIGINT and
//!                                 SIGTERM write a resumable checkpoint and
//!                                 exit 130, or kill the process immediately
//!       --nodes <P>               simulated nodes for --algorithm dist
//!       --hub-fraction <F>        hub broadcast fraction for dist (0.05)
//!       --transport <t>           dist wire: channel | tcp | unix
//!   node --connect <addr>         socket worker for a `dist` driver
//!   analyze <file>                APSP + full analysis report
//!       --top <K>                 how many central vertices to list (5)
//!   path <file> <src> <dst>       print one shortest route
//!   generate                      write a synthetic graph
//!       --model <ba|er|ws>        generator (default ba)
//!       --n <N> --m <M> [--p <P>] parameters
//!       --seed <S> --out <file>   determinism and destination
//!
//! Common options:
//!   --directed | --undirected     edge interpretation (default undirected)
//!   --format <snap|konect>        comment style (default snap)
//! ```

mod args;
mod commands;
mod interrupt;

use args::Args;

fn main() {
    let parsed = match Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    // `apsp`/`run` report an exit code so interruption (130) and deadline
    // expiry (124) are distinguishable from success and from errors (1).
    let result = match parsed.command.as_str() {
        "stats" => commands::stats(&parsed).map(|()| 0),
        "apsp" | "run" => commands::apsp(&parsed),
        "analyze" => commands::analyze(&parsed).map(|()| 0),
        "path" => commands::path(&parsed).map(|()| 0),
        "estimate" => commands::estimate(&parsed).map(|()| 0),
        "generate" => commands::generate(&parsed).map(|()| 0),
        // A socket worker for a `dist` driver: exit 0 clean, 3 when an
        // injected fault-plan crash fired.
        "node" => commands::node(&parsed),
        "" | "help" | "--help" | "-h" => {
            print!("{}", commands::USAGE);
            Ok(0)
        }
        other => Err(format!("unknown command `{other}` (try `parapsp help`)")),
    };
    match result {
        Ok(code) => std::process::exit(code),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
