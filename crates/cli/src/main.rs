//! `parapsp` — run the paper's APSP algorithms and graph analyses from the
//! command line.
//!
//! ```text
//! parapsp <COMMAND> [ARGS]
//!
//! Commands:
//!   stats <file>                  degree / component / clustering summary
//!   apsp <file> (alias: run)      run an APSP algorithm, report timings
//!       --algorithm <name>        par-apsp (default) | par-alg1 | par-alg2 |
//!                                 par-adaptive | seq-basic | seq-optimized |
//!                                 seq-adaptive | blocked-fw |
//!                                 floyd-warshall | dijkstra | dist
//!       --threads <N>             threads (default 4)
//!       --deadline <secs>         stop with a checkpoint when the wall-clock
//!                                 budget expires (exit code 124)
//!       --on-interrupt <mode>     checkpoint (default) | abort: SIGINT and
//!                                 SIGTERM write a resumable checkpoint and
//!                                 exit 130, or kill the process immediately
//!       --nodes <P>               simulated nodes for --algorithm dist
//!       --hub-fraction <F>        hub broadcast fraction for dist (0.05)
//!       --transport <t>           dist wire: channel | tcp | unix
//!   node --connect <addr>         socket worker for a `dist` driver
//!   analyze <file>                APSP + full analysis report
//!       --top <K>                 how many central vertices to list (5)
//!   path <file> <src> <dst>       print one shortest route
//!   generate                      write a synthetic graph
//!       --model <ba|er|ws>        generator (default ba)
//!       --n <N> --m <M> [--p <P>] parameters
//!       --seed <S> --out <file>   determinism and destination
//!
//! Common options:
//!   --directed | --undirected     edge interpretation (default undirected)
//!   --format <snap|konect>        comment style (default snap)
//! ```

mod args;
mod commands;
mod interrupt;

use args::Args;

fn main() {
    let parsed = match Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    // `apsp`/`run` report an exit code so interruption (130) and deadline
    // expiry (124) are distinguishable from success, runtime failures (1),
    // and usage errors (2 — same code as the argument parser above).
    use commands::CliError;
    let simple = |result: Result<(), String>| result.map(|()| 0).map_err(CliError::failure);
    let result = match parsed.command.as_str() {
        "stats" => simple(commands::stats(&parsed)),
        "apsp" | "run" => commands::apsp(&parsed),
        "analyze" => simple(commands::analyze(&parsed)),
        "path" => simple(commands::path(&parsed)),
        "estimate" => simple(commands::estimate(&parsed)),
        "generate" => simple(commands::generate(&parsed)),
        // A socket worker for a `dist` driver: exit 0 clean, 3 when an
        // injected fault-plan crash fired.
        "node" => commands::node(&parsed),
        "" | "help" | "--help" | "-h" => {
            print!("{}", commands::USAGE);
            Ok(0)
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}` (try `parapsp help`)"
        ))),
    };
    match result {
        Ok(code) => std::process::exit(code),
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(error.exit_code());
        }
    }
}
