//! `parapsp` — run the paper's APSP algorithms and graph analyses from the
//! command line.
//!
//! ```text
//! parapsp <COMMAND> [ARGS]
//!
//! Commands:
//!   stats <file>                  degree / component / clustering summary
//!   apsp <file>                   run an APSP algorithm, report timings
//!       --algorithm <name>        par-apsp (default) | par-alg1 | par-alg2 |
//!                                 par-adaptive | seq-basic | seq-optimized |
//!                                 floyd-warshall | dijkstra | dist
//!       --threads <N>             threads (default 4)
//!       --nodes <P>               simulated nodes for --algorithm dist
//!       --hub-fraction <F>        hub broadcast fraction for dist (0.05)
//!   analyze <file>                APSP + full analysis report
//!       --top <K>                 how many central vertices to list (5)
//!   path <file> <src> <dst>       print one shortest route
//!   generate                      write a synthetic graph
//!       --model <ba|er|ws>        generator (default ba)
//!       --n <N> --m <M> [--p <P>] parameters
//!       --seed <S> --out <file>   determinism and destination
//!
//! Common options:
//!   --directed | --undirected     edge interpretation (default undirected)
//!   --format <snap|konect>        comment style (default snap)
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let parsed = match Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_str() {
        "stats" => commands::stats(&parsed),
        "apsp" => commands::apsp(&parsed),
        "analyze" => commands::analyze(&parsed),
        "path" => commands::path(&parsed),
        "estimate" => commands::estimate(&parsed),
        "generate" => commands::generate(&parsed),
        "" | "help" | "--help" | "-h" => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `parapsp help`)")),
    };
    if let Err(message) = result {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}
