//! The `parapsp` subcommand implementations.

use parapsp_analysis::components::weakly_connected_components;
use parapsp_analysis::paths::{distance_distribution, path_stats};
use parapsp_analysis::{
    average_clustering, betweenness_centrality, closeness_centrality, degree_assortativity,
    harmonic_centrality, top_k, Normalization,
};
use parapsp_core::adaptive::{par_adaptive, AdaptiveConfig};
use parapsp_core::baselines;
use parapsp_core::engine::{
    ApspEngine, BlockedFwEngine, Engine, EngineKind, RunConfig, Runner, SeqEngine, ValueEnum,
};
use parapsp_core::paths::par_apsp_with_paths;
use parapsp_core::{autotune, ApspOutput, DistanceMatrix, RelaxImpl, RunOutcome, SolverKind};
use parapsp_dist::{
    run_worker, BindSpec, ClusterConfig, DistEngine, FaultPlan, LedgerSpec, SocketConfig,
    SourcePartition, TransportSpec, WorkerMode, WorkerOptions, WorkerOutcome,
};
use parapsp_graph::io::{read_edge_list_file, LoadedGraph, ParseOptions};
use parapsp_graph::{degree, transform, CsrGraph, Direction};
use parapsp_parfor::{CancelToken, Schedule, ThreadPool};

use std::time::Duration;

use crate::args::Args;
use crate::interrupt;

/// A command failure, split by exit code: *usage* errors (bad flag values,
/// rejected configurations — exit 2, matching the argument parser) versus
/// *runtime* failures (I/O, worker loss — exit 1).
#[derive(Debug)]
pub enum CliError {
    /// The invocation itself is wrong; fix the command line (exit 2).
    Usage(String),
    /// The invocation was fine but the run failed (exit 1).
    Failure(String),
}

impl CliError {
    /// Wraps a runtime failure (exit 1). The `From<String>` conversion
    /// classifies as usage instead, because `?` in the command bodies
    /// overwhelmingly propagates flag validation.
    pub fn failure(message: impl Into<String>) -> CliError {
        CliError::Failure(message.into())
    }

    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Failure(_) => 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(message) | CliError::Failure(message) => f.write_str(message),
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Usage(message)
    }
}

/// Help text shared with `main`.
pub const USAGE: &str = "\
parapsp — parallel all-pairs shortest paths for complex graph analysis

usage: parapsp <command> [options]

commands:
  stats <file>               degree / component / clustering summary
  apsp <file>                run an APSP algorithm, report timings
                             (alias: run)
  analyze <file>             APSP + centralities + path statistics
  path <file> <src> <dst>    print one shortest route
  estimate <file> <s> <d>    landmark distance bounds (O(k·n) memory)
  generate                   write a synthetic graph to --out
  node                       socket worker for a `dist` driver (see below)
  help                       this text

common options:
  --directed | --undirected  edge interpretation (default: undirected)
  --format <snap|konect>     comment style (default: snap)
  --threads <N>              worker threads (default: 4)

apsp options:
  --algorithm <name>         par-apsp | par-alg1 | par-alg2 | par-adaptive |
                             seq-basic | seq-optimized | seq-adaptive |
                             blocked-fw | floyd-warshall | dijkstra | dist
  --nodes <P>                simulated cluster size for `dist`
  --hub-fraction <F>         hub broadcast fraction for `dist`
  --partition <name>         dist source partition: cyclic-degree |
                             block-degree | cyclic-id
  --credit-weight <W>        intermediate-credit weight for seq-adaptive
                             (default: 10)
  --block <B>                tile side for blocked-fw (default: 64)
  --cap <D>                  bounded horizon: leave pairs beyond distance D
                             at infinity (every algorithm except
                             par-adaptive and the baselines)
  --relax <impl>             row-relaxation kernel: auto | avx2 | portable |
                             scalar (par-* and seq-* kernel algorithms;
                             default auto — all variants are bit-identical)
  --solver <s>               per-source SSSP solver: dijkstra (default; the
                             paper's modified Dijkstra) | delta[:<width>]
                             (Δ-stepping, width from the mean weight when
                             omitted) | stepping (bucket-fusion spans) |
                             auto (probe the graph, pick solver + Δ, and
                             fill unset --schedule/--relax); same
                             algorithms as --relax; distances are
                             bit-identical under every solver
  --schedule <s>             source-sweep loop schedule for par-apsp |
                             par-alg1 | par-alg2: block | static-cyclic |
                             dynamic-cyclic | dynamic:<chunk> |
                             guided:<min-chunk> | work-stealing[:<chunk>]
                             (default: each algorithm's paper schedule;
                             the distances are identical under all of them)
  --store <s>                distance-matrix storage backend: dense
                             (default; one flat n² allocation) |
                             delta[:<refs>] (landmark-delta compression
                             against <refs> reference rows, default 16) |
                             mmap[:<budget>] (out-of-core file shards, in-
                             memory cache capped at <budget> bytes; accepts
                             k/m/g suffixes, default 64m); row engines and
                             dist; the final matrix is bit-identical under
                             every backend
  --out <file>               save the distance matrix (.tsv/.txt = text,
                             anything else = compact binary)
  --checkpoint <file>        write completed rows to <file> periodically
                             (par-apsp | par-alg1 | par-alg2 | seq-basic |
                             seq-optimized | seq-adaptive)
  --checkpoint-every <K>     rows between checkpoint writes (default: 64)
  --resume <file>            load a checkpoint OR a run ledger and compute
                             only the missing rows (row engines and dist)
  --ledger <file>            journal every completed row to a crash-safe
                             append-only ledger: O(row) incremental
                             durability instead of the checkpoint's O(n²)
                             rewrite; restartable with --resume <file>
                             (row engines and dist; excludes --checkpoint)
  --ledger-fsync <policy>    when ledger appends reach the disk: always |
                             commit (default) | never
  --deadline <secs>          stop once the wall-clock budget expires,
                             write a checkpoint, exit 124
  --on-interrupt <mode>      checkpoint (default): SIGINT/SIGTERM stop at
                             a row boundary, write a checkpoint, exit 130;
                             abort: die immediately (OS default)
                             (cancellable: everything except par-adaptive,
                             floyd-warshall, dijkstra; the stop checkpoint
                             goes to --checkpoint's path or
                             <file>.interrupt.ckpt)

dist transport (default: in-process channels):
  --transport <t>            channel | tcp | unix — tcp/unix run the
                             cluster over length-prefix-framed sockets to
                             real worker processes (spawned from this
                             binary unless --external)
  --listen <addr>            listen address: host:port for tcp (default:
                             ephemeral loopback) or a path for unix
                             (default: a temp path)
  --external                 don't spawn workers; print the listen address
                             and wait for `parapsp node --connect <addr>`
                             processes started elsewhere
  --heartbeat <ms>           worker keepalive interval (default: 20)
  --heartbeat-misses <N>     silent intervals before a worker is declared
                             dead and its sources re-dealt (default: 50;
                             EOF/resets are detected immediately)
  --row-batch <K>            rows buffered per gather frame (default: 4)
  --accept-timeout <secs>    how long to wait for workers to connect
                             (default: 10); empty slots are re-dealt
  --read-timeout <ms>        driver-side socket read poll quantum
                             (default: 10)
  --write-timeout <ms>       socket write bound on both ends (default:
                             2000); a blocked write past it is a dead peer
  --delay-ms <ms>            forwarded to spawned workers: sleep this long
                             before each source (testing aid)
  with --external + --ledger the driver is restartable: kill it mid-run,
  re-run the same command with --resume <ledger>, and surviving workers
  re-handshake under the recovered run id (only missing rows recompute)

node options (socket worker; driver supplies everything else):
  --connect <addr>           the driver's listen address (required)
  --connect-attempts <N>     dial attempts with exponential backoff (20)
  --write-timeout <ms>       socket write bound toward the driver (2000)
  --delay-ms <ms>            sleep before each source (testing aid)
                             a worker that loses its driver mid-run
                             re-dials and re-handshakes under its last
                             run id/epoch until the dial budget runs out
                             exit codes: 0 clean, 3 injected crash

dist fault injection (deterministic, seeded):
  --fault-seed <S>           seed for the fault plan (default: 0)
  --crash <node:k[,..]>      crash node(s) after their k-th source
  --drop-prob <P>            drop each hub broadcast with probability P
  --corrupt-prob <Q>         bit-flip each row payload with probability Q

generate options:
  --model <ba|er|ws> --n <N> --m <M> [--p <P>] [--seed <S>] --out <file>
";

fn parse_options(args: &Args) -> Result<ParseOptions, String> {
    let direction = if args.flag("directed") {
        Direction::Directed
    } else {
        Direction::Undirected
    };
    match args.get("format").unwrap_or("snap") {
        "snap" => Ok(ParseOptions::snap(direction)),
        "konect" => Ok(ParseOptions::konect(direction)),
        other => Err(format!("unknown format `{other}` (snap or konect)")),
    }
}

fn load(args: &Args) -> Result<LoadedGraph, String> {
    let path = args
        .positional(0)
        .ok_or_else(|| "expected a graph file argument".to_string())?;
    read_edge_list_file(path, parse_options(args)?).map_err(|e| format!("loading {path}: {e}"))
}

fn check_matrix_budget(n: usize) -> Result<(), String> {
    let bytes = (n as u64) * (n as u64) * 4;
    if bytes > 8 << 30 {
        return Err(format!(
            "a {n}-vertex APSP needs a {:.1} GiB distance matrix; \
             extract a component first (this is the paper's own memory wall)",
            bytes as f64 / (1u64 << 30) as f64
        ));
    }
    Ok(())
}

/// `parapsp stats <file>` — structural summary, no O(n²) allocation.
pub fn stats(args: &Args) -> Result<(), String> {
    let loaded = load(args)?;
    let g = &loaded.graph;
    println!(
        "{}: {} vertices, {} edges ({})",
        args.positional(0).unwrap_or("-"),
        g.vertex_count(),
        g.edge_count(),
        if g.direction().is_directed() {
            "directed"
        } else {
            "undirected"
        }
    );
    let degrees = degree::out_degrees(g);
    if let Some(s) = degree::degree_stats(&degrees) {
        println!(
            "degree: min {} / median {} / mean {:.2} / max {}",
            s.min, s.median, s.mean, s.max
        );
    }
    let (_, components) = weakly_connected_components(g);
    println!("weakly connected components: {components}");
    let (lcc, _) = transform::largest_connected_component(g);
    println!(
        "largest component: {} vertices ({:.1}%)",
        lcc.vertex_count(),
        lcc.vertex_count() as f64 / g.vertex_count().max(1) as f64 * 100.0
    );
    if !g.direction().is_directed() {
        println!("average clustering: {:.4}", average_clustering(g));
    }
    println!("degree assortativity: {:+.4}", degree_assortativity(g));
    println!("\ndegree distribution (log-binned):");
    for (bin, count) in degree::log_binned_histogram(&degrees) {
        println!("  >= {bin:<6} {count}");
    }
    Ok(())
}

/// Builds the `dist` fault plan from `--fault-seed`, `--crash`,
/// `--drop-prob`, and `--corrupt-prob`.
fn parse_fault_plan(args: &Args) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::seeded(args.get_parsed("fault-seed", 0u64)?);
    if let Some(spec) = args.get("crash") {
        for entry in spec.split(',') {
            let (node, after) = entry
                .split_once(':')
                .ok_or_else(|| format!("--crash entry `{entry}` is not <node>:<k>"))?;
            let node: usize = node
                .parse()
                .map_err(|_| format!("--crash node `{node}` is invalid"))?;
            let after: u64 = after
                .parse()
                .map_err(|_| format!("--crash count `{after}` is invalid"))?;
            plan = plan.crash_node_after(node, after);
        }
    }
    let drop_prob = args.get_parsed("drop-prob", 0.0f64)?;
    if !(0.0..=1.0).contains(&drop_prob) {
        return Err(format!("--drop-prob {drop_prob} outside [0, 1]"));
    }
    let corrupt_prob = args.get_parsed("corrupt-prob", 0.0f64)?;
    if !(0.0..1.0).contains(&corrupt_prob) {
        return Err(format!("--corrupt-prob {corrupt_prob} outside [0, 1)"));
    }
    Ok(plan
        .with_drop_probability(drop_prob)
        .with_corrupt_probability(corrupt_prob))
}

/// Builds the `dist` transport from `--transport`, `--listen`,
/// `--heartbeat`, `--heartbeat-misses`, `--row-batch`,
/// `--accept-timeout`, `--external`, and `--delay-ms`.
fn parse_transport(args: &Args) -> Result<TransportSpec, String> {
    let kind = args.get("transport").unwrap_or("channel");
    if kind == "channel" {
        return Ok(TransportSpec::InProcess);
    }
    let bind = match kind {
        "tcp" => match args.get("listen") {
            None => BindSpec::TcpEphemeral,
            Some(addr) => BindSpec::Tcp(addr.to_string()),
        },
        #[cfg(unix)]
        "unix" => {
            let path = match args.get("listen") {
                Some(path) => std::path::PathBuf::from(path),
                None => std::env::temp_dir().join(format!("parapsp-{}.sock", std::process::id())),
            };
            BindSpec::Unix(path)
        }
        other => {
            return Err(format!(
                "unknown transport `{other}` (channel, tcp, or unix)"
            ))
        }
    };
    let workers = if args.flag("external") {
        WorkerMode::External
    } else {
        // Self-spawn: each worker is this very binary running the `node`
        // subcommand; faults and the graph travel in the Setup frame.
        let program =
            std::env::current_exe().map_err(|e| format!("resolving the worker executable: {e}"))?;
        let mut node_args = vec!["node".to_string()];
        for forwarded in ["delay-ms", "write-timeout"] {
            if let Some(value) = args.get(forwarded) {
                node_args.push(format!("--{forwarded}"));
                node_args.push(value.to_string());
            }
        }
        WorkerMode::Spawn {
            program,
            args: node_args,
        }
    };
    let heartbeat_ms = args.get_parsed("heartbeat", 20u64)?;
    let heartbeat_misses = args.get_parsed("heartbeat-misses", 50u32)?;
    let row_batch = args.get_parsed("row-batch", 4usize)?;
    let accept_secs = args.get_parsed("accept-timeout", 10u64)?;
    let defaults = SocketConfig::default();
    let read_timeout_ms =
        args.get_parsed("read-timeout", defaults.read_timeout.as_millis() as u64)?;
    let write_timeout_ms =
        args.get_parsed("write-timeout", defaults.write_timeout.as_millis() as u64)?;
    // Zero intervals/timeouts are rejected later by
    // `ClusterConfig::validate`, before any socket is opened.
    Ok(TransportSpec::Socket(SocketConfig {
        bind,
        workers,
        heartbeat_interval: Duration::from_millis(heartbeat_ms),
        heartbeat_misses,
        row_batch,
        accept_timeout: Duration::from_secs(accept_secs),
        read_timeout: Duration::from_millis(read_timeout_ms),
        write_timeout: Duration::from_millis(write_timeout_ms),
        announce: args.flag("external"),
        ..defaults
    }))
}

/// `parapsp node --connect <addr>` — a socket worker process: dials the
/// driver, receives its graph and share in the Setup frame, and streams
/// rows back until told to shut down. A worker whose driver vanishes
/// without a shutdown (a driver crash) re-dials the same address and
/// re-handshakes under its last run id/epoch, so a restarted driver can
/// reclaim it; a driver that never returns exhausts the dial budget and
/// surfaces as a connection failure. Returns the process exit code: 0 on
/// a clean run, 3 when a deterministic fault-plan crash fired (the socket
/// is torn down abruptly, as a real crash would).
pub fn node(args: &Args) -> Result<i32, CliError> {
    let addr = args
        .get("connect")
        .ok_or_else(|| "node needs --connect <addr> (the driver's listen address)".to_string())?;
    let connect = parapsp_dist::ConnectRetry {
        attempts: args.get_parsed("connect-attempts", 20u32)?,
        ..parapsp_dist::ConnectRetry::default()
    };
    if connect.attempts == 0 {
        return Err("--connect-attempts must be at least 1".to_string().into());
    }
    let mut options = WorkerOptions {
        connect,
        source_delay: Duration::from_millis(args.get_parsed("delay-ms", 0u64)?),
        write_timeout: Duration::from_millis(args.get_parsed("write-timeout", 2000u64)?),
        ..WorkerOptions::default()
    };
    if options.write_timeout.is_zero() {
        return Err("--write-timeout must be at least 1 ms".to_string().into());
    }
    loop {
        match run_worker(addr, options.clone()).map_err(CliError::failure)? {
            WorkerOutcome::Clean(stats) => {
                eprintln!(
                    "node: {} sources, {} remote reuses, {} retries, {} reconnects, {} KiB sent",
                    stats.sources,
                    stats.remote_reuses,
                    stats.retries,
                    stats.reconnects,
                    stats.bytes_sent / 1024,
                );
                return Ok(0);
            }
            WorkerOutcome::Crashed => return Ok(3),
            WorkerOutcome::Lost { session } => {
                eprintln!(
                    "node: driver connection lost (run {:#018x} epoch {}); re-dialing {addr}",
                    session.0, session.1
                );
                options.session = session;
            }
        }
    }
}

/// What an `apsp` run produced.
enum RunStatus {
    /// Finished: the distance matrix plus a one-line summary.
    Done(DistanceMatrix, String),
    /// Stopped early (interrupt or deadline); the checkpoint is already on
    /// disk and the process should exit with `code`.
    Stopped { code: i32 },
}

/// What a SIGINT/SIGTERM does to a cancellable run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OnInterrupt {
    /// Stop at a row boundary, write a checkpoint, exit 130.
    Checkpoint,
    /// Die immediately (the OS default disposition).
    Abort,
}

impl ValueEnum for OnInterrupt {
    fn value_variants() -> &'static [Self] {
        &[OnInterrupt::Checkpoint, OnInterrupt::Abort]
    }

    fn value_name(&self) -> &'static str {
        match self {
            OnInterrupt::Checkpoint => "checkpoint",
            OnInterrupt::Abort => "abort",
        }
    }
}

/// The stable names of every [`EngineKind`] passing `select`, for error
/// messages that enumerate what a flag applies to.
fn kinds_where(select: fn(EngineKind) -> bool) -> String {
    let names: Vec<&str> = EngineKind::value_variants()
        .iter()
        .copied()
        .filter(|&kind| select(kind))
        .map(|kind| kind.value_name())
        .collect();
    names.join(", ")
}

/// Builds the run's cancel token from `--deadline`/`--on-interrupt`.
/// Returns the token plus whether the SIGINT/SIGTERM bridge should be
/// installed; `None` when the run should take the plain, token-free path.
fn cancellation_setup(
    args: &Args,
    kind: EngineKind,
) -> Result<Option<(CancelToken, bool)>, String> {
    let deadline: Option<f64> = match args.get("deadline") {
        None => None,
        Some(raw) => {
            let secs: f64 = raw
                .parse()
                .map_err(|_| format!("--deadline value `{raw}` is invalid"))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(format!(
                    "--deadline must be a non-negative number of seconds (got {raw})"
                ));
            }
            Some(secs)
        }
    };
    let checkpoint_on_interrupt =
        args.get_enum("on-interrupt", OnInterrupt::Checkpoint)? == OnInterrupt::Checkpoint;
    if !kind.cancellable() {
        // Only explicit flags are an error — the default interrupt mode
        // must not break non-cancellable algorithms.
        if args.get("deadline").is_some() || args.get("on-interrupt").is_some() {
            return Err(format!(
                "--deadline/--on-interrupt work with {} (got `{}`)",
                kinds_where(EngineKind::cancellable),
                kind.value_name()
            ));
        }
        return Ok(None);
    }
    if deadline.is_none() && !checkpoint_on_interrupt {
        return Ok(None); // no deadline, abort-on-signal: the legacy path
    }
    let token = match deadline {
        Some(secs) => CancelToken::with_deadline(std::time::Duration::from_secs_f64(secs)),
        None => CancelToken::new(),
    };
    Ok(Some((token, checkpoint_on_interrupt)))
}

/// Writes the stop checkpoint and reports how to resume. The checkpoint
/// lands on `--checkpoint`'s path when given (the periodic and final
/// checkpoints are the same format) or `<graph-file>.interrupt.ckpt`.
/// A `--ledger` run skips the rewrite entirely — every completed row is
/// already durable in the ledger, and a v2 file on the same path would
/// clobber it.
fn write_stop_checkpoint(
    args: &Args,
    checkpoint: &parapsp_core::persist::Checkpoint,
    why: &str,
    code: i32,
) -> Result<RunStatus, CliError> {
    if let Some(path) = args.get("ledger") {
        eprintln!(
            "{why}: {} of {} rows already durable in the ledger \
             (resume with --resume {path} --ledger {path})",
            checkpoint.completed_count(),
            checkpoint.n()
        );
        return Ok(RunStatus::Stopped { code });
    }
    let path = match args.get("checkpoint") {
        Some(p) => p.to_string(),
        None => format!("{}.interrupt.ckpt", args.positional(0).unwrap_or("apsp")),
    };
    parapsp_core::persist::save_checkpoint(checkpoint, &path)
        .map_err(|e| CliError::failure(format!("writing stop checkpoint {path}: {e}")))?;
    eprintln!(
        "{why}: {} of {} rows complete; checkpoint written to {path} \
         (resume with --resume {path})",
        checkpoint.completed_count(),
        checkpoint.n()
    );
    Ok(RunStatus::Stopped { code })
}

/// Loads `--resume`'s checkpoint (validated against the graph) and drives
/// `engine` through the [`Runner`], with or without a cancel token. All
/// six row-engine algorithms (`par-*`, `seq-*`) funnel through here.
fn drive_row_engine<E: Engine<Output = ApspOutput>>(
    runner: &Runner,
    engine: E,
    graph: &CsrGraph,
    args: &Args,
    token: Option<&CancelToken>,
) -> Result<RunOutcome<ApspOutput>, String> {
    match args.get("resume") {
        Some(path) => {
            use parapsp_core::persist;
            let cp = persist::load_checkpoint(path)
                .map_err(|e| format!("loading checkpoint {path}: {e}"))?;
            if cp.n() != graph.vertex_count() {
                return Err(format!(
                    "checkpoint {path} is for {} vertices but the graph has {}",
                    cp.n(),
                    graph.vertex_count()
                ));
            }
            println!(
                "resuming: {} of {} rows already complete",
                cp.completed_count(),
                cp.n()
            );
            Ok(match token {
                Some(token) => runner.run_resumed_with_token(engine, graph, cp, token),
                None => RunOutcome::Complete(runner.run_resumed(engine, graph, cp)),
            })
        }
        None => Ok(match token {
            Some(token) => runner.run_with_token(engine, graph, token),
            None => RunOutcome::Complete(runner.run(engine, graph)),
        }),
    }
}

fn run_algorithm(
    kind: EngineKind,
    graph: &CsrGraph,
    threads: usize,
    args: &Args,
    token: Option<&CancelToken>,
) -> Result<RunStatus, CliError> {
    // Optional bounded horizon (exact within the cap, INF beyond it).
    let cap: Option<u32> = match args.get("cap") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("--cap value `{raw}` is invalid"))?,
        ),
    };
    // Row-relaxation implementation (the vectorized kernel ablation switch).
    let relax = args.get_enum("relax", RelaxImpl::Auto)?;
    // Periodic checkpoints, the run ledger, and --resume need rows that
    // are final mid-run; the dist driver gathers exactly such rows, so it
    // joins the row engines for the ledger and resume (but not for the
    // periodic full rewrite). --relax needs the modified-Dijkstra kernel.
    let row_durable = kind.row_checkpoints() || kind == EngineKind::Dist;
    if args.get("checkpoint").is_some() && !kind.row_checkpoints() {
        return Err(format!(
            "--checkpoint works with {} (got `{}`)",
            kinds_where(EngineKind::row_checkpoints),
            kind.value_name()
        )
        .into());
    }
    if (args.get("ledger").is_some() || args.get("resume").is_some()) && !row_durable {
        return Err(format!(
            "--ledger/--resume work with {}, dist (got `{}`)",
            kinds_where(EngineKind::row_checkpoints),
            kind.value_name()
        )
        .into());
    }
    if args.get("ledger").is_some() && args.get("checkpoint").is_some() {
        return Err(
            "--ledger and --checkpoint are mutually exclusive (one durability sink per run)"
                .to_string()
                .into(),
        );
    }
    let ledger_fsync = args.get_enum("ledger-fsync", parapsp_core::FsyncPolicy::default())?;
    if args.get("ledger-fsync").is_some() && args.get("ledger").is_none() {
        return Err("--ledger-fsync needs --ledger".to_string().into());
    }
    if args.get("relax").is_some() && !kind.uses_kernel() {
        return Err(format!(
            "--relax works with {} (got `{}`)",
            kinds_where(EngineKind::uses_kernel),
            kind.value_name()
        )
        .into());
    }
    // Source-sweep loop schedule (only the Runner-driven parallel engines
    // hand their source loop to the parfor pool).
    let schedule: Option<Schedule> = match args.get("schedule") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|e| format!("--schedule value `{raw}` is invalid: {e}"))?,
        ),
    };
    if schedule.is_some() && !kind.honours_schedule() {
        return Err(format!(
            "--schedule works with {} (got `{}`)",
            kinds_where(EngineKind::honours_schedule),
            kind.value_name()
        )
        .into());
    }
    // Distance-matrix storage backend. Only engines that route published
    // rows through a `Store` (the row engines and the dist gather) can
    // honour it; the in-place baselines would silently ignore the flag.
    let store = args.get_spec("store", parapsp_core::StoreSpec::default())?;
    if args.get("store").is_some() && !kind.supports_store() {
        return Err(format!(
            "--store works with {}, dist (got `{}`)",
            kinds_where(EngineKind::row_checkpoints),
            kind.value_name()
        )
        .into());
    }
    // Reject a hot-row cache budget that cannot hold the lease working
    // set here, where it is a clean `--store` error with the minimum
    // named, instead of a panic when the engine builds the store.
    store
        .validate_for(graph.vertex_count())
        .map_err(|e| format!("--store value `{}` is invalid: {e}", store.label()))?;
    // Per-source SSSP solver. Like --relax it needs the row kernel.
    // `--solver auto` probes the graph up front so the choice can be
    // reported, and its schedule/relax recommendations fill in whichever
    // of those flags the user left unset.
    let mut solver = args.get_spec("solver", SolverKind::default())?;
    if args.get("solver").is_some() && !kind.uses_kernel() {
        return Err(format!(
            "--solver works with {} (got `{}`)",
            kinds_where(EngineKind::uses_kernel),
            kind.value_name()
        )
        .into());
    }
    let mut relax = relax;
    let mut schedule = schedule;
    if solver == SolverKind::Auto && kind.uses_kernel() {
        let choice = autotune(graph);
        println!(
            "auto-tune: solver {} schedule {} relax {} (n={} m={} \
             degree-skew={:.1} weights {}..{} diameter~{})",
            choice.solver.label(),
            choice.schedule.label(),
            choice.relax.name(),
            choice.probe.n,
            choice.probe.m,
            choice.probe.degree_skew,
            choice.probe.weight_min,
            choice.probe.weight_max,
            choice.probe.approx_diameter,
        );
        solver = choice.solver;
        if args.get("relax").is_none() {
            relax = choice.relax;
        }
        if args.get("schedule").is_none() && kind.honours_schedule() {
            schedule = Some(choice.schedule);
        }
    }
    let checkpoint_every = args.get_parsed("checkpoint-every", 64usize)?;
    if checkpoint_every == 0 {
        return Err("--checkpoint-every must be at least 1".to_string().into());
    }
    // Every Runner-driven algorithm shares the same config plumbing: cap,
    // relax implementation, and checkpoint policy land in one RunConfig.
    let configure = |mut config: RunConfig| -> RunConfig {
        if let Some(cap) = cap {
            config = config.with_max_distance(cap);
        }
        config = config.with_relax(relax);
        config = config.with_solver(solver);
        config = config.with_store(store.clone());
        if let Some(schedule) = schedule {
            config = config.with_schedule(schedule);
        }
        if let Some(path) = args.get("checkpoint") {
            config = config.with_checkpoint(path, checkpoint_every);
        }
        if let Some(path) = args.get("ledger") {
            config = config
                .with_ledger(path, checkpoint_every)
                .with_fsync(ledger_fsync);
        }
        config
    };
    let outcome = match kind {
        EngineKind::ParApsp => drive_row_engine(
            &Runner::new(configure(RunConfig::par_apsp(threads))),
            ApspEngine::new(),
            graph,
            args,
            token,
        )?,
        EngineKind::ParAlg1 => drive_row_engine(
            &Runner::new(configure(RunConfig::par_alg1(threads))),
            ApspEngine::new(),
            graph,
            args,
            token,
        )?,
        EngineKind::ParAlg2 => drive_row_engine(
            &Runner::new(configure(RunConfig::par_alg2(threads))),
            ApspEngine::new(),
            graph,
            args,
            token,
        )?,
        EngineKind::SeqBasic => drive_row_engine(
            &Runner::new(configure(RunConfig::seq_basic())),
            SeqEngine::ordered(),
            graph,
            args,
            token,
        )?,
        EngineKind::SeqOptimized => drive_row_engine(
            &Runner::new(configure(RunConfig::seq_optimized(1.0))),
            SeqEngine::ordered(),
            graph,
            args,
            token,
        )?,
        EngineKind::SeqAdaptive => {
            let weight = args.get_parsed("credit-weight", 10u64)?;
            drive_row_engine(
                &Runner::new(configure(RunConfig::seq_adaptive(weight))),
                SeqEngine::adaptive(weight),
                graph,
                args,
                token,
            )?
        }
        EngineKind::ParAdaptive => {
            RunOutcome::Complete(par_adaptive(graph, threads, AdaptiveConfig::default()))
        }
        EngineKind::FloydWarshall => {
            let start = std::time::Instant::now();
            let dist = baselines::floyd_warshall(graph);
            return Ok(RunStatus::Done(
                dist,
                format!("floyd-warshall: {:?}", start.elapsed()),
            ));
        }
        EngineKind::Dijkstra => {
            let pool = ThreadPool::new(threads);
            let start = std::time::Instant::now();
            let dist = baselines::par_apsp_dijkstra(graph, &pool);
            return Ok(RunStatus::Done(
                dist,
                format!("parallel heap-dijkstra: {:?}", start.elapsed()),
            ));
        }
        EngineKind::BlockedFw => {
            let block = args.get_parsed("block", 64usize)?;
            let runner = Runner::new(configure(RunConfig::new(threads)));
            let start = std::time::Instant::now();
            let dist = match token {
                Some(token) => {
                    match runner.run_with_token(BlockedFwEngine::new(block), graph, token) {
                        RunOutcome::Complete(dist) => dist,
                        RunOutcome::Cancelled { checkpoint } => {
                            return write_stop_checkpoint(args, &checkpoint, "interrupted", 130)
                        }
                        RunOutcome::DeadlineExceeded { checkpoint } => {
                            return write_stop_checkpoint(
                                args,
                                &checkpoint,
                                "deadline exceeded",
                                124,
                            )
                        }
                    }
                }
                None => runner.run(BlockedFwEngine::new(block), graph),
            };
            return Ok(RunStatus::Done(
                dist,
                format!(
                    "blocked floyd-warshall ({threads} threads, {block}-tile): {:?}",
                    start.elapsed()
                ),
            ));
        }
        EngineKind::Dist => {
            let nodes = args.get_parsed("nodes", 4usize)?;
            let hub_fraction = args.get_parsed("hub-fraction", 0.05f64)?;
            let partition = args.get_enum("partition", SourcePartition::default())?;
            let faults = parse_fault_plan(args)?;
            let transport = parse_transport(args)?;
            let ledger = args.get("ledger").map(|path| LedgerSpec {
                path: std::path::PathBuf::from(path),
                fsync: ledger_fsync,
            });
            let cluster = ClusterConfig {
                nodes,
                hub_fraction,
                partition,
                faults,
                transport,
                ledger,
                ..ClusterConfig::default()
            };
            // Degenerate configurations (zero nodes, more nodes than
            // sources, dead timeouts) are rejected here with a
            // self-describing message instead of panicking mid-run.
            cluster
                .validate(graph.vertex_count())
                .map_err(|e| e.to_string())?;
            // A restarted driver resumes from its own ledger (or any
            // checkpoint): prior rows pre-seed the gather and only the
            // missing sources are dealt to the workers.
            let resume = match args.get("resume") {
                None => None,
                Some(path) => {
                    let cp = parapsp_core::persist::load_checkpoint(path)
                        .map_err(|e| format!("loading checkpoint {path}: {e}"))?;
                    if cp.n() != graph.vertex_count() {
                        return Err(format!(
                            "checkpoint {path} is for {} vertices but the graph has {}",
                            cp.n(),
                            graph.vertex_count()
                        )
                        .into());
                    }
                    println!(
                        "resuming: {} of {} rows already complete",
                        cp.completed_count(),
                        cp.n()
                    );
                    Some(cp)
                }
            };
            let runner = Runner::new(configure(RunConfig::new(1)));
            let engine = DistEngine::new(cluster);
            let outcome = match (token, resume) {
                (Some(token), Some(cp)) => runner.run_resumed_with_token(engine, graph, cp, token),
                (Some(token), None) => runner.run_with_token(engine, graph, token),
                (None, Some(cp)) => RunOutcome::Complete(runner.run_resumed(engine, graph, cp)),
                (None, None) => RunOutcome::Complete(runner.run(engine, graph)),
            };
            let out = match outcome {
                RunOutcome::Complete(out) => out,
                RunOutcome::Cancelled { checkpoint } => {
                    return write_stop_checkpoint(args, &checkpoint, "interrupted", 130)
                }
                RunOutcome::DeadlineExceeded { checkpoint } => {
                    return write_stop_checkpoint(args, &checkpoint, "deadline exceeded", 124)
                }
            };
            let sum = |field: fn(&parapsp_dist::NodeStats) -> u64| {
                out.node_stats.iter().map(field).sum::<u64>()
            };
            let summary = format!(
                "distributed ({} nodes, {} crashed): {:?}; computed {} rows, replayed {} rows, \
                 broadcast {} KiB, gather {} KiB, \
                 remote reuses {}, rows rejected {} (+{} at gather), retries {}, reassigned {}, \
                 reconnects {}, heartbeat misses {}",
                nodes,
                out.crashed_nodes(),
                out.elapsed,
                sum(|s| s.sources),
                out.replayed_rows,
                out.total_broadcast_bytes() / 1024,
                out.gather_bytes / 1024,
                sum(|s| s.remote_reuses),
                sum(|s| s.rows_rejected),
                out.gather_rejected,
                sum(|s| s.retries),
                sum(|s| s.reassigned_sources),
                sum(|s| s.reconnects),
                sum(|s| s.heartbeat_misses),
            );
            return Ok(RunStatus::Done(out.dist, summary));
        }
    };
    let out = match outcome {
        RunOutcome::Complete(out) => out,
        RunOutcome::Cancelled { checkpoint } => {
            return write_stop_checkpoint(args, &checkpoint, "interrupted", 130)
        }
        RunOutcome::DeadlineExceeded { checkpoint } => {
            return write_stop_checkpoint(args, &checkpoint, "deadline exceeded", 124)
        }
    };
    let summary = format!(
        "{} ({} threads): ordering {:?}, sssp {:?}, total {:?}; {} relaxations, {} row reuses \
         ({} lease hits / {} misses, {} decode-ahead, pinned peak {} B)",
        out.algorithm,
        out.threads,
        out.timings.ordering,
        out.timings.sssp,
        out.timings.total,
        out.counters.relaxations,
        out.counters.row_reuses,
        out.counters.lease_hits,
        out.counters.lease_misses,
        out.counters.decode_ahead_hits,
        out.counters.pinned_bytes_peak
    );
    Ok(RunStatus::Done(out.dist, summary))
}

/// `parapsp apsp <file>` (alias `run`) — run one algorithm and report.
/// Returns the process exit code: 0 on success, 130 when interrupted with
/// a checkpoint, 124 when a `--deadline` expired with a checkpoint.
pub fn apsp(args: &Args) -> Result<i32, CliError> {
    let loaded = load(args).map_err(CliError::failure)?;
    check_matrix_budget(loaded.graph.vertex_count()).map_err(CliError::failure)?;
    let threads = args.get_parsed("threads", 4usize)?;
    let algorithm = args.get_enum("algorithm", EngineKind::ParApsp)?;
    let setup = cancellation_setup(args, algorithm)?;
    // The guard keeps a watcher thread that trips the token on
    // SIGINT/SIGTERM; dropping it (any exit path) stops the watcher.
    let _guard = match &setup {
        Some((token, true)) => Some(interrupt::guard(token)),
        _ => None,
    };
    let token = setup.as_ref().map(|(token, _)| token);
    let (dist, summary) = match run_algorithm(algorithm, &loaded.graph, threads, args, token)? {
        RunStatus::Done(dist, summary) => (dist, summary),
        RunStatus::Stopped { code } => return Ok(code),
    };
    println!("{summary}");
    let stats = path_stats(&dist);
    println!(
        "diameter {} / radius {} / avg path {:.3} / connectivity {:.1}%",
        stats.diameter,
        stats.radius,
        stats.average_path_length,
        stats.connectivity() * 100.0
    );
    if let Some(out_path) = args.get("out") {
        use parapsp_core::persist;
        if out_path.ends_with(".tsv") || out_path.ends_with(".txt") {
            let file = std::fs::File::create(out_path)
                .map_err(|e| CliError::failure(format!("creating {out_path}: {e}")))?;
            persist::write_tsv(&dist, file).map_err(|e| CliError::failure(e.to_string()))?;
        } else {
            persist::save_binary(&dist, out_path).map_err(|e| CliError::failure(e.to_string()))?;
        }
        println!("distance matrix written to {out_path}");
    }
    Ok(0)
}

/// `parapsp analyze <file>` — APSP plus the full analysis report.
pub fn analyze(args: &Args) -> Result<(), String> {
    let loaded = load(args)?;
    let g = &loaded.graph;
    check_matrix_budget(g.vertex_count())?;
    let threads = args.get_parsed("threads", 4usize)?;
    let top = args.get_parsed("top", 5usize)?;

    let out = Runner::new(RunConfig::par_apsp(threads)).run(ApspEngine::new(), g);
    println!(
        "ParAPSP: {:?} on {} threads\n",
        out.timings.total, out.threads
    );

    let stats = path_stats(&out.dist);
    println!(
        "diameter {} / radius {} / avg path {:.3} / connectivity {:.1}%",
        stats.diameter,
        stats.radius,
        stats.average_path_length,
        stats.connectivity() * 100.0
    );
    println!("\ndistance distribution:");
    for (d, count) in distance_distribution(&out.dist).iter().enumerate().skip(1) {
        if *count > 0 {
            println!("  {d}: {count}");
        }
    }

    let degrees = degree::out_degrees(g);
    let closeness = closeness_centrality(&out.dist, Normalization::WassermanFaust);
    let harmonic = harmonic_centrality(&out.dist);
    let original = |v: u32| loaded.original_ids[v as usize];
    println!("\ntop {top} by closeness:");
    for v in top_k(&closeness, top) {
        println!(
            "  vertex {} (file id {}): {:.4}  degree {}",
            v,
            original(v),
            closeness[v as usize],
            degrees[v as usize]
        );
    }
    println!("top {top} by harmonic centrality:");
    for v in top_k(&harmonic, top) {
        println!(
            "  vertex {} (file id {}): {:.4}  degree {}",
            v,
            original(v),
            harmonic[v as usize],
            degrees[v as usize]
        );
    }
    if !g.direction().is_directed() && g.is_unit_weight() {
        let pool = ThreadPool::new(threads);
        let betweenness = betweenness_centrality(g, &pool);
        println!("top {top} by betweenness:");
        for v in top_k(&betweenness, top) {
            println!(
                "  vertex {} (file id {}): {:.1}  degree {}",
                v,
                original(v),
                betweenness[v as usize],
                degrees[v as usize]
            );
        }
    }
    Ok(())
}

/// `parapsp path <file> <src> <dst>` — one reconstructed route.
pub fn path(args: &Args) -> Result<(), String> {
    let loaded = load(args)?;
    check_matrix_budget(loaded.graph.vertex_count())?;
    let threads = args.get_parsed("threads", 4usize)?;
    let parse_vertex = |index: usize, what: &str| -> Result<u32, String> {
        let raw = args
            .positional(index)
            .ok_or_else(|| format!("expected a {what} vertex id"))?;
        let original: u64 = raw
            .parse()
            .map_err(|_| format!("{what} id `{raw}` is not an integer"))?;
        loaded
            .dense_id(original)
            .ok_or_else(|| format!("{what} id {original} not present in the file"))
    };
    let src = parse_vertex(1, "source")?;
    let dst = parse_vertex(2, "destination")?;

    let result = par_apsp_with_paths(&loaded.graph, threads);
    match result.pred.path(src, dst) {
        Some(route) => {
            println!(
                "distance {} over {} hops:",
                result.dist.get(src, dst),
                route.len() - 1
            );
            let labels: Vec<String> = route
                .iter()
                .map(|&v| loaded.original_ids[v as usize].to_string())
                .collect();
            println!("  {}", labels.join(" -> "));
        }
        None => println!("no path"),
    }
    Ok(())
}

/// `parapsp estimate <file> <src> <dst> [--k 16]` — landmark-based distance
/// bounds without the O(n²) matrix (for graphs where `apsp` won't fit).
pub fn estimate(args: &Args) -> Result<(), String> {
    use parapsp_analysis::landmarks::{LandmarkIndex, LandmarkStrategy};
    let loaded = load(args)?;
    if loaded.graph.direction().is_directed() {
        return Err("estimate requires an undirected graph (triangulation)".into());
    }
    let threads = args.get_parsed("threads", 4usize)?;
    let k = args
        .get_parsed("top", 16usize)? // reuse --top as the landmark count
        .min(loaded.graph.vertex_count());
    let parse_vertex = |index: usize, what: &str| -> Result<u32, String> {
        let raw = args
            .positional(index)
            .ok_or_else(|| format!("expected a {what} vertex id"))?;
        let original: u64 = raw
            .parse()
            .map_err(|_| format!("{what} id `{raw}` is not an integer"))?;
        loaded
            .dense_id(original)
            .ok_or_else(|| format!("{what} id {original} not present in the file"))
    };
    let src = parse_vertex(1, "source")?;
    let dst = parse_vertex(2, "destination")?;
    let index = LandmarkIndex::build(
        &loaded.graph,
        k.max(1),
        LandmarkStrategy::HighestDegree,
        threads,
    );
    let lo = index.lower_bound(src, dst);
    let hi = index.upper_bound(src, dst);
    if hi == parapsp_graph::INF {
        println!("no landmark reaches both endpoints (likely disconnected)");
    } else {
        println!(
            "d({}, {}) ∈ [{lo}, {hi}]  ({} hub landmarks, O(k·n) memory)",
            args.positional(1).unwrap_or("?"),
            args.positional(2).unwrap_or("?"),
            index.landmarks().len()
        );
    }
    Ok(())
}

/// `parapsp generate --model ba --n 1000 --m 4 --out g.txt`.
pub fn generate(args: &Args) -> Result<(), String> {
    use parapsp_graph::generate as gen;
    let n = args.get_parsed("n", 1_000usize)?;
    let m = args.get_parsed("m", 4usize)?;
    let p = args.get_parsed("p", 0.1f64)?;
    let seed = args.get_parsed("seed", 42u64)?;
    let out_path = args
        .get("out")
        .ok_or_else(|| "generate needs --out <file>".to_string())?;
    let graph = match args.get("model").unwrap_or("ba") {
        "ba" => gen::barabasi_albert(n, m, gen::WeightSpec::Unit, seed),
        "er" => gen::erdos_renyi_gnp(n, p, Direction::Undirected, gen::WeightSpec::Unit, seed),
        "ws" => gen::watts_strogatz(n, m.max(2) & !1, p, gen::WeightSpec::Unit, seed),
        other => return Err(format!("unknown model `{other}` (ba, er, ws)")),
    }
    .map_err(|e| e.to_string())?;
    let file = std::fs::File::create(out_path).map_err(|e| format!("creating {out_path}: {e}"))?;
    parapsp_graph::io::write_edge_list(&graph, std::io::BufWriter::new(file))
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {} vertices / {} edges to {out_path}",
        graph.vertex_count(),
        graph.edge_count()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn sample_file() -> String {
        let dir = std::env::temp_dir().join("parapsp-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.txt");
        std::fs::write(&path, "# demo\n1 2\n2 3\n3 1\n3 4\n4 5\n").unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn stats_and_apsp_run_on_sample() {
        let file = sample_file();
        stats(&args(&["stats", &file])).unwrap();
        for algorithm in [
            "par-apsp",
            "par-alg1",
            "par-alg2",
            "par-adaptive",
            "seq-basic",
            "seq-optimized",
            "seq-adaptive",
            "blocked-fw",
            "floyd-warshall",
            "dijkstra",
            "dist",
        ] {
            apsp(&args(&[
                "apsp",
                &file,
                "--algorithm",
                algorithm,
                "--threads",
                "2",
            ]))
            .unwrap_or_else(|e| panic!("{algorithm}: {e}"));
        }
    }

    #[test]
    fn analyze_and_path_run_on_sample() {
        let file = sample_file();
        analyze(&args(&["analyze", &file, "--top", "3"])).unwrap();
        path(&args(&["path", &file, "1", "5"])).unwrap();
        // Unknown vertex id.
        assert!(path(&args(&["path", &file, "1", "99"])).is_err());
    }

    #[test]
    fn capped_apsp_runs_and_bad_cap_errors() {
        let file = sample_file();
        apsp(&args(&["apsp", &file, "--cap", "1", "--threads", "2"])).unwrap();
        assert!(apsp(&args(&["apsp", &file, "--cap", "many"])).is_err());
    }

    #[test]
    fn relax_impl_selection_via_cli() {
        let file = sample_file();
        for relax in ["auto", "avx2", "portable", "scalar"] {
            apsp(&args(&["apsp", &file, "--relax", relax, "--threads", "2"]))
                .unwrap_or_else(|e| panic!("--relax {relax}: {e}"));
        }
        assert!(apsp(&args(&["apsp", &file, "--relax", "sse9"])).is_err());
        // The collapsed SeqEngine runs the same kernel, so --relax now
        // applies to the sequential family too...
        apsp(&args(&[
            "apsp",
            &file,
            "--algorithm",
            "seq-basic",
            "--relax",
            "scalar",
        ]))
        .unwrap();
        // ...but not to algorithms that never touch the modified Dijkstra.
        for algorithm in ["dist", "floyd-warshall", "blocked-fw"] {
            assert!(
                apsp(&args(&[
                    "apsp",
                    &file,
                    "--algorithm",
                    algorithm,
                    "--relax",
                    "scalar"
                ]))
                .is_err(),
                "{algorithm} must reject --relax"
            );
        }
    }

    #[test]
    fn schedule_selection_via_cli() {
        let file = sample_file();
        // Every spelling the parser accepts, on every engine that hands its
        // source loop to the parfor pool.
        for schedule in [
            "block",
            "static-cyclic",
            "dynamic-cyclic",
            "dynamic:4",
            "guided:2",
            "work-stealing",
            "work-stealing:4",
        ] {
            for algorithm in ["par-apsp", "par-alg1", "par-alg2"] {
                apsp(&args(&[
                    "apsp",
                    &file,
                    "--algorithm",
                    algorithm,
                    "--schedule",
                    schedule,
                    "--threads",
                    "2",
                ]))
                .unwrap_or_else(|e| panic!("{algorithm} --schedule {schedule}: {e}"));
            }
        }
        // Malformed specs are rejected with the parser's explanation.
        for bad in ["warp", "dynamic:0", "work-stealing:x", "block:4"] {
            let err = apsp(&args(&["apsp", &file, "--schedule", bad]))
                .unwrap_err()
                .to_string();
            assert!(err.contains("--schedule"), "{bad}: {err}");
        }
        // Engines that run their own loops (or no parfor loop at all)
        // reject the flag rather than silently ignoring it.
        for algorithm in [
            "seq-basic",
            "seq-adaptive",
            "blocked-fw",
            "floyd-warshall",
            "dist",
        ] {
            let err = apsp(&args(&[
                "apsp",
                &file,
                "--algorithm",
                algorithm,
                "--schedule",
                "work-stealing",
            ]))
            .unwrap_err()
            .to_string();
            assert!(
                err.contains("--schedule works with"),
                "{algorithm} must reject --schedule: {err}"
            );
        }
    }

    #[test]
    fn solver_selection_via_cli() {
        let file = sample_file();
        // Every spelling the parser accepts, on both a parallel and a
        // sequential kernel engine.
        for solver in [
            "dijkstra",
            "delta",
            "delta:auto",
            "delta:3",
            "stepping",
            "auto",
        ] {
            for algorithm in ["par-apsp", "seq-optimized"] {
                apsp(&args(&[
                    "apsp",
                    &file,
                    "--algorithm",
                    algorithm,
                    "--solver",
                    solver,
                    "--threads",
                    "2",
                ]))
                .unwrap_or_else(|e| panic!("{algorithm} --solver {solver}: {e}"));
            }
        }
        // `auto` must not clobber an explicit --schedule/--relax.
        apsp(&args(&[
            "apsp",
            &file,
            "--solver",
            "auto",
            "--schedule",
            "block",
            "--relax",
            "scalar",
        ]))
        .unwrap();
        // Malformed specs are rejected with the parser's explanation.
        for bad in ["warp", "delta:0", "delta:wide", "stepping:2", "auto:1"] {
            let err = apsp(&args(&["apsp", &file, "--solver", bad]))
                .unwrap_err()
                .to_string();
            assert!(err.contains("--solver"), "{bad}: {err}");
        }
        // Algorithms that never touch the row kernel reject the flag,
        // naming the ones that do.
        for algorithm in ["dist", "floyd-warshall", "blocked-fw", "dijkstra"] {
            let err = apsp(&args(&[
                "apsp",
                &file,
                "--algorithm",
                algorithm,
                "--solver",
                "delta",
            ]))
            .unwrap_err()
            .to_string();
            assert!(
                err.contains("--solver works with"),
                "{algorithm} must reject --solver: {err}"
            );
        }
    }

    #[test]
    fn store_selection_via_cli() {
        let file = sample_file();
        // Every spelling the parser accepts, on a parallel row engine, a
        // sequential one, and the dist gather.
        for store in ["dense", "delta", "delta:4", "mmap", "mmap:64k"] {
            for algorithm in ["par-apsp", "seq-basic", "dist"] {
                apsp(&args(&[
                    "apsp",
                    &file,
                    "--algorithm",
                    algorithm,
                    "--store",
                    store,
                    "--threads",
                    "2",
                ]))
                .unwrap_or_else(|e| panic!("{algorithm} --store {store}: {e}"));
            }
        }
        // Malformed specs are rejected with the parser's explanation.
        for bad in [
            "ram",
            "dense:1",
            "delta:0",
            "delta:wide",
            "mmap:lots",
            "mmap:0",
        ] {
            let err = apsp(&args(&["apsp", &file, "--store", bad]))
                .unwrap_err()
                .to_string();
            assert!(err.contains("--store"), "{bad}: {err}");
        }
        // Engines that mutate a dense matrix in place reject the flag,
        // naming the ones that route rows through a store.
        for algorithm in ["blocked-fw", "floyd-warshall", "dijkstra", "par-adaptive"] {
            let err = apsp(&args(&[
                "apsp",
                &file,
                "--algorithm",
                algorithm,
                "--store",
                "delta",
            ]))
            .unwrap_err()
            .to_string();
            assert!(
                err.contains("--store works with"),
                "{algorithm} must reject --store: {err}"
            );
        }
    }

    #[test]
    fn apsp_saves_matrix_when_out_is_given() {
        let dir = std::env::temp_dir().join("parapsp-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let file = sample_file();

        let bin = dir.join("out.bin").to_string_lossy().into_owned();
        apsp(&args(&["apsp", &file, "--out", &bin])).unwrap();
        let loaded = parapsp_core::persist::load_binary(&bin).unwrap();
        assert_eq!(loaded.n(), 5);

        let tsv = dir.join("out.tsv").to_string_lossy().into_owned();
        apsp(&args(&["apsp", &file, "--out", &tsv])).unwrap();
        let text = std::fs::read_to_string(&tsv).unwrap();
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn checkpoint_and_resume_via_cli() {
        let dir = std::env::temp_dir().join("parapsp-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let file = sample_file();
        let ckpt = dir.join("cli.ckpt").to_string_lossy().into_owned();
        apsp(&args(&[
            "apsp",
            &file,
            "--checkpoint",
            &ckpt,
            "--checkpoint-every",
            "2",
        ]))
        .unwrap();
        let cp = parapsp_core::persist::load_checkpoint(&ckpt).unwrap();
        assert!(cp.is_complete());
        // Resuming from a complete checkpoint recomputes nothing and succeeds.
        apsp(&args(&["apsp", &file, "--resume", &ckpt])).unwrap();
        // The sequential engines are row engines too: checkpoint one and
        // resume on it (checkpoints are engine-agnostic).
        apsp(&args(&[
            "apsp",
            &file,
            "--algorithm",
            "seq-basic",
            "--checkpoint",
            &ckpt,
            "--checkpoint-every",
            "2",
        ]))
        .unwrap();
        apsp(&args(&[
            "apsp",
            &file,
            "--algorithm",
            "seq-optimized",
            "--resume",
            &ckpt,
        ]))
        .unwrap();
        // Engines whose rows are not final mid-run reject the flags.
        for algorithm in ["dist", "blocked-fw", "floyd-warshall"] {
            assert!(
                apsp(&args(&[
                    "apsp",
                    &file,
                    "--algorithm",
                    algorithm,
                    "--checkpoint",
                    &ckpt
                ]))
                .is_err(),
                "{algorithm} must reject --checkpoint"
            );
        }
        assert!(apsp(&args(&[
            "apsp",
            &file,
            "--checkpoint",
            &ckpt,
            "--checkpoint-every",
            "0"
        ]))
        .is_err());
        assert!(apsp(&args(&["apsp", &file, "--resume", "/no/such/checkpoint"])).is_err());
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn ledger_journals_and_resumes_via_cli() {
        let dir = std::env::temp_dir().join("parapsp-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let file = sample_file();
        let ledger = dir.join("cli.ledger").to_string_lossy().into_owned();
        std::fs::remove_file(&ledger).ok();
        // A row engine journals every completed row...
        apsp(&args(&[
            "apsp",
            &file,
            "--algorithm",
            "seq-basic",
            "--ledger",
            &ledger,
            "--ledger-fsync",
            "never",
        ]))
        .unwrap();
        // ...and the ledger loads back as a complete checkpoint that any
        // row engine (or the same one) resumes from.
        let cp = parapsp_core::persist::load_checkpoint(&ledger).unwrap();
        assert!(cp.is_complete());
        apsp(&args(&["apsp", &file, "--resume", &ledger])).unwrap();
        std::fs::remove_file(&ledger).ok();
        // The dist driver journals its gather the same way, and a resumed
        // dist run replays the rows instead of recomputing them.
        apsp(&args(&[
            "apsp",
            &file,
            "--algorithm",
            "dist",
            "--nodes",
            "2",
            "--ledger",
            &ledger,
        ]))
        .unwrap();
        apsp(&args(&[
            "apsp",
            &file,
            "--algorithm",
            "dist",
            "--nodes",
            "2",
            "--ledger",
            &ledger,
            "--resume",
            &ledger,
        ]))
        .unwrap();
        std::fs::remove_file(&ledger).ok();
    }

    #[test]
    fn ledger_flag_combinations_are_validated() {
        let file = sample_file();
        // --ledger-fsync without --ledger, unknown fsync policy, and
        // mixing the two durability sinks are all usage errors (exit 2).
        for bad in [
            vec!["--ledger-fsync", "never"],
            vec!["--ledger", "/tmp/x.ledger", "--ledger-fsync", "eventually"],
            vec!["--ledger", "/tmp/x.ledger", "--checkpoint", "/tmp/x.ckpt"],
        ] {
            let mut tokens = vec!["apsp", file.as_str()];
            tokens.extend_from_slice(&bad);
            let err = apsp(&args(&tokens)).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?}: {err}");
        }
        // Engines without final mid-run rows reject the ledger.
        for algorithm in ["blocked-fw", "floyd-warshall"] {
            let err = apsp(&args(&[
                "apsp",
                &file,
                "--algorithm",
                algorithm,
                "--ledger",
                "/tmp/x.ledger",
            ]))
            .unwrap_err();
            assert!(
                err.to_string().contains("--ledger/--resume work with"),
                "{algorithm}: {err}"
            );
        }
        // Runtime failures stay exit 1.
        assert_eq!(
            apsp(&args(&["apsp", "/no/such/graph"]))
                .unwrap_err()
                .exit_code(),
            1
        );
    }

    #[test]
    fn socket_timeout_flags_parse_and_zero_values_are_usage_errors() {
        let file = sample_file();
        // The flags land on the socket config (the end-to-end run over a
        // real socket is covered by the integration tests, which use the
        // installed binary rather than the test harness as the worker).
        let spec = parse_transport(&args(&[
            "apsp",
            &file,
            "--transport",
            "tcp",
            "--read-timeout",
            "5",
            "--write-timeout",
            "1000",
        ]))
        .unwrap();
        match spec {
            TransportSpec::Socket(socket) => {
                assert_eq!(socket.read_timeout, Duration::from_millis(5));
                assert_eq!(socket.write_timeout, Duration::from_millis(1000));
            }
            other => panic!("expected a socket transport, got {other:?}"),
        }
        // Zero timeouts are rejected at construction, before any socket
        // opens, with exit code 2.
        for bad in [
            ["--read-timeout", "0"],
            ["--write-timeout", "0"],
            ["--heartbeat", "0"],
            ["--accept-timeout", "0"],
        ] {
            let mut tokens = vec![
                "apsp",
                file.as_str(),
                "--algorithm",
                "dist",
                "--transport",
                "tcp",
            ];
            tokens.extend_from_slice(&bad);
            let err = apsp(&args(&tokens)).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?}: {err}");
            assert!(err.to_string().contains("zero"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn dist_partitions_via_cli() {
        let file = sample_file();
        for partition in ["cyclic-degree", "block-degree", "cyclic-id"] {
            apsp(&args(&[
                "apsp",
                &file,
                "--algorithm",
                "dist",
                "--nodes",
                "2",
                "--partition",
                partition,
            ]))
            .unwrap_or_else(|e| panic!("{partition}: {e}"));
        }
        assert!(apsp(&args(&[
            "apsp",
            &file,
            "--algorithm",
            "dist",
            "--partition",
            "nope"
        ]))
        .is_err());
    }

    #[test]
    fn new_engine_knobs_parse_and_reject() {
        let file = sample_file();
        apsp(&args(&[
            "apsp",
            &file,
            "--algorithm",
            "seq-adaptive",
            "--credit-weight",
            "100",
        ]))
        .unwrap();
        apsp(&args(&[
            "apsp",
            &file,
            "--algorithm",
            "blocked-fw",
            "--block",
            "16",
            "--cap",
            "1",
        ]))
        .unwrap();
        assert!(apsp(&args(&[
            "apsp",
            &file,
            "--algorithm",
            "seq-adaptive",
            "--credit-weight",
            "heavy"
        ]))
        .is_err());
        assert!(apsp(&args(&[
            "apsp",
            &file,
            "--algorithm",
            "blocked-fw",
            "--block",
            "-3"
        ]))
        .is_err());
    }

    #[test]
    fn estimate_runs_on_sample_and_rejects_directed() {
        let file = sample_file();
        estimate(&args(&["estimate", &file, "1", "5", "--top", "2"])).unwrap();
        assert!(estimate(&args(&["estimate", &file, "1", "5", "--directed"])).is_err());
        assert!(estimate(&args(&["estimate", &file, "1"])).is_err());
    }

    #[test]
    fn generate_roundtrip() {
        let dir = std::env::temp_dir().join("parapsp-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("generated.txt").to_string_lossy().into_owned();
        generate(&args(&[
            "generate", "--model", "ba", "--n", "200", "--m", "3", "--out", &out,
        ]))
        .unwrap();
        let loaded = read_edge_list_file(&out, ParseOptions::snap(Direction::Undirected)).unwrap();
        assert_eq!(loaded.graph.vertex_count(), 200);
        stats(&args(&["stats", &out])).unwrap();
    }

    #[test]
    fn expired_deadline_exits_124_with_a_loadable_checkpoint() {
        let dir = std::env::temp_dir().join("parapsp-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let file = sample_file();
        let ckpt = dir.join("deadline.ckpt").to_string_lossy().into_owned();
        // A zero deadline expires before the first row; the stop checkpoint
        // must land on the --checkpoint path and load back.
        let code = apsp(&args(&[
            "apsp",
            &file,
            "--deadline",
            "0",
            "--checkpoint",
            &ckpt,
        ]))
        .unwrap();
        assert_eq!(code, 124);
        let cp = parapsp_core::persist::load_checkpoint(&ckpt).unwrap();
        assert_eq!(cp.n(), 5);
        // The checkpoint resumes to a normal, complete run.
        let code = apsp(&args(&["apsp", &file, "--resume", &ckpt])).unwrap();
        assert_eq!(code, 0);
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn deadline_works_for_every_cancellable_algorithm() {
        let dir = std::env::temp_dir().join("parapsp-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let file = sample_file();
        for (i, algorithm) in [
            "par-alg1",
            "par-alg2",
            "seq-basic",
            "seq-optimized",
            "seq-adaptive",
            "blocked-fw",
            "dist",
        ]
        .into_iter()
        .enumerate()
        {
            let ckpt = dir
                .join(format!("deadline-{i}.ckpt"))
                .to_string_lossy()
                .into_owned();
            let tokens: [&str; 8] = [
                "apsp",
                file.as_str(),
                "--algorithm",
                algorithm,
                "--deadline",
                "0",
                "--checkpoint",
                ckpt.as_str(),
            ];
            // --checkpoint applies to the row engines; the others fall back
            // to the derived <file>.interrupt.ckpt path.
            let row_engine = algorithm.starts_with("par-alg") || algorithm.starts_with("seq-");
            let code = if row_engine {
                apsp(&args(&tokens)).unwrap()
            } else {
                apsp(&args(&tokens[..6])).unwrap()
            };
            assert_eq!(code, 124, "{algorithm}");
            std::fs::remove_file(&ckpt).ok();
        }
        std::fs::remove_file(format!("{file}.interrupt.ckpt")).ok();
        // A generous deadline completes normally.
        let code = apsp(&args(&["apsp", &file, "--deadline", "3600"])).unwrap();
        assert_eq!(code, 0);
    }

    #[test]
    fn cancellation_flags_are_validated() {
        let file = sample_file();
        // Non-cancellable algorithms reject explicit flags...
        assert!(apsp(&args(&[
            "apsp",
            &file,
            "--algorithm",
            "floyd-warshall",
            "--deadline",
            "5"
        ]))
        .is_err());
        assert!(apsp(&args(&[
            "apsp",
            &file,
            "--algorithm",
            "dijkstra",
            "--on-interrupt",
            "checkpoint"
        ]))
        .is_err());
        // ...but still run fine with the default interrupt mode.
        assert_eq!(
            apsp(&args(&["apsp", &file, "--algorithm", "floyd-warshall"])).unwrap(),
            0
        );
        assert!(apsp(&args(&["apsp", &file, "--deadline", "-1"])).is_err());
        assert!(apsp(&args(&["apsp", &file, "--deadline", "soon"])).is_err());
        assert!(apsp(&args(&["apsp", &file, "--on-interrupt", "panic"])).is_err());
        // Abort mode takes the plain path and completes.
        assert_eq!(
            apsp(&args(&["apsp", &file, "--on-interrupt", "abort"])).unwrap(),
            0
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(load(&args(&["stats", "/no/such/file"])).is_err());
        assert!(stats(&args(&["stats"])).is_err());
        let file = sample_file();
        assert!(apsp(&args(&["apsp", &file, "--algorithm", "nope"])).is_err());
        assert!(parse_options(&args(&["stats", "x", "--format", "bad"])).is_err());
        assert!(generate(&args(&["generate"])).is_err());
    }

    #[test]
    fn budget_guard_trips_on_huge_inputs() {
        assert!(check_matrix_budget(100_000).is_err());
        assert!(check_matrix_budget(10_000).is_ok());
    }
}
