//! SIGINT/SIGTERM → [`CancelToken`] bridge for graceful shutdown.
//!
//! The signal handler itself does the only thing that is async-signal-safe:
//! a relaxed store into a process-global flag. A per-run watcher thread
//! polls that flag every few milliseconds and trips the run's
//! [`CancelToken`], which the compute kernels observe at their next chunk
//! boundary — so an interrupted run stops at a row boundary and can write
//! a consistent checkpoint instead of dying mid-matrix.
//!
//! The watcher (not the handler) owns the token, so every run gets a fresh
//! token while the handler stays installed once for the process lifetime.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parapsp_parfor::CancelToken;

/// Set by the signal handler; read by every watcher thread.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// How often the watcher checks the interrupt flag — the added latency on
/// top of the kernels' own poll granularity.
const WATCH_INTERVAL: Duration = Duration::from_millis(10);

#[cfg(unix)]
fn install_handler() {
    use std::sync::OnceLock;
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        extern "C" fn on_signal(_signum: i32) {
            INTERRUPTED.store(true, Ordering::Relaxed);
        }
        // Raw libc binding (the workspace deliberately has no libc crate
        // dependency); the numbers are POSIX-mandated on Linux.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: the handler only performs a relaxed atomic store, which
        // is async-signal-safe; `signal` is called once, before any run.
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    });
}

#[cfg(not(unix))]
fn install_handler() {
    // No signal bridge off Unix; deadline cancellation still works.
}

/// Keeps a watcher thread alive that trips `token` when a signal arrives;
/// dropping the guard stops the watcher (joining it, so no thread leaks
/// past the run it served).
pub struct InterruptGuard {
    done: Arc<AtomicBool>,
    watcher: Option<std::thread::JoinHandle<()>>,
}

/// Installs the process signal handler (first call only) and spawns a
/// watcher that cancels `token` when SIGINT or SIGTERM is received.
pub fn guard(token: &CancelToken) -> InterruptGuard {
    install_handler();
    let done = Arc::new(AtomicBool::new(false));
    let thread_done = Arc::clone(&done);
    let token = token.clone();
    let watcher = std::thread::spawn(move || {
        while !thread_done.load(Ordering::Relaxed) {
            if INTERRUPTED.load(Ordering::Relaxed) {
                token.cancel();
                break;
            }
            std::thread::sleep(WATCH_INTERVAL);
        }
    });
    InterruptGuard {
        done,
        watcher: Some(watcher),
    }
}

impl Drop for InterruptGuard {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
        if let Some(watcher) = self.watcher.take() {
            let _ = watcher.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_trips_token_when_flag_is_set() {
        let token = CancelToken::new();
        let _guard = guard(&token);
        assert!(token.status().is_continue());
        // Simulate the signal (in-process tests cannot safely raise one).
        INTERRUPTED.store(true, Ordering::Relaxed);
        let start = std::time::Instant::now();
        while token.status().is_continue() {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "watcher must trip the token"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        INTERRUPTED.store(false, Ordering::Relaxed);
    }

    #[test]
    fn dropping_the_guard_stops_the_watcher() {
        // Only checks that the drop joins promptly; the token's state is
        // racy here because the sibling test toggles the global flag.
        let token = CancelToken::new();
        let guard = guard(&token);
        drop(guard);
    }
}
