//! Tiny dependency-free argument parser for the `parapsp` binary.

use std::collections::HashMap;

/// Parsed invocation: a subcommand, positional arguments, and
/// `--key value` / `--flag` options.
#[derive(Debug, Default)]
pub struct Args {
    /// The first positional token (`apsp`, `stats`, …).
    pub command: String,
    /// Remaining positional tokens.
    pub positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Options that take a value; everything else starting with `--` is a flag.
const VALUED: &[&str] = &[
    "--threads",
    "--algorithm",
    "--format",
    "--top",
    "--model",
    "--n",
    "--m",
    "--p",
    "--seed",
    "--out",
    "--nodes",
    "--hub-fraction",
    "--weights",
    "--cap",
    "--relax",
    "--solver",
    "--store",
    "--schedule",
    "--partition",
    "--checkpoint",
    "--checkpoint-every",
    "--resume",
    "--fault-seed",
    "--crash",
    "--drop-prob",
    "--corrupt-prob",
    "--deadline",
    "--on-interrupt",
    "--credit-weight",
    "--block",
    "--transport",
    "--listen",
    "--connect",
    "--connect-attempts",
    "--heartbeat",
    "--heartbeat-misses",
    "--row-batch",
    "--accept-timeout",
    "--read-timeout",
    "--write-timeout",
    "--delay-ms",
    "--ledger",
    "--ledger-fsync",
];

impl Args {
    /// Parses raw arguments (excluding the program name).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                if VALUED.contains(&token.as_str()) {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("option {token} needs a value"))?;
                    args.options.insert(name.to_string(), value);
                } else {
                    args.flags.push(name.to_string());
                }
            } else if args.command.is_empty() {
                args.command = token;
            } else {
                args.positional.push(token);
            }
        }
        Ok(args)
    }

    /// The value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A parsed `--name` value or a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{name} value `{raw}` is invalid")),
        }
    }

    /// A closed-set `--name` value parsed through
    /// [`ValueEnum`](parapsp_core::ValueEnum), or a default. The error
    /// names the option and enumerates every accepted value.
    pub fn get_enum<T: parapsp_core::ValueEnum>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => T::parse_value(raw).map_err(|e| format!("--{name} {e}")),
        }
    }

    /// A `--name` value with a `name[:param]` spec grammar (`--schedule`,
    /// `--solver`), parsed through the type's `FromStr`, or a default. The
    /// spec parsers already produce self-describing errors; this only
    /// prefixes the option name.
    pub fn get_spec<T: std::str::FromStr<Err = String>>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|e| format!("--{name}: {e}")),
        }
    }

    /// Whether `--name` was passed as a bare flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The n-th positional argument after the command.
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positional.get(index).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn command_positionals_options_and_flags() {
        let args = parse(&[
            "apsp",
            "graph.txt",
            "--threads",
            "8",
            "--directed",
            "--algorithm",
            "par-alg2",
        ]);
        assert_eq!(args.command, "apsp");
        assert_eq!(args.positional(0), Some("graph.txt"));
        assert_eq!(args.get("threads"), Some("8"));
        assert_eq!(args.get("algorithm"), Some("par-alg2"));
        assert!(args.flag("directed"));
        assert!(!args.flag("undirected"));
    }

    #[test]
    fn parsed_values_and_defaults() {
        let args = parse(&["stats", "--threads", "4"]);
        assert_eq!(args.get_parsed("threads", 1usize).unwrap(), 4);
        assert_eq!(args.get_parsed("top", 10usize).unwrap(), 10);
        assert!(args.get_parsed::<usize>("threads", 1).is_ok());
    }

    #[test]
    fn invalid_value_reports_option_name() {
        let args = parse(&["stats", "--threads", "lots"]);
        let err = args.get_parsed::<usize>("threads", 1).unwrap_err();
        assert!(err.contains("threads"));
        assert!(err.contains("lots"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Args::parse(["x".to_string(), "--threads".to_string()]).unwrap_err();
        assert!(err.contains("--threads"));
    }

    #[test]
    fn enum_values_parse_with_defaults_and_self_describing_rejection() {
        use parapsp_core::{EngineKind, RelaxImpl};
        let args = parse(&["apsp", "--algorithm", "seq-adaptive", "--relax", "avx2"]);
        assert_eq!(
            args.get_enum("algorithm", EngineKind::ParApsp).unwrap(),
            EngineKind::SeqAdaptive
        );
        assert_eq!(
            args.get_enum("relax", RelaxImpl::Auto).unwrap(),
            RelaxImpl::Avx2
        );
        // Absent option: the default wins.
        assert_eq!(
            args.get_enum("partition", parapsp_dist::SourcePartition::default())
                .unwrap(),
            parapsp_dist::SourcePartition::CyclicByDegree
        );
        // Rejection names the option and lists every accepted value.
        let args = parse(&["apsp", "--algorithm", "par-warp"]);
        let err = args.get_enum("algorithm", EngineKind::ParApsp).unwrap_err();
        assert!(err.starts_with("--algorithm"), "{err}");
        assert!(
            err.contains("par-warp") && err.contains("possible values"),
            "{err}"
        );
        assert!(
            err.contains("par-apsp") && err.contains("blocked-fw"),
            "{err}"
        );
    }
}
