//! Deterministic transport chaos: adversarial networks for the driver.
//!
//! [`FaultPlan`](crate::FaultPlan) injects *application-level* faults —
//! crashes, stalls, payload corruption decided by the sender. This module
//! attacks the layer below: a [`ChaosPlan`] describes per-frame delay,
//! duplication, reordering, byte corruption, and one-way partitions on
//! the node→driver event path, and [`ChaosTransport`] applies it as a
//! wrapper around any [`Transport`] — the channel and socket backends run
//! under identical adversaries.
//!
//! # Determinism and liveness
//!
//! Every decision (is event `seq` from node `k` delayed, and for how
//! long? duplicated? corrupted?) is a pure function of the plan's seed
//! and the event's coordinates, exactly like `FaultPlan`'s discipline —
//! so a given plan makes the same decisions on every run. The wall-clock
//! *interleaving* of releases still depends on thread timing, as it does
//! on any real network; the recovery invariant under test is precisely
//! that the final matrix is bit-identical regardless.
//!
//! Chaos must never break liveness, because the gather protocol has no
//! retransmit timer (the driver only re-requests rows that arrive
//! corrupted, and the watchdog is off by default). Three rules follow:
//!
//! * events are **held, never dropped** — a delay or partition defers
//!   delivery by a bounded number of driver polls, after which the event
//!   goes through verbatim;
//! * driver→node control messages are never delayed or dropped (the
//!   driver writes them synchronously); chaos may only *duplicate* them,
//!   which the node side already tolerates — duplicate `Assign`s dedup
//!   against the pending queue, a duplicate `Resend` costs one extra
//!   delivery, duplicate `Shutdown`s are not generated at all;
//! * corruption flips one payload bit and leaves the sender's checksum
//!   alone, so the receiver *rejects* the row and the ordinary
//!   re-send/re-deal machinery — not silence — restores progress.
//!
//! `Stats` events pass through untouched: they are a teardown courtesy
//! outside the gather protocol, and holding one past `finish()` would
//! silently zero a node's reported counters.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::transport::{ControlSink, NodeControl, NodeEvent, Polled, Transport};

/// A reproducible schedule of transport-level chaos for one distributed
/// run. The default plan injects nothing.
///
/// ```
/// use parapsp_dist::ChaosPlan;
///
/// let plan = ChaosPlan::seeded(7)
///     .with_delay(0.3, 8)              // 30% of events held up to 8 polls
///     .with_duplicate_probability(0.2) // 20% of events delivered twice
///     .with_corrupt_probability(0.1)   // 10% get a payload bit flip
///     .partition_node(1, 20, 40);      // node 1 blackholed for polls 20..60
/// assert!(!plan.is_inert());
/// assert_eq!(ChaosPlan::default(), ChaosPlan::seeded(0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosPlan {
    seed: u64,
    delay_probability: f64,
    max_delay_polls: u64,
    duplicate_probability: f64,
    corrupt_probability: f64,
    control_duplicate_probability: f64,
    /// One-way (node→driver) partitions: `(node, from_poll, polls)`.
    partitions: Vec<(usize, u64, u64)>,
}

impl ChaosPlan {
    /// A plan with no chaos; the seed only matters once probabilities or
    /// partitions are added.
    pub fn seeded(seed: u64) -> Self {
        ChaosPlan {
            seed,
            ..ChaosPlan::default()
        }
    }

    /// Holds each node→driver event independently with probability `p`,
    /// for a deterministically drawn `1..=max_polls` driver polls.
    /// Different per-event delays are what produce *reordering*: an event
    /// held longer than its successor is overtaken by it.
    ///
    /// # Panics
    /// If `p` is outside `[0, 1]`, or `p > 0` with `max_polls == 0`.
    pub fn with_delay(mut self, p: f64, max_polls: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "delay probability {p} outside [0, 1]"
        );
        assert!(
            p == 0.0 || max_polls > 0,
            "a positive delay probability needs max_polls >= 1"
        );
        self.delay_probability = p;
        self.max_delay_polls = max_polls;
        self
    }

    /// Delivers each node→driver event twice with probability `p` (the
    /// duplicate is released on the next poll, so it may arrive before a
    /// delayed original). The driver deduplicates accepted rows, so
    /// duplicates only cost bandwidth accounting.
    ///
    /// # Panics
    /// If `p` is outside `[0, 1]`.
    pub fn with_duplicate_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplicate probability {p} outside [0, 1]"
        );
        self.duplicate_probability = p;
        self
    }

    /// Flips one payload bit of each node→driver row event independently
    /// with probability `q`, leaving the sender's checksum alone so the
    /// receiver rejects the row. Must stay below 1 or re-delivery could
    /// never succeed.
    ///
    /// # Panics
    /// If `q` is outside `[0, 1)`.
    pub fn with_corrupt_probability(mut self, q: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&q),
            "corrupt probability {q} outside [0, 1)"
        );
        self.corrupt_probability = q;
        self
    }

    /// Duplicates each driver→node control message (except `Shutdown`)
    /// independently with probability `p`. Control is never delayed or
    /// dropped — there is no retransmit path to recover a lost `Assign`.
    ///
    /// # Panics
    /// If `p` is outside `[0, 1]`.
    pub fn with_control_duplicate_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "control duplicate probability {p} outside [0, 1]"
        );
        self.control_duplicate_probability = p;
        self
    }

    /// Blackholes `node`'s event path for `polls` driver polls starting
    /// at poll `from_poll`: events arriving inside the window are held
    /// until it closes (a one-way node→driver partition that heals).
    pub fn partition_node(mut self, node: usize, from_poll: u64, polls: u64) -> Self {
        self.partitions.push((node, from_poll, polls));
        self
    }

    /// Whether this plan injects no chaos at all.
    pub fn is_inert(&self) -> bool {
        self.delay_probability == 0.0
            && self.duplicate_probability == 0.0
            && self.corrupt_probability == 0.0
            && self.control_duplicate_probability == 0.0
            && self.partitions.is_empty()
    }

    /// The poll at which every partition window covering `(node, clock)`
    /// has healed, or `clock` itself when none is active.
    fn partition_release(&self, node: usize, clock: u64) -> u64 {
        self.partitions
            .iter()
            .filter(|&&(who, from, polls)| {
                who == node && clock >= from && clock < from.saturating_add(polls)
            })
            .map(|&(_, from, polls)| from.saturating_add(polls))
            .max()
            .unwrap_or(clock)
    }

    /// How many polls event `seq` from `node` is held (0 = no delay).
    fn delay_polls(&self, node: usize, seq: u64) -> u64 {
        if self.delay_probability == 0.0 {
            return 0;
        }
        let mut rng = self.decision_rng(0x4445_4C59, node as u64, seq);
        if rng.random_bool(self.delay_probability) {
            rng.random_range(1..=self.max_delay_polls.max(1))
        } else {
            0
        }
    }

    /// Whether event `seq` from `node` is delivered twice.
    fn duplicates(&self, node: usize, seq: u64) -> bool {
        self.duplicate_probability > 0.0
            && self
                .decision_rng(0x4455_5032, node as u64, seq)
                .random_bool(self.duplicate_probability)
    }

    /// Whether event `seq` from `node` gets a payload bit flip, and which
    /// `(word, bit)` coordinates the flip lands on in a `len`-word row.
    fn corruption(&self, node: usize, seq: u64, len: usize) -> Option<(usize, u32)> {
        if self.corrupt_probability == 0.0 || len == 0 {
            return None;
        }
        let mut rng = self.decision_rng(0x4352_5054, node as u64, seq);
        if !rng.random_bool(self.corrupt_probability) {
            return None;
        }
        Some((rng.random_range(0..len), rng.random_range(0..32u32)))
    }

    /// Whether control message `seq` toward `node` is duplicated.
    fn duplicates_control(&self, node: usize, seq: u64) -> bool {
        self.control_duplicate_probability > 0.0
            && self
                .decision_rng(0x4344_5550, node as u64, seq)
                .random_bool(self.control_duplicate_probability)
    }

    /// A fresh generator keyed on the plan seed plus the decision
    /// coordinates (same mixing discipline as `FaultPlan`).
    fn decision_rng(&self, salt: u64, a: u64, b: u64) -> StdRng {
        let mut key = self.seed ^ salt.rotate_left(32);
        for word in [a, b] {
            key ^= word.wrapping_add(0x9E37_79B9_7F4A_7C15);
            key = (key ^ (key >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            key = (key ^ (key >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            key ^= key >> 31;
        }
        StdRng::seed_from_u64(key)
    }
}

/// An event chaos is holding: released once the driver's poll clock
/// reaches `release_at`.
#[derive(Debug)]
struct Held {
    release_at: u64,
    event: NodeEvent,
}

/// Applies a [`ChaosPlan`] to any [`Transport`], borrowing the real
/// backend for the duration of the driver loop. The driver's polls are
/// the chaos clock: every `try_event`/`event_timeout` call advances it by
/// one, which is what bounds every hold — as long as rows are missing the
/// driver keeps polling, so every held event is eventually released.
pub(crate) struct ChaosTransport<'a, T: Transport> {
    inner: &'a mut T,
    plan: ChaosPlan,
    /// Driver polls observed so far (the release clock).
    clock: u64,
    /// Per-node arrival index, the `seq` decision coordinate.
    seq: Vec<u64>,
    /// Outbound control messages per node, the control `seq` coordinate.
    control_seq: Vec<u64>,
    /// Held events per node, arrival order (releases may reorder).
    pending: Vec<VecDeque<Held>>,
    /// Nodes whose inner stream already reported `Down`; their held
    /// events are flushed before the death is passed on.
    down: Vec<bool>,
}

impl<'a, T: Transport> ChaosTransport<'a, T> {
    pub(crate) fn new(inner: &'a mut T, plan: ChaosPlan, nodes: usize) -> Self {
        ChaosTransport {
            inner,
            plan,
            clock: 0,
            seq: vec![0; nodes],
            control_seq: vec![0; nodes],
            pending: (0..nodes).map(|_| VecDeque::new()).collect(),
            down: vec![false; nodes],
        }
    }

    /// Everything still held when the driver loop ended (e.g. duplicates
    /// of the final rows), for the caller to fold into the driver state.
    pub(crate) fn into_pending(self) -> Vec<(usize, NodeEvent)> {
        let mut held = Vec::new();
        for (k, queue) in self.pending.into_iter().enumerate() {
            for entry in queue {
                held.push((k, entry.event));
            }
        }
        held
    }

    /// Removes and returns the first held event for `k` whose release
    /// time has arrived.
    fn pop_due(&mut self, k: usize) -> Option<NodeEvent> {
        let due = self.pending[k]
            .iter()
            .position(|held| held.release_at <= self.clock)?;
        Some(
            self.pending[k]
                .remove(due)
                .expect("position is in range")
                .event,
        )
    }

    /// Applies per-event chaos to a fresh arrival from `k`. Returns the
    /// event when it passes straight through, or `None` when it is held.
    fn admit(&mut self, k: usize, mut event: NodeEvent) -> Option<NodeEvent> {
        // Stats are a teardown courtesy, not part of the gather protocol:
        // holding one past the drain would silently zero a node's report.
        if matches!(event, NodeEvent::Stats(_)) {
            return Some(event);
        }
        let seq = self.seq[k];
        self.seq[k] += 1;

        let row = match &mut event {
            NodeEvent::Row(msg) => Some(&mut msg.row),
            NodeEvent::HubFwd { msg, .. } => Some(&mut msg.row),
            NodeEvent::Stats(_) => None,
        };
        if let Some(row) = row {
            if let Some((word, bit)) = self.plan.corruption(k, seq, row.len()) {
                // The checksum is left alone, so the receiver rejects the
                // row and the re-send machinery restores progress.
                row[word] ^= 1 << bit;
            }
        }
        if self.plan.duplicates(k, seq) {
            self.pending[k].push_back(Held {
                release_at: self.clock,
                event: event.clone(),
            });
        }
        let release_at = (self.clock + self.plan.delay_polls(k, seq))
            .max(self.plan.partition_release(k, self.clock));
        if release_at > self.clock {
            self.pending[k].push_back(Held { release_at, event });
            return None;
        }
        Some(event)
    }

    /// The shared poll body behind both [`Transport`] methods.
    fn poll(&mut self, k: usize, fetch: impl FnOnce(&mut T) -> Polled) -> Polled {
        self.clock += 1;
        if let Some(event) = self.pop_due(k) {
            return Polled::Event(event);
        }
        if self.down[k] {
            // The stream is gone: flush held events first, then concede.
            return match self.pending[k].pop_front() {
                Some(held) => Polled::Event(held.event),
                None => Polled::Down,
            };
        }
        match fetch(self.inner) {
            Polled::Event(event) => match self.admit(k, event) {
                Some(event) => Polled::Event(event),
                None => Polled::Empty,
            },
            Polled::Empty => Polled::Empty,
            Polled::Down => {
                self.down[k] = true;
                match self.pending[k].pop_front() {
                    Some(held) => Polled::Event(held.event),
                    None => Polled::Down,
                }
            }
        }
    }
}

impl<T: Transport> ControlSink for ChaosTransport<'_, T> {
    fn control(&mut self, node: usize, message: NodeControl) {
        let seq = self.control_seq[node];
        self.control_seq[node] += 1;
        // Shutdown is exempt: a duplicate is harmless but pointless, and
        // exempting it keeps "one Shutdown per node" an invariant tests
        // can rely on.
        if !matches!(message, NodeControl::Shutdown) && self.plan.duplicates_control(node, seq) {
            self.inner.control(node, message.clone());
        }
        self.inner.control(node, message);
    }
}

impl<T: Transport> Transport for ChaosTransport<'_, T> {
    fn try_event(&mut self, node: usize) -> Polled {
        self.poll(node, |inner| inner.try_event(node))
    }

    fn event_timeout(&mut self, node: usize, timeout: std::time::Duration) -> Polled {
        self.poll(node, |inner| inner.event_timeout(node, timeout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::RowMessage;
    use std::time::Duration;

    /// A scripted inner transport: one node, a queue of events, then Down.
    struct Scripted {
        events: VecDeque<NodeEvent>,
        controls: Vec<NodeControl>,
    }

    impl ControlSink for Scripted {
        fn control(&mut self, _node: usize, message: NodeControl) {
            self.controls.push(message);
        }
    }

    impl Transport for Scripted {
        fn try_event(&mut self, _node: usize) -> Polled {
            match self.events.pop_front() {
                Some(event) => Polled::Event(event),
                None => Polled::Down,
            }
        }

        fn event_timeout(&mut self, node: usize, _timeout: Duration) -> Polled {
            self.try_event(node)
        }
    }

    fn row_event(source: u32) -> NodeEvent {
        NodeEvent::Row(RowMessage::new(source, vec![source; 4]))
    }

    fn sources(events: &[NodeEvent]) -> Vec<u32> {
        events
            .iter()
            .map(|event| match event {
                NodeEvent::Row(msg) => msg.source,
                other => panic!("unexpected event {other:?}"),
            })
            .collect()
    }

    /// Pumps `try_event` until Down, collecting everything delivered.
    fn pump(chaos: &mut ChaosTransport<'_, impl Transport>) -> Vec<NodeEvent> {
        let mut delivered = Vec::new();
        let mut idle = 0;
        while idle < 10_000 {
            match chaos.try_event(0) {
                Polled::Event(event) => {
                    delivered.push(event);
                    idle = 0;
                }
                Polled::Empty => idle += 1,
                Polled::Down => return delivered,
            }
        }
        panic!("chaos transport stopped making progress");
    }

    #[test]
    fn inert_plan_is_a_passthrough() {
        let mut inner = Scripted {
            events: (0..5).map(row_event).collect(),
            controls: Vec::new(),
        };
        let mut chaos = ChaosTransport::new(&mut inner, ChaosPlan::default(), 1);
        let delivered = pump(&mut chaos);
        assert_eq!(sources(&delivered), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn every_event_survives_delay_duplication_and_partition() {
        let plan = ChaosPlan::seeded(11)
            .with_delay(0.5, 6)
            .with_duplicate_probability(0.4)
            .partition_node(0, 3, 10);
        let mut inner = Scripted {
            events: (0..20).map(row_event).collect(),
            controls: Vec::new(),
        };
        let mut chaos = ChaosTransport::new(&mut inner, plan, 1);
        let mut delivered = sources(&pump(&mut chaos));
        delivered.sort_unstable();
        delivered.dedup();
        assert_eq!(
            delivered,
            (0..20).collect::<Vec<u32>>(),
            "held is not dropped: every distinct event must come out"
        );
    }

    #[test]
    fn delays_reorder_but_releases_are_deterministic_decisions() {
        let plan = ChaosPlan::seeded(5).with_delay(0.6, 8);
        let run = || {
            let mut inner = Scripted {
                events: (0..30).map(row_event).collect(),
                controls: Vec::new(),
            };
            let mut chaos = ChaosTransport::new(&mut inner, plan.clone(), 1);
            sources(&pump(&mut chaos))
        };
        let first = run();
        assert_eq!(first, run(), "same plan, same poll pattern, same order");
        assert_ne!(
            first,
            (0..30).collect::<Vec<u32>>(),
            "a 60% delay plan over 30 events should reorder at least once"
        );
    }

    #[test]
    fn corruption_breaks_the_checksum_but_not_the_frame() {
        let plan = ChaosPlan::seeded(3).with_corrupt_probability(0.5);
        let mut inner = Scripted {
            events: (0..40).map(row_event).collect(),
            controls: Vec::new(),
        };
        let mut chaos = ChaosTransport::new(&mut inner, plan, 1);
        let delivered = pump(&mut chaos);
        assert_eq!(delivered.len(), 40);
        let rejected = delivered
            .iter()
            .filter(|event| match event {
                NodeEvent::Row(msg) => !msg.verify(),
                _ => false,
            })
            .count();
        assert!(
            (8..=32).contains(&rejected),
            "about half of 40 rows should fail verification, got {rejected}"
        );
    }

    #[test]
    fn control_duplication_never_touches_shutdown() {
        let plan = ChaosPlan::seeded(9).with_control_duplicate_probability(1.0);
        let mut inner = Scripted {
            events: VecDeque::new(),
            controls: Vec::new(),
        };
        let mut chaos = ChaosTransport::new(&mut inner, plan, 1);
        chaos.control(0, NodeControl::Assign(4));
        chaos.control(0, NodeControl::Resend(4));
        chaos.control(0, NodeControl::Shutdown);
        let shapes: Vec<&'static str> = inner
            .controls
            .iter()
            .map(|c| match c {
                NodeControl::Assign(_) => "assign",
                NodeControl::Resend(_) => "resend",
                NodeControl::Shutdown => "shutdown",
                NodeControl::Hub(_) => "hub",
            })
            .collect();
        assert_eq!(
            shapes,
            vec!["assign", "assign", "resend", "resend", "shutdown"],
            "p=1 duplicates everything except Shutdown"
        );
    }

    #[test]
    fn down_flushes_held_events_before_reporting_death() {
        // Partition the node for a long window, then kill the stream:
        // the held rows must still come out ahead of Down.
        let plan = ChaosPlan::seeded(2).partition_node(0, 0, 1_000_000);
        let mut inner = Scripted {
            events: (0..3).map(row_event).collect(),
            controls: Vec::new(),
        };
        let mut chaos = ChaosTransport::new(&mut inner, plan, 1);
        let delivered = pump(&mut chaos);
        assert_eq!(sources(&delivered), vec![0, 1, 2]);
    }
}
